"""Checker library shared by the static-analyzer analogs.

Every checker is a generator ``check_<name>(analysis, aggressive, policies)
-> Iterable[(line, message)]``.  ``aggressive`` switches on reporting from
unresolvable ("maybe") evidence — the false-positive axis; ``policies``
carries tool-specific biases (e.g. Infer's flow-insensitive null checker).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.minic import ast
from repro.minic import types as ty
from repro.static_analysis.base import Analysis, TracePoint, Value

INT_MIN = -(1 << 31)
INT_MAX = (1 << 31) - 1
NEAR_MAX = INT_MAX - (1 << 20)


# --------------------------------------------------------------- trace utils


def _stmt_exprs(stmt: ast.Stmt) -> Iterator[ast.Expr]:
    yield from ast.statement_exprs(stmt)


def _point_exprs(point: TracePoint) -> Iterator[ast.Expr]:
    for expr in _stmt_exprs(point.stmt):
        yield from ast.walk_expr(expr)


class PointerFacts:
    """Sequential pointer-provenance tracking over one function trace.

    ``facts[i]`` is the pointer map *before* trace point ``i``.  Targets:
    ``("array", name)``, ``("global_array", name)``, ``("malloc", size)``,
    ``("null",)``, ``("maybe_null",)``, ``("addr", var)``,
    ``("offset", base_kind...)``, or ``("unknown",)``.
    """

    def __init__(self, analysis: Analysis, trace) -> None:
        self.analysis = analysis
        self.facts: list[dict[str, tuple]] = []
        local_arrays = {
            p.stmt.name: p.stmt.var_type.length
            for p in trace.points
            if isinstance(p.stmt, ast.VarDecl) and isinstance(p.stmt.var_type, ty.ArrayType)
        }
        self.array_sizes = dict(analysis.global_arrays)
        self.array_sizes.update(local_arrays)
        current: dict[str, tuple] = {}
        for point in trace.points:
            self.facts.append(dict(current))
            stmt = point.stmt
            if isinstance(stmt, ast.VarDecl) and stmt.init is not None:
                current[stmt.name] = self._target(stmt.init, current, point)
            elif isinstance(stmt, ast.ExprStmt):
                for node in ast.walk_expr(stmt.expr):
                    if isinstance(node, ast.Assign) and isinstance(node.target, ast.Ident):
                        target = self._target(node.value, current, point)
                        name = node.target.name
                        if point.certainty == "maybe" and current.get(name) == ("null",):
                            current[name] = ("maybe_null",)
                        else:
                            current[name] = target

    def _target(self, expr: ast.Expr, current: dict[str, tuple], point: TracePoint) -> tuple:
        if isinstance(expr, ast.NullLit):
            return ("null",)
        if isinstance(expr, ast.Ident):
            if expr.name in self.array_sizes:
                return ("array", expr.name)
            if expr.name in current:
                return current[expr.name]
            return ("unknown",)
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Ident):
            if expr.func.name in ("malloc", "calloc"):
                size = self.analysis.eval_expr(expr.args[0], point.env)
                return ("malloc", int(size.value) if size.is_const else None)
            return ("unknown",)
        if isinstance(expr, ast.Unary) and expr.op == "&":
            if isinstance(expr.operand, ast.Ident):
                return ("addr", expr.operand.name)
            if isinstance(expr.operand, ast.Index) and isinstance(expr.operand.base, ast.Ident):
                return ("array", expr.operand.base.name)
            return ("unknown",)
        if isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
            base = self._target(expr.lhs, current, point)
            offset = self.analysis.eval_expr(expr.rhs, point.env)
            nonzero = not (offset.is_const and offset.value == 0)
            if base[0] in ("array", "malloc", "global_array") and nonzero:
                return ("offset",) + base
            return base
        if isinstance(expr, ast.Cast):
            return self._target(expr.operand, current, point)
        return ("unknown",)


def _index_base_name(node: ast.Index) -> str | None:
    if isinstance(node.base, ast.Ident):
        return node.base.name
    return None


def _address_taken_indices(point: TracePoint) -> set[int]:
    """ids of Index nodes under an & operator (``&arr[k]`` computes an
    address — ``k == size`` is the legal one-past-end form)."""
    taken: set[int] = set()
    for node in _point_exprs(point):
        if isinstance(node, ast.Unary) and node.op == "&" and isinstance(node.operand, ast.Index):
            taken.add(id(node.operand))
    return taken


def _assign_target_ids(point: TracePoint) -> set[int]:
    """ids of expression nodes that are the target of an assignment."""
    targets: set[int] = set()
    for node in _point_exprs(point):
        if isinstance(node, ast.Assign):
            targets.add(id(node.target))
    return targets


# ------------------------------------------------------------ bounds checks


def check_stack_bounds(analysis: Analysis, aggressive: bool, policies=frozenset()):
    """Out-of-bounds constant (or bounded-loop) indexing of arrays."""
    write_only = "bounds_write_only" in policies
    for trace in analysis.traces.values():
        facts = PointerFacts(analysis, trace)
        for i, point in enumerate(trace.points):
            address_taken = _address_taken_indices(point)
            targets = _assign_target_ids(point)
            for node in _point_exprs(point):
                if not isinstance(node, ast.Index):
                    continue
                if id(node) in address_taken:
                    continue  # &arr[k]: address computation, not an access
                if write_only and id(node) not in targets:
                    continue
                name = _index_base_name(node)
                if name is None:
                    continue
                size = facts.array_sizes.get(name)
                if size is None:
                    fact = facts.facts[i].get(name)
                    if fact and fact[0] == "array":
                        size = facts.array_sizes.get(fact[1])
                if size is None:
                    continue
                element = 1
                if node.base.ty is not None:
                    pointee = ty.decay(node.base.ty)
                    if isinstance(pointee, ty.PointerType):
                        element = max(pointee.pointee.size(), 1)
                limit = size if element == 1 else size
                index = analysis.eval_expr(node.index, point.env)
                if index.is_const and not 0 <= index.value < max(limit, 1):
                    yield node.line, f"index {index.value} out of bounds for {name}[{size}]"
                elif index.kind == "bounded" and index.value is not None and index.value > limit:
                    yield node.line, f"loop bound {index.value} exceeds {name}[{size}]"
                elif aggressive and index.kind in ("unknown", "taint"):
                    yield node.line, f"possibly out-of-bounds index into {name}"


def check_heap_bounds(analysis: Analysis, aggressive: bool, policies=frozenset()):
    """Indexing past a constant-size malloc block."""
    for trace in analysis.traces.values():
        facts = PointerFacts(analysis, trace)
        for i, point in enumerate(trace.points):
            for node in _point_exprs(point):
                if not isinstance(node, ast.Index):
                    continue
                name = _index_base_name(node)
                if name is None:
                    continue
                fact = facts.facts[i].get(name)
                if not fact or fact[0] != "malloc" or fact[1] is None:
                    continue
                index = analysis.eval_expr(node.index, point.env)
                if index.is_const and not 0 <= index.value < fact[1]:
                    yield node.line, f"heap index {index.value} out of bounds ({fact[1]} bytes)"
                elif aggressive and index.kind in ("unknown", "taint"):
                    yield node.line, f"possibly out-of-bounds heap index via {name}"


# --------------------------------------------------------------- heap state


def check_heap_state(analysis: Analysis, aggressive: bool, policies=frozenset()):
    """Double free, use after free, and free of non-heap memory."""
    for trace in analysis.traces.values():
        facts = PointerFacts(analysis, trace)
        freed: dict[str, str] = {}  # pointer -> "definite" | "maybe"
        for i, point in enumerate(trace.points):
            for node in _point_exprs(point):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Ident)
                    and node.func.name == "free"
                    and node.args
                    and isinstance(node.args[0], (ast.Ident, ast.Cast))
                ):
                    arg = node.args[0]
                    if isinstance(arg, ast.Cast):
                        arg = arg.operand
                    if not isinstance(arg, ast.Ident):
                        continue
                    name = arg.name
                    fact = facts.facts[i].get(name, ("unknown",))
                    if fact[0] in ("array", "global_array", "addr", "offset"):
                        yield node.line, f"free of non-heap pointer {name}"
                        continue
                    state = freed.get(name)
                    if state == "definite" and point.certainty == "taken":
                        yield node.line, f"double free of {name}"
                    elif state is not None and aggressive:
                        yield node.line, f"possible double free of {name}"
                    freed[name] = "definite" if point.certainty == "taken" else "maybe"
                elif isinstance(node, ast.Index):
                    name = _index_base_name(node)
                    if name in freed:
                        state = freed[name]
                        if state == "definite":
                            yield node.line, f"use after free of {name}"
                        elif aggressive:
                            yield node.line, f"possible use after free of {name}"
                elif isinstance(node, ast.Assign):
                    if isinstance(node.target, ast.Ident) and node.target.name in freed:
                        if not isinstance(node.value, ast.Ident):
                            freed.pop(node.target.name, None)
            # printf("%s", freed) style uses
            for node in _point_exprs(point):
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Ident):
                    if node.func.name in ("printf", "strcpy", "strlen", "memcpy", "puts"):
                        for arg in node.args:
                            if isinstance(arg, ast.Ident) and arg.name in freed:
                                state = freed[arg.name]
                                if state == "definite":
                                    yield node.line, f"use after free of {arg.name}"
                                elif aggressive:
                                    yield node.line, f"possible use after free of {arg.name}"


# ------------------------------------------------------------- API misuse


def check_memcpy_overlap(analysis: Analysis, aggressive: bool, policies=frozenset()):
    """memcpy with overlapping source/destination (CWE-475)."""

    def base_and_offset(expr: ast.Expr):
        if isinstance(expr, ast.Ident):
            return expr.name, 0
        if isinstance(expr, ast.Binary) and expr.op == "+" and isinstance(expr.lhs, ast.Ident):
            return expr.lhs.name, expr.rhs
        return None, 0

    for trace in analysis.traces.values():
        for point in trace.points:
            for node in _point_exprs(point):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Ident)
                    and node.func.name == "memcpy"
                    and len(node.args) == 3
                ):
                    continue
                dst_base, dst_off = base_and_offset(node.args[0])
                src_base, src_off = base_and_offset(node.args[1])
                if dst_base is None or dst_base != src_base:
                    continue
                length = analysis.eval_expr(node.args[2], point.env)
                offset = dst_off if not isinstance(dst_off, ast.Expr) else None
                if offset is None:
                    offset_value = analysis.eval_expr(dst_off, point.env)
                    offset = int(offset_value.value) if offset_value.is_const else None
                src_offset = src_off if not isinstance(src_off, ast.Expr) else None
                if src_offset is None:
                    value = analysis.eval_expr(src_off, point.env)
                    src_offset = int(value.value) if value.is_const else None
                if offset is None or src_offset is None:
                    if aggressive:
                        yield node.line, "possibly overlapping memcpy"
                    continue
                distance = abs(offset - src_offset)
                if length.is_const and distance < length.value and distance >= 0:
                    if distance == 0 and offset == src_offset:
                        continue  # memcpy(p, p, n) is tolerated by tools
                    yield node.line, "overlapping memcpy ranges"
                elif not length.is_const and aggressive:
                    yield node.line, "possibly overlapping memcpy"


def check_call_args(analysis: Analysis, aggressive: bool, policies=frozenset()):
    """Call with fewer arguments than the callee's prototype (CWE-685)."""
    for trace in analysis.traces.values():
        for point in trace.points:
            for node in _point_exprs(point):
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Ident):
                    callee = analysis.functions.get(node.func.name)
                    if callee is not None and len(node.args) < len(callee.params):
                        yield node.line, (
                            f"call to {callee.name} with {len(node.args)} of "
                            f"{len(callee.params)} arguments"
                        )


# ----------------------------------------------------------------- numeric


def check_div_zero(analysis: Analysis, aggressive: bool, policies=frozenset()):
    """Division/remainder by zero: literal, resolved, or raw-taint divisor."""
    taint = "div_taint" in policies
    for trace in analysis.traces.values():
        for point in trace.points:
            for node in _point_exprs(point):
                if not (isinstance(node, ast.Binary) and node.op in ("/", "%")):
                    continue
                divisor = analysis.eval_expr(node.rhs, point.env)
                if divisor.is_const and divisor.value == 0:
                    yield node.line, "division by zero"
                elif taint and divisor.kind == "taint" and divisor.value == 0:
                    yield node.line, "division by unvalidated input"
                elif aggressive and divisor.kind == "unknown":
                    yield node.line, "possible division by zero"


def check_int_overflow(analysis: Analysis, aggressive: bool, policies=frozenset()):
    """Signed arithmetic whose resolved result exceeds the int range."""
    near_max = "int_near_max" in policies
    for trace in analysis.traces.values():
        for point in trace.points:
            for node in _point_exprs(point):
                if not (isinstance(node, ast.Binary) and node.op in ("+", "-", "*")):
                    continue
                node_ty = node.ty
                if not (isinstance(node_ty, ty.IntType) and node_ty.signed and node_ty.bits == 32):
                    continue
                lhs = analysis.eval_expr(node.lhs, point.env)
                rhs = analysis.eval_expr(node.rhs, point.env)
                if lhs.is_const and rhs.is_const:
                    result = {
                        "+": lhs.value + rhs.value,
                        "-": lhs.value - rhs.value,
                        "*": lhs.value * rhs.value,
                    }[node.op]
                    if not INT_MIN <= result <= INT_MAX:
                        yield node.line, f"signed overflow: {node.op} yields {result}"
                        continue
                if near_max:
                    for side in (lhs, rhs):
                        if side.is_const and abs(side.value) >= NEAR_MAX:
                            yield node.line, "arithmetic near INT_MAX may overflow"
                            break


# -------------------------------------------------------------- null deref


def _deref_names(node: ast.Expr) -> Iterator[tuple[str, int]]:
    if isinstance(node, ast.Unary) and node.op == "*" and isinstance(node.operand, ast.Ident):
        yield node.operand.name, node.line
    if isinstance(node, ast.Index) and isinstance(node.base, ast.Ident):
        yield node.base.name, node.line
    if isinstance(node, ast.Member) and node.arrow and isinstance(node.base, ast.Ident):
        yield node.base.name, node.line


def check_null_deref(analysis: Analysis, aggressive: bool, policies=frozenset()):
    """Dereference of a (possibly) null pointer."""
    flow_insensitive = "null_flow_insensitive" in policies
    store_only = "null_store_only" in policies
    for trace in analysis.traces.values():
        facts = PointerFacts(analysis, trace)
        # The flow-insensitive variant (Infer's bias) judges conditionality
        # *syntactically*: an assignment under any `if` is conditional even
        # when the guard is a compile-time constant.
        syntactically_guarded: set[int] = set()
        if flow_insensitive:
            for stmt in ast.walk_stmts(trace.func.body):
                if isinstance(stmt, ast.If):
                    for arm in (stmt.then, stmt.otherwise):
                        if arm is None:
                            continue
                        for inner in ast.walk_stmts(arm):
                            for expr in ast.statement_exprs(inner):
                                for node in ast.walk_expr(expr):
                                    syntactically_guarded.add(id(node))
        ever_null: set[str] = set()
        unconditionally_fixed: set[str] = set()
        for i, point in enumerate(trace.points):
            stmt = point.stmt
            if isinstance(stmt, ast.VarDecl) and isinstance(stmt.init, ast.NullLit):
                ever_null.add(stmt.name)
            store_targets = _assign_target_ids(point)
            for node in _point_exprs(point):
                if isinstance(node, ast.Assign) and isinstance(node.target, ast.Ident):
                    if isinstance(node.value, ast.NullLit):
                        ever_null.add(node.target.name)
                    elif point.certainty == "taken" and id(node) not in syntactically_guarded:
                        unconditionally_fixed.add(node.target.name)
                is_store = id(node) in store_targets
                for name, line in _deref_names(node):
                    if store_only and not is_store:
                        continue
                    fact = facts.facts[i].get(name)
                    if fact == ("null",):
                        yield line, f"null dereference of {name}"
                    elif fact == ("maybe_null",) and aggressive:
                        yield line, f"possible null dereference of {name}"
                    elif (
                        flow_insensitive
                        and name in ever_null
                        and name not in unconditionally_fixed
                        and fact != ("null",)
                    ):
                        yield line, f"{name} may be null here"


# ------------------------------------------------------------------- uninit


def check_uninit(analysis: Analysis, aggressive: bool, policies=frozenset()):
    """Read of a scalar local before initialization."""
    for trace in analysis.traces.values():
        # Locals whose address escapes are excluded entirely: another
        # function may initialize them, and real uninit checkers mute them
        # to avoid false positives (the paper's MSan discussion, applied
        # statically).
        escaped: set[str] = set()
        for point in trace.points:
            for node in _point_exprs(point):
                if (
                    isinstance(node, ast.Unary)
                    and node.op == "&"
                    and isinstance(node.operand, ast.Ident)
                ):
                    escaped.add(node.operand.name)
        reported: set[str] = set()
        for point in trace.points:
            for expr in _stmt_exprs(point.stmt):
                for node in ast.walk_expr(expr):
                    if isinstance(node, ast.Assign):
                        continue
                    if not isinstance(node, ast.Ident):
                        continue
                    if node.name in reported or node.name in escaped:
                        continue
                    value = point.env.get(node.name)
                    if value is None:
                        continue
                    if _is_assign_target(expr, node) or _is_address_taken(expr, node):
                        continue
                    if value.kind == "uninit":
                        reported.add(node.name)
                        yield node.line, f"{node.name} is used uninitialized"
                    elif value.kind == "maybe_init" and aggressive:
                        reported.add(node.name)
                        yield node.line, f"{node.name} may be used uninitialized"


def _is_assign_target(root: ast.Expr, ident: ast.Ident) -> bool:
    for node in ast.walk_expr(root):
        if isinstance(node, ast.Assign) and node.target is ident:
            return True
        if isinstance(node, ast.Unary) and node.op in ("++", "--", "p++", "p--"):
            if node.operand is ident:
                return True
    return False


def _is_address_taken(root: ast.Expr, ident: ast.Ident) -> bool:
    for node in ast.walk_expr(root):
        if isinstance(node, ast.Unary) and node.op == "&" and node.operand is ident:
            return True
    return False


def check_partial_init(analysis: Analysis, aggressive: bool, policies=frozenset()):
    """memset/strncpy that initializes less than the destination buffer."""
    for trace in analysis.traces.values():
        facts = PointerFacts(analysis, trace)
        for point in trace.points:
            for node in _point_exprs(point):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Ident)
                    and node.func.name in ("memset", "strncpy")
                    and len(node.args) == 3
                    and isinstance(node.args[0], ast.Ident)
                ):
                    continue
                size = facts.array_sizes.get(node.args[0].name)
                if size is None:
                    continue
                count = analysis.eval_expr(node.args[2], point.env)
                if count.is_const and count.value < size:
                    yield node.line, (
                        f"{node.func.name} initializes {count.value} of {size} bytes"
                    )
                elif aggressive and not count.is_const:
                    yield node.line, f"{node.func.name} may leave {node.args[0].name} partially initialized"


# --------------------------------------------------------------- UB shapes


def check_ub_shift_cast(analysis: Analysis, aggressive: bool, policies=frozenset()):
    """Oversized shifts, overflowing float->int casts, pointer-wrap guards."""
    for trace in analysis.traces.values():
        for point in trace.points:
            for node in _point_exprs(point):
                if isinstance(node, ast.Binary) and node.op in ("<<", ">>"):
                    count = analysis.eval_expr(node.rhs, point.env)
                    width = 32
                    lhs_ty = node.lhs.ty
                    if isinstance(lhs_ty, ty.IntType):
                        width = max(lhs_ty.bits, 32)
                    if count.is_const and not 0 <= count.value < width:
                        yield node.line, f"shift by {count.value} exceeds width {width}"
                    elif aggressive and count.kind in ("unknown", "taint"):
                        yield node.line, "shift count may exceed the type width"
                if isinstance(node, ast.Cast) and isinstance(node.target_type, ty.IntType):
                    inner = analysis.eval_expr(node.operand, point.env)
                    if (
                        inner.is_const
                        and isinstance(inner.value, float)
                        and not node.target_type.min_value
                        <= inner.value
                        <= node.target_type.max_value
                    ):
                        yield node.line, "float-to-int cast overflows"
                if (
                    isinstance(node, ast.Binary)
                    and node.op in ("<", "<=", ">", ">=")
                    and isinstance(node.lhs, ast.Binary)
                    and node.lhs.op == "+"
                ):
                    lhs_ty = ty.decay(node.lhs.ty or ty.INT)
                    if lhs_ty.is_pointer and _same_ident(node.lhs.lhs, node.rhs):
                        yield node.line, "pointer overflow check is undefined"


def _same_ident(a: ast.Expr, b: ast.Expr) -> bool:
    return isinstance(a, ast.Ident) and isinstance(b, ast.Ident) and a.name == b.name


def check_cast_struct(analysis: Analysis, aggressive: bool, policies=frozenset()):
    """Casting a smaller object's address to a larger struct pointer."""
    for trace in analysis.traces.values():
        for point in trace.points:
            for node in _point_exprs(point):
                if not isinstance(node, ast.Cast):
                    continue
                target = node.target_type
                if not (isinstance(target, ty.PointerType) and target.pointee.is_struct):
                    continue
                operand = node.operand
                if (
                    isinstance(operand, ast.Unary)
                    and operand.op == "&"
                    and isinstance(operand.operand, ast.Ident)
                ):
                    source_ty = operand.operand.ty
                    if source_ty is not None and source_ty.size() < target.pointee.size():
                        yield node.line, (
                            f"cast of {source_ty} object to {target.pointee} pointer"
                        )


def check_mul_zero(analysis: Analysis, aggressive: bool, policies=frozenset()):
    """Style nag: multiplication by a resolved zero (an FP generator —
    suspicious-looking but harmless code in repaired variants)."""
    for trace in analysis.traces.values():
        for point in trace.points:
            for node in _point_exprs(point):
                if isinstance(node, ast.Binary) and node.op == "*":
                    for side in (node.lhs, node.rhs):
                        value = analysis.eval_expr(side, point.env)
                        if value.is_const and value.value == 0 and not isinstance(
                            side, (ast.IntLit, ast.FloatLit)
                        ):
                            yield node.line, "multiplication by zero"
                            break
