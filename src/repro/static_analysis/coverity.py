"""Coverity analog: broad checker portfolio, global/loop-aware value flow.

Strengths mirrored from Table 3: near-total recall on the small
"API misuse" rows (CWE-475/685/758), useful recall on divide-by-zero via
taint reasoning, resolved-arithmetic integer overflow.  Its FP profile
comes from aggressive "maybe" reporting in the heap-state, uninit, and
divide-by-zero checkers.
"""

from __future__ import annotations

from repro.static_analysis.base import StaticAnalyzer


class Coverity(StaticAnalyzer):
    name = "coverity"
    caps = frozenset({"const_true", "global_flag", "loop"})
    checkers = (
        "stack_bounds",
        "heap_state",
        "memcpy_overlap",
        "call_args",
        "div_zero",
        "int_overflow",
        "null_deref",
        "uninit",
        "partial_init",
        "ub_shift_cast",
        "cast_struct",
    )
    aggressive = frozenset({"heap_state", "uninit", "ub_shift_cast"})
    policies = frozenset()
