"""Cppcheck analog: local, mostly syntactic analysis.

Resolves straight-line constants and ``if (1)`` guards only.  Perfect on
the purely syntactic rows (overlapping memcpy, wrong argument count),
useful on literal out-of-bounds indices and double free, blind to
anything requiring inter-procedural or global reasoning.  Its FPs come
from the partial-initialization heuristic and the multiplication-by-zero
style nag, which misfire on repaired-but-odd-looking good variants.
"""

from __future__ import annotations

from repro.static_analysis.base import StaticAnalyzer


class Cppcheck(StaticAnalyzer):
    name = "cppcheck"
    caps = frozenset({"const_true"})
    checkers = (
        "stack_bounds",
        "memcpy_overlap",
        "call_args",
        "div_zero",
        "null_deref",
        "uninit",
        "partial_init",
        "mul_zero",
    )
    aggressive = frozenset({"partial_init"})
    policies = frozenset({"null_store_only", "bounds_write_only"})
