"""Unified diagnostics: one record shape for all four tool models.

The repo grew four finding vocabularies — three AST analyzer analogs
emitting :class:`~repro.static_analysis.base.StaticFinding` and the
IR-level :class:`~repro.static_analysis.ub_oracle.UBOracle` emitting
:class:`~repro.static_analysis.ub_oracle.UBFinding` — which forced every
consumer (CLI rendering, triage, evaluation) to special-case the source.
:class:`Diagnostic` is the common record: source location, severity,
checker id, Table 5 category, and the interprocedural trace when the
flagged behavior lives inside a summarized callee.

Two consumers are built on top:

* :func:`diagnostic_sort_key` — the canonical deterministic order
  (checker id first, then location) shared by ``repro analyze --json``
  and the SARIF exporter;
* :class:`Baseline` — a committed suppression file keyed by stable
  fingerprints (line numbers excluded, so unrelated edits above a known
  finding do not un-suppress it).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.static_analysis.base import StaticFinding
from repro.static_analysis.ub_oracle import CHECKER_CATEGORY, UBFinding

#: Schema version for ``repro analyze --json`` payloads; bump on any
#: field or ordering change.
ANALYZE_SCHEMA_VERSION = 2

#: Baseline suppression-file format version.
BASELINE_VERSION = 1

#: Table 5 category per AST-tool checker (the UB oracle's checkers map
#: through :data:`~repro.static_analysis.ub_oracle.CHECKER_CATEGORY`).
STATIC_CHECKER_CATEGORY = {
    "stack_bounds": "MemError",
    "heap_bounds": "MemError",
    "heap_state": "MemError",
    "memcpy_overlap": "MemError",
    "call_args": "Misc",
    "div_zero": "IntError",
    "int_overflow": "IntError",
    "null_deref": "MemError",
    "uninit": "UninitMem",
    "partial_init": "UninitMem",
    "ub_shift_cast": "IntError",
    "cast_struct": "Misc",
    "mul_zero": "IntError",
}

#: Table 5 category per sanitizer report kind — the dynamic-tool side
#: of the unified model (``repro.sanitizers``).
SANITIZER_KIND_CATEGORY = {
    "stack-buffer-overflow": "MemError",
    "heap-buffer-overflow": "MemError",
    "global-buffer-overflow": "MemError",
    "heap-use-after-free": "MemError",
    "double-free": "MemError",
    "bad-free": "MemError",
    "memcpy-param-overlap": "MemError",
    "signed-integer-overflow": "IntError",
    "division-by-zero": "IntError",
    "invalid-shift": "IntError",
    "null-pointer-dereference": "MemError",
    "function-type-mismatch": "Misc",
    "use-of-uninitialized-value": "UninitMem",
}

#: Runtime addresses in sanitizer report details are layout-dependent
#: (they differ across implementations and even relocations of the same
#: program); scrubbing them keeps Diagnostic fingerprints stable.
_ADDRESS = re.compile(r"0x[0-9a-fA-F]+")

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One finding in the unified cross-tool shape."""

    tool: str
    checker: str
    #: Table 5 category ("Misc" when the checker has no mapping).
    category: str
    #: "error" (confirmed) or "warning" (possible / AST-tool default).
    severity: str
    line: int
    function: str = ""
    message: str = ""
    #: Interprocedural route ("func:line" frames, outermost first).
    trace: tuple[str, ...] = ()

    @property
    def fingerprint(self) -> str:
        """Stable suppression key: location-independent within a function.

        Deliberately excludes the line number — a baseline should
        survive edits that only shift a known finding down the file.
        """
        text = "|".join((self.tool, self.checker, self.function, self.message))
        return hashlib.sha256(text.encode()).hexdigest()[:16]

    def to_json(self) -> dict:
        return {
            "tool": self.tool,
            "checker": self.checker,
            "category": self.category,
            "severity": self.severity,
            "line": self.line,
            "function": self.function,
            "message": self.message,
            "trace": list(self.trace),
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        """One CLI line in the unified format."""
        where = f"{self.function}:{self.line}" if self.function else f"line {self.line}"
        head = (
            f"{where:<24} {self.category:<10} {self.severity:<8} "
            f"{self.tool}/{self.checker}: {self.message}"
        )
        if self.trace:
            head += f"\n{'':<24} via {' -> '.join(self.trace)}"
        return head


def diagnostic_sort_key(diag: Diagnostic) -> tuple:
    """Canonical deterministic order: checker id, then location."""
    return (diag.checker, diag.line, diag.function, diag.tool, diag.message)


def from_ub_finding(finding: UBFinding) -> Diagnostic:
    return Diagnostic(
        tool=finding.tool,
        checker=finding.checker,
        category=finding.category,
        severity=ERROR if finding.confidence == "confirmed" else WARNING,
        line=finding.line,
        function=finding.function,
        message=finding.message,
        trace=tuple(finding.trace),
    )


def from_static_finding(finding: StaticFinding) -> Diagnostic:
    return Diagnostic(
        tool=finding.tool,
        checker=finding.checker,
        category=STATIC_CHECKER_CATEGORY.get(finding.checker, "Misc"),
        severity=WARNING,
        line=finding.line,
        function="",
        message=finding.message,
    )


def from_sanitizer_finding(finding, function: str = "") -> Diagnostic:
    """Bridge a :class:`~repro.sanitizers.base.SanitizerFinding`.

    Sanitizer reports are dynamic evidence, so they map to ``error``
    severity; the report kind doubles as the checker id.  Addresses in
    the detail text are scrubbed so the fingerprint survives layout
    changes (relocation, re-linking) that move the fault but not the
    bug.
    """
    detail = _ADDRESS.sub("0x?", finding.detail)
    message = f"{finding.kind}: {detail}" if detail else finding.kind
    return Diagnostic(
        tool=finding.tool,
        checker=finding.kind,
        category=SANITIZER_KIND_CATEGORY.get(finding.kind, "Misc"),
        severity=ERROR,
        line=finding.line,
        function=function,
        message=message,
    )


def to_diagnostics(findings) -> list[Diagnostic]:
    """Convert any mix of UBFinding/StaticFinding/SanitizerFinding/Diagnostic."""
    from repro.sanitizers.base import SanitizerFinding

    out: list[Diagnostic] = []
    for finding in findings:
        if isinstance(finding, Diagnostic):
            out.append(finding)
        elif isinstance(finding, UBFinding):
            out.append(from_ub_finding(finding))
        elif isinstance(finding, StaticFinding):
            out.append(from_static_finding(finding))
        elif isinstance(finding, SanitizerFinding):
            out.append(from_sanitizer_finding(finding))
        else:
            raise TypeError(f"cannot unify finding of type {type(finding).__name__}")
    return sorted(out, key=diagnostic_sort_key)


def all_tool_diagnostics(program, oracle=None) -> list[Diagnostic]:
    """Run all four tool models over *program*, unified and sorted."""
    from repro.static_analysis import all_static_tools
    from repro.static_analysis.ub_oracle import UBOracle

    oracle = oracle if oracle is not None else UBOracle()
    findings: list = list(oracle.analyze(program))
    for tool in all_static_tools():
        findings.extend(tool.analyze(program))
    return to_diagnostics(findings)


# ------------------------------------------------------------------- baseline


@dataclass
class Baseline:
    """A committed set of suppressed finding fingerprints.

    The file is reviewable JSON: each suppression carries the checker
    and message it was minted from, so a stale entry is recognizable at
    a glance.  Unknown fingerprints are harmless; matching is exact.
    """

    suppressions: dict[str, dict] = field(default_factory=dict)

    def __contains__(self, diag: Diagnostic) -> bool:
        return diag.fingerprint in self.suppressions

    def filter(self, diagnostics: list[Diagnostic]) -> list[Diagnostic]:
        return [d for d in diagnostics if d not in self]

    def suppressed(self, diagnostics: list[Diagnostic]) -> list[Diagnostic]:
        return [d for d in diagnostics if d in self]

    @staticmethod
    def from_diagnostics(diagnostics: list[Diagnostic]) -> "Baseline":
        baseline = Baseline()
        for diag in sorted(diagnostics, key=diagnostic_sort_key):
            baseline.suppressions.setdefault(
                diag.fingerprint,
                {
                    "tool": diag.tool,
                    "checker": diag.checker,
                    "function": diag.function,
                    "message": diag.message,
                },
            )
        return baseline

    @staticmethod
    def load(path: str | os.PathLike) -> "Baseline":
        document = json.loads(Path(path).read_text())
        if document.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path} has version {document.get('version')!r}; "
                f"expected {BASELINE_VERSION}"
            )
        return Baseline(suppressions=dict(document.get("suppressions", {})))

    def save(self, path: str | os.PathLike) -> None:
        document = {
            "version": BASELINE_VERSION,
            "suppressions": {
                fp: self.suppressions[fp] for fp in sorted(self.suppressions)
            },
        }
        Path(path).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
