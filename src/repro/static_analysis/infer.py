"""Infer analog: separation-logic-flavored memory and nullness analysis.

Follows calls and pointer aliases (its inter-procedural strength), runs a
deliberately flow-insensitive null checker (high recall, high FP — the
77%/69% row), a near-INT_MAX overflow heuristic (49%/25%), and an
aggressive heap-state checker.  No syntactic API checkers: it scores 0 on
CWE-475/685 like the real tool.
"""

from __future__ import annotations

from repro.static_analysis.base import StaticAnalyzer


class Infer(StaticAnalyzer):
    name = "infer"
    caps = frozenset({"const_true", "func", "ptr_alias"})
    checkers = (
        "heap_state",
        "heap_bounds",
        "null_deref",
        "int_overflow",
        "uninit",
    )
    aggressive = frozenset({"heap_state", "null_deref"})
    policies = frozenset({"null_flow_insensitive", "int_near_max"})
