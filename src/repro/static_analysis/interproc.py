"""Interprocedural summary layer: call graph, SCCs, bottom-up summaries.

The intraprocedural analyses in :mod:`repro.ir.dataflow` stop at call
boundaries: a pointer handed to a module-internal callee is summarized
only as "may be written", a parameter's interval is known only when every
call site passes a syntactic constant, and nothing at all is known about
reads, dereferences, frees, or out-of-bounds accesses *inside* the
callee.  Juliet's ``*_badSink`` call chains live exactly there, so the
UB oracle systematically under-reports cross-function flows.

This module computes context-insensitive whole-program summaries:

1. **Call graph** over the lowered IR (:class:`CallGraph`), with
   unresolved targets (calls to functions absent from the module) kept
   separate — their effects widen to the conservative defaults the
   intraprocedural analyses already use for opaque calls.
2. **SCC condensation** via Tarjan's algorithm.  Tarjan emits SCCs in
   reverse-topological order (callees before callers), which is exactly
   the bottom-up order summary computation needs.  Functions not
   reachable from the entry points are excluded from the order.
3. **Bottom-up summary computation** (:func:`summarize_module`): each
   SCC is iterated to a fixpoint (trivial for singleton SCCs without
   self-loops); recursion is bounded by :data:`MAX_SCC_ROUNDS`, after
   which still-changing summary parts widen to top (unknown returns,
   dropped access hulls).
4. **Top-down parameter environments**: after summaries stabilize, one
   pass in topological order (callers first) propagates flow-sensitive
   argument intervals into callee parameter seeds — the
   context-insensitive hull over every call site.  This is what lets the
   interval checkers fire on ``shift(amount)`` / ``scale(big)`` shapes
   where the argument is routed through a stack slot and the syntactic
   constant hull of :meth:`IntervalAnalysis._param_intervals` gives up.

Summaries are content-addressed by a *transitive* function digest
(:func:`function_digests`): own IR text plus the digests of all resolved
callees (SCC members are digested jointly), so editing one function
invalidates exactly the summaries whose meaning could change — see
:mod:`repro.static_analysis.summary_cache`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.ir.dataflow.framework import DataflowAnalysis, dominates, dominators, solve
from repro.ir.dataflow.pointsto import (
    READ_ONLY_BUILTINS,
    WRITES_THROUGH_ARG0,
    PointsTo,
)
from repro.ir.instructions import (
    BinOp,
    Call,
    CallBuiltin,
    Cast,
    Const,
    Load,
    Move,
    Reg,
    Ret,
    Store,
)
from repro.ir.module import Function, Module
from repro.ir.printer import format_function

#: Bump when summary semantics change: part of every digest, so stale
#: on-disk caches invalidate themselves.
SUMMARY_VERSION = 1

#: Fixpoint rounds per SCC before widening to top.
MAX_SCC_ROUNDS = 8

#: Interprocedural trace frames kept per effect ("func:line" hops).
MAX_CHAIN_DEPTH = 8

#: Builtins that read through pointer arguments at the given positions
#: (beyond the generic read-only set, whose every pointer arg is read).
_READS_THROUGH: dict[str, tuple[int, ...]] = {
    "memcpy": (1,),
    "memmove": (1,),
    "strcpy": (1,),
    "strncpy": (1,),
    "strcat": (1,),
}

MUST = "must"
MAY = "may"

Interval = Optional[tuple[int, int]]


def _conf_join(a: str, b: str) -> str:
    return MUST if a == MUST and b == MUST else MAY


@dataclass(frozen=True)
class ParamEffect:
    """One summarized effect on a pointer parameter, with its trace.

    ``conf`` is MUST when the effect happens on every path through the
    callee, MAY otherwise.  ``chain`` records the interprocedural route
    as ``"function:line"`` frames, outermost call first, ending at the
    instruction that performs the access.
    """

    conf: str
    chain: tuple[str, ...] = ()

    def to_json(self) -> list:
        return [self.conf, list(self.chain)]

    @staticmethod
    def from_json(data: list) -> "ParamEffect":
        return ParamEffect(conf=data[0], chain=tuple(data[1]))


def _merge_effect(old: Optional[ParamEffect], new: ParamEffect) -> ParamEffect:
    """Deterministic merge: stronger confidence, then shorter/smaller chain."""
    if old is None:
        return new
    rank_old = (0 if old.conf == MUST else 1, len(old.chain), old.chain)
    rank_new = (0 if new.conf == MUST else 1, len(new.chain), new.chain)
    return old if rank_old <= rank_new else new


@dataclass
class FunctionSummary:
    """Context-insensitive effect summary for one function.

    Parameter indexes refer to the function's positional parameters; all
    pointer effects are at whole-object granularity with byte offsets
    tracked where constant.  A parameter absent from a map provably
    lacks that effect (given the summarized callees); the conservative
    "anything may happen" element is :meth:`top`.
    """

    name: str
    n_params: int
    #: param -> MUST/MAY: written through the pointer (transitive).
    writes: dict[int, str] = field(default_factory=dict)
    #: param -> effect: read through the pointer *before any summary
    #: write on that path* — the uninit-escape set.
    reads: dict[int, ParamEffect] = field(default_factory=dict)
    #: param -> effect: dereferenced (read or write) anywhere.
    derefs: dict[int, ParamEffect] = field(default_factory=dict)
    #: param -> effect: passed to free() (directly or transitively).
    frees: dict[int, ParamEffect] = field(default_factory=dict)
    #: param -> (lo, hi) byte range accessed through the pointer
    #: (hi is exclusive: offset + access size).
    accesses: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: Signed-interval return summary (None = unknown).
    returns: Interval = None
    #: Transitive global effect sets (the eval_order checker's input).
    reads_globals: frozenset = frozenset()
    writes_globals: frozenset = frozenset()
    #: True when the summary was widened (recursion budget, unresolved
    #: self-effects): consumers should treat it like an opaque call.
    widened: bool = False

    @staticmethod
    def top(name: str, n_params: int) -> "FunctionSummary":
        """The conservative element: may write/free anything it was
        handed, reports nothing, returns unknown."""
        return FunctionSummary(
            name=name,
            n_params=n_params,
            writes={i: MAY for i in range(n_params)},
            frees={i: ParamEffect(MAY, (f"{name}:?",)) for i in range(n_params)},
            widened=True,
        )

    # ------------------------------------------------------------ persistence

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "n_params": self.n_params,
            "writes": {str(k): v for k, v in sorted(self.writes.items())},
            "reads": {str(k): v.to_json() for k, v in sorted(self.reads.items())},
            "derefs": {str(k): v.to_json() for k, v in sorted(self.derefs.items())},
            "frees": {str(k): v.to_json() for k, v in sorted(self.frees.items())},
            "accesses": {str(k): list(v) for k, v in sorted(self.accesses.items())},
            "returns": list(self.returns) if self.returns is not None else None,
            "reads_globals": sorted(self.reads_globals),
            "writes_globals": sorted(self.writes_globals),
            "widened": self.widened,
        }

    @staticmethod
    def from_json(data: dict) -> "FunctionSummary":
        return FunctionSummary(
            name=data["name"],
            n_params=data["n_params"],
            writes={int(k): v for k, v in data["writes"].items()},
            reads={int(k): ParamEffect.from_json(v) for k, v in data["reads"].items()},
            derefs={int(k): ParamEffect.from_json(v) for k, v in data["derefs"].items()},
            frees={int(k): ParamEffect.from_json(v) for k, v in data["frees"].items()},
            accesses={int(k): (v[0], v[1]) for k, v in data["accesses"].items()},
            returns=tuple(data["returns"]) if data["returns"] is not None else None,
            reads_globals=frozenset(data["reads_globals"]),
            writes_globals=frozenset(data["writes_globals"]),
            widened=data["widened"],
        )


# ------------------------------------------------------------------ call graph


@dataclass
class CallGraph:
    """Resolved call edges over one module, plus unresolved targets."""

    module: Module
    #: caller -> set of module-internal callees.
    callees: dict[str, set[str]] = field(default_factory=dict)
    #: caller -> set of call targets absent from the module.
    external: dict[str, set[str]] = field(default_factory=dict)
    #: callee -> set of module-internal callers.
    callers: dict[str, set[str]] = field(default_factory=dict)

    def reachable(self, roots: tuple[str, ...]) -> set[str]:
        seen: set[str] = set()
        stack = [r for r in roots if r in self.module.functions]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.callees.get(name, ()))
        return seen


def build_call_graph(module: Module) -> CallGraph:
    graph = CallGraph(module=module)
    for name, func in module.functions.items():
        graph.callees.setdefault(name, set())
        graph.external.setdefault(name, set())
        for block in func.blocks.values():
            for instr in block.instrs:
                if isinstance(instr, Call):
                    if instr.callee in module.functions:
                        graph.callees[name].add(instr.callee)
                        graph.callers.setdefault(instr.callee, set()).add(name)
                    else:
                        graph.external[name].add(instr.callee)
    return graph


def tarjan_sccs(graph: CallGraph, names: list[str]) -> list[tuple[str, ...]]:
    """Strongly connected components of the restriction to *names*.

    Emitted in reverse-topological order (every SCC precedes its
    callers), i.e. exactly the bottom-up summary-computation order.
    Iterative formulation: lowered Juliet call chains are shallow, but
    generated torture programs need not be.
    """
    nameset = set(names)
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[tuple[str, ...]] = []
    counter = [0]

    def successors(name: str) -> list[str]:
        return sorted(c for c in graph.callees.get(name, ()) if c in nameset)

    for root in names:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            succs = successors(node)
            for i in range(child_index, len(succs)):
                succ = succs[i]
                if succ not in index:
                    work.append((node, i + 1))
                    work.append((succ, 0))
                    recurse = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(tuple(sorted(component)))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


#: Functions treated as whole-program entry points when present.
ENTRY_POINTS = ("main",)


def bottom_up_order(graph: CallGraph) -> tuple[list[tuple[str, ...]], list[str]]:
    """SCCs (reverse-topological) restricted to functions reachable from
    the entry points; dead functions are excluded from the order."""
    roots = tuple(n for n in ENTRY_POINTS if n in graph.module.functions)
    if not roots:
        roots = tuple(graph.module.functions)
    live = graph.reachable(roots)
    names = [n for n in graph.module.functions if n in live]
    sccs = tarjan_sccs(graph, names)
    order = [name for scc in sccs for name in scc]
    return sccs, order


# -------------------------------------------------------------------- digests


def function_digests(module: Module, graph: CallGraph | None = None) -> dict[str, str]:
    """Transitive content digest per function (reachable or not).

    ``digest(f) = H(version, ir(f), joint SCC text, digests of
    out-of-SCC resolved callees, names of unresolved callees)`` — the
    full input set of :func:`summarize_module` for that function, so a
    pass pipeline that rewrites any function in the transitive callee
    closure changes the digest and invalidates the cached summary.
    """
    graph = graph if graph is not None else build_call_graph(module)
    names = list(module.functions)
    sccs = tarjan_sccs(graph, names)
    digests: dict[str, str] = {}
    for scc in sccs:
        member_text = {name: format_function(module.functions[name]) for name in scc}
        joint = hashlib.sha256()
        joint.update(f"summary-v{SUMMARY_VERSION}".encode())
        for name in scc:
            joint.update(member_text[name].encode())
        callee_digests: list[str] = []
        external: list[str] = []
        for name in scc:
            for callee in sorted(graph.callees.get(name, ())):
                if callee not in scc:
                    callee_digests.append(f"{callee}={digests[callee]}")
            external.extend(sorted(graph.external.get(name, ())))
        joint_digest = joint.hexdigest()
        for name in scc:
            h = hashlib.sha256()
            h.update(member_text[name].encode())
            h.update(joint_digest.encode())
            for entry in sorted(set(callee_digests)):
                h.update(entry.encode())
            for entry in sorted(set(external)):
                h.update(f"extern:{entry}".encode())
            digests[name] = h.hexdigest()
    return digests


# ---------------------------------------------------------------- the context


@dataclass
class InterprocContext:
    """Everything the per-function analyses need to cross call edges."""

    module: Module
    graph: CallGraph
    #: function -> summary (reachable, summarized functions only).
    summaries: dict[str, FunctionSummary]
    #: function -> {param index -> interval} flow-sensitive call-site hull.
    param_env: dict[str, dict[int, Interval]]
    #: Bottom-up analysis order (dead functions excluded).
    order: list[str]
    #: SCC condensation in bottom-up order.
    sccs: list[tuple[str, ...]]
    #: function -> transitive IR digest (every function in the module).
    digests: dict[str, str]

    def summary(self, name: str) -> Optional[FunctionSummary]:
        """The usable summary for *name*: None for unknown functions and
        for widened (top) summaries, which consumers must treat exactly
        like opaque calls."""
        found = self.summaries.get(name)
        if found is None or found.widened:
            return None
        return found


# ------------------------------------------------------- per-function scanning


def _spill_slots(
    func: Function, pt: PointsTo
) -> dict[object, tuple[str, int, Reg]]:
    """Slot key -> its unique (block, index, stored register), for slots
    written exactly once and whose address never escapes.

    The O0 lowering spills every parameter into a dedicated frame slot
    and reloads it at each use, so register-chain aliasing alone never
    connects a use back to the parameter.  A slot with a single
    dominating store is a transparent copy: loads from it yield the
    stored value.
    """
    escaped = {o.key for o in pt.escaped_objects() if o.kind == "slot"}
    stores: dict[object, list[tuple[str, int, object]]] = {}
    poisoned: set[object] = set()
    for label, block in func.blocks.items():
        for idx, instr in enumerate(block.instrs):
            if isinstance(instr, Store):
                ptr = pt.pointer(instr.addr)
                if ptr is not None and ptr.obj.kind == "slot":
                    if ptr.offset == 0:
                        stores.setdefault(ptr.obj.key, []).append(
                            (label, idx, instr.src)
                        )
                    else:
                        poisoned.add(ptr.obj.key)
            elif isinstance(instr, CallBuiltin):
                # A builtin writing through the slot's address is an
                # untracked second store.
                if instr.name in WRITES_THROUGH_ARG0 and instr.args:
                    ptr = pt.pointer(instr.args[0])
                    if ptr is not None and ptr.obj.kind == "slot":
                        poisoned.add(ptr.obj.key)
    return {
        key: (entries[0][0], entries[0][1], entries[0][2])
        for key, entries in stores.items()
        if len(entries) == 1
        and key not in poisoned
        and key not in escaped
        and isinstance(entries[0][2], Reg)
    }


def _param_offsets(
    func: Function, pt: PointsTo | None = None
) -> dict[int, tuple[int, Optional[int]]]:
    """Register id -> (parameter index, byte offset or None).

    Like :func:`repro.ir.dataflow.reaching._param_aliases` but tracking
    constant offsets through Move/Cast/pointer-arithmetic chains — and,
    when a :class:`PointsTo` is supplied, through single-store spill
    slots (store param to slot, reload at each use), which is how the
    O0 lowerings materialize every parameter — so summaries can
    distinguish ``p`` from ``p + 8``.
    """
    from repro.ir.dataflow.intervals import _single_def_consts

    consts = _single_def_consts(func)
    spills = _spill_slots(func, pt) if pt is not None else {}
    doms = dominators(func) if spills else {}

    def const_of(operand) -> Optional[int]:
        if isinstance(operand, bool):
            return None
        if isinstance(operand, int):
            return operand
        if isinstance(operand, Reg):
            return consts.get(operand.id)
        return None

    def store_reaches(store_at: tuple[str, int], load_at: tuple[str, int]) -> bool:
        (sb, si), (lb, li) = store_at, load_at
        if sb == lb:
            return si < li
        return dominates(doms, sb, lb)

    alias: dict[int, tuple[int, Optional[int]]] = {
        i: (i, 0) for i in range(len(func.params))
    }
    changed = True
    while changed:
        changed = False
        for label, block in func.blocks.items():
            for idx, instr in enumerate(block.instrs):
                dst = instr.defines()
                if dst is None or dst.id in alias:
                    continue
                fact: Optional[tuple[int, Optional[int]]] = None
                if isinstance(instr, (Move, Cast)):
                    if isinstance(instr.src, Reg) and instr.src.id in alias:
                        fact = alias[instr.src.id]
                elif isinstance(instr, Load) and pt is not None:
                    ptr = pt.pointer(instr.addr)
                    if (
                        ptr is not None
                        and ptr.obj.kind == "slot"
                        and ptr.offset == 0
                        and ptr.obj.key in spills
                    ):
                        s_label, s_idx, src = spills[ptr.obj.key]
                        if src.id in alias and store_reaches(
                            (s_label, s_idx), (label, idx)
                        ):
                            fact = alias[src.id]
                elif isinstance(instr, BinOp) and instr.op in ("add", "sub"):
                    base, other = None, None
                    if isinstance(instr.lhs, Reg) and instr.lhs.id in alias:
                        base, other = alias[instr.lhs.id], instr.rhs
                    elif (
                        instr.op == "add"
                        and isinstance(instr.rhs, Reg)
                        and instr.rhs.id in alias
                    ):
                        base, other = alias[instr.rhs.id], instr.lhs
                    if base is not None:
                        delta = const_of(other)
                        if delta is not None and instr.op == "sub":
                            delta = -delta
                        offset = (
                            base[1] + delta
                            if base[1] is not None and delta is not None
                            else None
                        )
                        fact = (base[0], offset)
                if fact is not None:
                    alias[dst.id] = fact
                    changed = True
    return alias


def _must_blocks(func: Function) -> set[str]:
    """Blocks that execute on every terminating path (dominate all exits)."""
    doms = dominators(func)
    exits = [
        label
        for label, block in func.blocks.items()
        if label in doms and not block.successors()
    ]
    if not exits:
        return {func.entry}
    return {
        label
        for label in doms
        if all(dominates(doms, label, exit_) for exit_ in exits)
    }


class _WriteSets(DataflowAnalysis):
    """Forward must- and may-written parameter sets in one solve.

    State is ``(must: frozenset, may: frozenset)``; join intersects the
    must component and unions the may component.
    """

    direction = "forward"

    def __init__(self, func: Function, writes_of) -> None:
        self._func = func
        self._writes_of = writes_of

    def boundary(self, func: Function):
        return (frozenset(), frozenset())

    def top(self, func: Function):
        n = frozenset(range(len(self._func.params)))
        return (n, frozenset())

    def join(self, states):
        must = states[0][0]
        may = states[0][1]
        for state in states[1:]:
            must = must & state[0]
            may = may | state[1]
        return (must, may)

    def transfer_block(self, func: Function, label: str, state):
        must, may = set(state[0]), set(state[1])
        for instr in func.blocks[label].instrs:
            w_must, w_may = self._writes_of(instr)
            must |= w_must
            may |= w_must | w_may
        return (frozenset(must), frozenset(may))


def _trim(chain: tuple[str, ...]) -> tuple[str, ...]:
    return chain[:MAX_CHAIN_DEPTH]


def _summarize_function(
    func: Function,
    module: Module,
    summaries: dict[str, FunctionSummary],
) -> FunctionSummary:
    """One bottom-up summary pass over *func* given current *summaries*.

    Callees absent from *summaries* (external, unreachable, or not yet
    computed on the first SCC round) contribute opaque-call defaults:
    may-write + may-free every pointer argument, unknown return.
    """
    from repro.ir.dataflow.intervals import IntervalAnalysis

    pt = PointsTo(func, module)
    alias = _param_offsets(func, pt)
    must_blocks = _must_blocks(func)
    n_params = len(func.params)

    def param_of(operand) -> Optional[tuple[int, Optional[int]]]:
        if isinstance(operand, Reg):
            return alias.get(operand.id)
        return None

    consts = _const_env(func)

    def const_of(operand) -> Optional[int]:
        if isinstance(operand, int) and not isinstance(operand, bool):
            return operand
        if isinstance(operand, Reg):
            return consts.get(operand.id)
        return None

    # ---- write effects (drives both the summary and read-before-write)
    def writes_of(instr) -> tuple[set[int], set[int]]:
        """(must-written, may-written) parameter indexes of one instruction."""
        must: set[int] = set()
        may: set[int] = set()
        if isinstance(instr, Store):
            fact = param_of(instr.addr)
            if fact is not None:
                must.add(fact[0])
        elif isinstance(instr, CallBuiltin):
            if instr.name in WRITES_THROUGH_ARG0 and instr.args:
                fact = param_of(instr.args[0])
                if fact is not None:
                    must.add(fact[0])
        elif isinstance(instr, Call):
            callee = summaries.get(instr.callee)
            if callee is not None and callee.widened:
                callee = None
            for j, arg in enumerate(instr.args):
                fact = param_of(arg)
                if fact is None:
                    continue
                if callee is None:
                    may.add(fact[0])  # opaque: may initialize anything
                else:
                    kind = callee.writes.get(j)
                    if kind == MUST and fact[1] == 0:
                        must.add(fact[0])
                    elif kind is not None:
                        may.add(fact[0])
        return must, may

    write_result = solve(func, _WriteSets(func, writes_of))
    exit_musts: list[frozenset] = []
    for label, block in func.blocks.items():
        if label in write_result.block_out and isinstance(block.terminator, Ret):
            exit_musts.append(write_result.block_out[label][0])
    all_exits_must = (
        frozenset.intersection(*exit_musts) if exit_musts and write_result.converged
        else frozenset()
    )

    summary = FunctionSummary(name=func.name, n_params=n_params)
    for index in range(n_params):
        ever_may = any(
            index in write_result.block_out[label][1]
            for label in write_result.block_out
        )
        if index in all_exits_must:
            summary.writes[index] = MUST
        elif ever_may:
            summary.writes[index] = MAY

    # ---- effect scan: reads-before-write, derefs, frees, access ranges
    def here(line: int) -> tuple[str, ...]:
        return (f"{func.name}:{line}",)

    def add_read(index: int, conf: str, chain: tuple[str, ...]) -> None:
        summary.reads[index] = _merge_effect(
            summary.reads.get(index), ParamEffect(conf, _trim(chain))
        )

    def add_deref(index: int, conf: str, chain: tuple[str, ...]) -> None:
        summary.derefs[index] = _merge_effect(
            summary.derefs.get(index), ParamEffect(conf, _trim(chain))
        )

    def add_free(index: int, conf: str, chain: tuple[str, ...]) -> None:
        summary.frees[index] = _merge_effect(
            summary.frees.get(index), ParamEffect(conf, _trim(chain))
        )

    def add_access(index: int, lo: Optional[int], size: Optional[int]) -> None:
        if lo is None:
            summary.accesses.pop(index, None)
            unbounded.add(index)
            return
        if index in unbounded:
            return
        hi = lo + (size if size is not None else 1)
        old = summary.accesses.get(index)
        summary.accesses[index] = (
            (min(old[0], lo), max(old[1], hi)) if old is not None else (lo, hi)
        )

    unbounded: set[int] = set()
    globals_read: set[str] = set()
    globals_written: set[str] = set()

    for label, block in func.blocks.items():
        if label not in write_result.block_in:
            continue
        must_state, may_state = write_result.block_in[label]
        must_state, may_state = set(must_state), set(may_state)
        must_here = label in must_blocks
        for instr in block.instrs:
            if isinstance(instr, Load):
                fact = param_of(instr.addr)
                if fact is not None:
                    index, offset = fact
                    conf = (
                        MUST
                        if must_here and index not in may_state
                        else MAY
                    )
                    if index not in must_state:
                        add_read(index, conf, here(instr.line))
                    add_deref(index, MUST if must_here else MAY, here(instr.line))
                    add_access(index, offset, instr.type.size())
                gptr = pt.pointer(instr.addr)
                if gptr is not None and gptr.obj.kind == "global":
                    globals_read.add(gptr.obj.key)
            elif isinstance(instr, Store):
                fact = param_of(instr.addr)
                if fact is not None:
                    index, offset = fact
                    add_deref(index, MUST if must_here else MAY, here(instr.line))
                    add_access(index, offset, instr.type.size())
                gptr = pt.pointer(instr.addr)
                if gptr is not None and gptr.obj.kind == "global":
                    globals_written.add(gptr.obj.key)
            elif isinstance(instr, CallBuiltin):
                _builtin_effects(
                    instr, param_of, const_of, pt, must_here, must_state,
                    may_state, add_read, add_deref, add_free, add_access,
                    here, globals_written,
                )
            elif isinstance(instr, Call):
                callee = summaries.get(instr.callee)
                if callee is not None and callee.widened:
                    callee = None
                for j, arg in enumerate(instr.args):
                    fact = param_of(arg)
                    if fact is None:
                        continue
                    index, offset = fact
                    if callee is None:
                        # Opaque callee: no evidence to report, but any
                        # constant-offset knowledge ends here.
                        add_access(index, None, None)
                        continue
                    link = (f"{func.name}:{instr.line}",)
                    site_conf = MUST if must_here else MAY
                    eff = callee.reads.get(j)
                    if eff is not None and index not in must_state:
                        conf = _conf_join(site_conf, eff.conf)
                        if index in may_state:
                            conf = MAY
                        add_read(index, conf, link + eff.chain)
                    eff = callee.derefs.get(j)
                    if eff is not None:
                        add_deref(index, _conf_join(site_conf, eff.conf), link + eff.chain)
                    eff = callee.frees.get(j)
                    if eff is not None and offset == 0:
                        add_free(index, _conf_join(site_conf, eff.conf), link + eff.chain)
                    acc = callee.accesses.get(j)
                    if acc is not None and offset is not None:
                        add_access(index, offset + acc[0], acc[1] - acc[0])
                    elif j < callee.n_params and (
                        j in callee.writes or j in callee.derefs
                    ):
                        # The callee touches the pointer but we cannot
                        # bound where: drop the hull.
                        add_access(index, None, None)
            # Track write-state progression for read-before-write.
            w_must, w_may = writes_of(instr)
            must_state |= w_must
            may_state |= w_must | w_may

    # ---- transitive global effects
    for callee_name in sorted(
        set(
            instr.callee
            for block in func.blocks.values()
            for instr in block.instrs
            if isinstance(instr, Call)
        )
    ):
        callee = summaries.get(callee_name)
        if callee is not None:
            globals_read |= set(callee.reads_globals)
            globals_written |= set(callee.writes_globals)
    for block in func.blocks.values():
        for instr in block.instrs:
            if isinstance(instr, CallBuiltin):
                if instr.name in WRITES_THROUGH_ARG0 and instr.args:
                    gptr = pt.pointer(instr.args[0])
                    if gptr is not None and gptr.obj.kind == "global":
                        globals_written.add(gptr.obj.key)
    summary.reads_globals = frozenset(globals_read)
    summary.writes_globals = frozenset(globals_written)

    # ---- return interval (context-free: no caller-derived param seeds)
    class _SummaryView:
        """Minimal InterprocContext stand-in for the bottom-up phase."""

        param_env: dict = {}

        def __init__(self, table: dict) -> None:
            self.summaries = table

        def summary(self, name: str):
            return self.summaries.get(name)

    analysis = IntervalAnalysis(
        func, module, interproc=_SummaryView(summaries), param_seed={}
    )
    result = solve(func, analysis)
    hull: Interval = None
    saw_ret = False
    if result.converged:
        for label in result.block_in:
            state = dict(result.block_in[label])
            for instr in func.blocks[label].instrs:
                analysis.transfer_instr(instr, state)
            terminator = func.blocks[label].terminator
            if isinstance(terminator, Ret) and terminator.value is not None:
                value = analysis._operand(terminator.value, state)
                if not saw_ret:
                    hull, saw_ret = value, True
                elif hull is not None:
                    hull = (
                        None
                        if value is None
                        else (min(hull[0], value[0]), max(hull[1], value[1]))
                    )
    summary.returns = hull if saw_ret else None
    return summary


def _const_env(func: Function) -> dict[int, int]:
    """Registers holding a known integer constant (through Const/Cast/Move).

    O0 lowering materializes builtin length operands as registers
    (``cast 16 : int -> long``); resolving them here is what turns a
    callee's ``memset(p, c, 16)`` into a usable access range.
    """
    env: dict[int, int] = {}

    def resolve(operand) -> Optional[int]:
        if isinstance(operand, int) and not isinstance(operand, bool):
            return operand
        if isinstance(operand, Reg):
            return env.get(operand.id)
        return None

    changed = True
    while changed:
        changed = False
        for block in func.blocks.values():
            for instr in block.instrs:
                if isinstance(instr, Const) and isinstance(instr.value, int):
                    value: Optional[int] = instr.value
                elif isinstance(instr, (Cast, Move)):
                    value = resolve(instr.src)
                else:
                    continue
                if value is not None and env.get(instr.dst.id) != value:
                    env[instr.dst.id] = value
                    changed = True
    return env


def _builtin_effects(
    instr: CallBuiltin,
    param_of,
    const_of,
    pt: PointsTo,
    must_here: bool,
    must_state: set,
    may_state: set,
    add_read,
    add_deref,
    add_free,
    add_access,
    here,
    globals_written: set,
) -> None:
    """Fold one builtin call's pointer effects into the summary."""
    site_conf = MUST if must_here else MAY
    if instr.name == "free" and instr.args:
        fact = param_of(instr.args[0])
        if fact is not None and fact[1] == 0:
            add_free(fact[0], site_conf, here(instr.line))
        return
    if instr.name in WRITES_THROUGH_ARG0 and instr.args:
        fact = param_of(instr.args[0])
        if fact is not None:
            index, offset = fact
            add_deref(index, site_conf, here(instr.line))
            length = const_of(instr.args[-1]) if len(instr.args) > 1 else None
            add_access(index, offset, length)
        for pos in _READS_THROUGH.get(instr.name, ()):
            if pos < len(instr.args):
                fact = param_of(instr.args[pos])
                if fact is not None:
                    index, offset = fact
                    conf = MUST if must_here and index not in may_state else MAY
                    if index not in must_state:
                        add_read(index, conf, here(instr.line))
                    add_deref(index, site_conf, here(instr.line))
        return
    if instr.name in READ_ONLY_BUILTINS:
        for arg in instr.args:
            fact = param_of(arg)
            if fact is not None:
                index, offset = fact
                conf = MUST if must_here and index not in may_state else MAY
                if index not in must_state:
                    add_read(index, conf, here(instr.line))
                add_deref(index, site_conf, here(instr.line))


# --------------------------------------------------------------- the fixpoint


def summarize_module(
    module: Module,
    cache: "SummaryCache | None" = None,
) -> InterprocContext:
    """Bottom-up summaries + top-down parameter environments for *module*.

    With a :class:`~repro.static_analysis.summary_cache.SummaryCache`,
    each function's summary is looked up by transitive digest before
    being computed, and stored after; an SCC is only recomputed when at
    least one member misses.
    """
    graph = build_call_graph(module)
    sccs, order = bottom_up_order(graph)
    digests = function_digests(module, graph)
    summaries: dict[str, FunctionSummary] = {}

    for scc in sccs:
        if cache is not None:
            cached = {
                name: cache.lookup(module.name, name, digests[name]) for name in scc
            }
            if all(s is not None for s in cached.values()):
                summaries.update(cached)
                continue
        members = {name: module.functions[name] for name in scc}
        has_cycle = len(scc) > 1 or scc[0] in graph.callees.get(scc[0], ())
        rounds = MAX_SCC_ROUNDS if has_cycle else 1
        previous: dict[str, FunctionSummary] | None = None
        converged = not has_cycle
        for round_index in range(rounds):
            current: dict[str, FunctionSummary] = {}
            for name in scc:
                current[name] = _summarize_function(members[name], module, summaries)
            if has_cycle and round_index >= 2 and previous is not None:
                # Widen unstable interval parts so chains terminate.
                for name in scc:
                    old = previous.get(name)
                    new = current[name]
                    if old is not None and old.returns != new.returns:
                        new.returns = None
                    if old is not None and old.accesses != new.accesses:
                        grown = {
                            k
                            for k, v in new.accesses.items()
                            if old.accesses.get(k) != v
                        }
                        for k in grown:
                            new.accesses.pop(k, None)
            summaries.update(current)
            if previous is not None and current == previous:
                converged = True
                break
            previous = current
        if has_cycle and not converged:
            # Fixpoint budget exhausted: widen the whole SCC to top.
            for name in scc:
                summaries[name] = FunctionSummary.top(
                    name, len(members[name].params)
                )
        if cache is not None:
            for name in scc:
                cache.store(module.name, name, digests[name], summaries[name])

    ctx = InterprocContext(
        module=module,
        graph=graph,
        summaries=summaries,
        param_env={},
        order=order,
        sccs=sccs,
        digests=digests,
    )
    ctx.param_env.update(_param_environments(module, ctx))
    return ctx


def _param_environments(
    module: Module, ctx: InterprocContext
) -> dict[str, dict[int, Interval]]:
    """Flow-sensitive argument-interval hulls, propagated top-down.

    Functions are visited callers-first (reverse bottom-up order); each
    caller is solved with the environments computed so far, and its
    argument intervals at every call site are hulled into the callee's
    environment.  Calls *within* an SCC contribute nothing (recursive
    seeding would need its own fixpoint; unknown is sound), and a callee
    is only seeded when every reachable call site was analyzable.
    """
    from repro.ir.dataflow.intervals import IntervalAnalysis, _hull

    scc_of: dict[str, int] = {}
    for i, scc in enumerate(ctx.sccs):
        for name in scc:
            scc_of[name] = i

    env: dict[str, dict[int, object]] = {}
    for name in reversed(ctx.order):
        func = module.functions[name]
        analysis = IntervalAnalysis(func, module, interproc=ctx)
        result = solve(func, analysis)
        if not result.converged:
            # Mark every callee parameter unknown: a partial hull could
            # be unsound.
            for callee in ctx.graph.callees.get(name, ()):
                target = module.functions[callee]
                env.setdefault(callee, {}).update(
                    {i: "unknown" for i in range(len(target.params))}
                )
            continue
        for label in result.block_in:
            state = dict(result.block_in[label])
            for instr in func.blocks[label].instrs:
                if isinstance(instr, Call) and instr.callee in module.functions:
                    slots = env.setdefault(instr.callee, {})
                    n = len(module.functions[instr.callee].params)
                    if scc_of.get(instr.callee) == scc_of.get(name):
                        # Recursive call site: seeding would need its own
                        # fixpoint, so the whole environment widens.
                        slots.update({i: "unknown" for i in range(n)})
                    else:
                        for index in range(n):
                            arg = instr.args[index] if index < len(instr.args) else None
                            value = (
                                analysis._operand(arg, state) if arg is not None else None
                            )
                            if value is None:
                                slots[index] = "unknown"
                            elif slots.get(index) != "unknown":
                                current = slots.get(index)
                                slots[index] = (
                                    value if current is None else _hull(current, value)
                                )
                analysis.transfer_instr(instr, state)
    return {
        name: {
            index: value
            for index, value in slots.items()
            if value is not None and value != "unknown"
        }
        for name, slots in env.items()
        if any(value is not None and value != "unknown" for value in slots.values())
    }
