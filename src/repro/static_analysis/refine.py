"""Path-sensitive refinement of the divergence-implicated slice.

The interprocedural oracle is flow-sensitive but path-*insensitive*:
states join at CFG merge points, so a pointer that is null only on one
arm of a branch reaches the merged successor as may-null, and an object
initialized on one arm reaches it as MAYBE.  That is the right cost
model for whole-module analysis, but once
:func:`repro.core.bisect.bisect_divergence` has named a culprit pass
application — and with it a target *function* — the interesting slice is
small enough to afford path enumeration.

:func:`refine_findings` re-analyzes exactly that slice (the culprit
function plus its transitive callees): every acyclic entry→exit path is
materialized as a ``dead_edges`` restriction of the CFG (back edges are
never taken, so loop bodies are traversed once), interval-checked for
feasibility, and re-scanned with the same dataflow checkers.  Per-path
states have no joins, so each path delivers a definite verdict; the
merge is

* a finding observed on **no** feasible path is dropped (it lived only
  on an infeasible joined state);
* a finding confirmed on **every** feasible path is upgraded to
  confirmed;
* anything else stays possible.

Functions whose path count exceeds :data:`MAX_REFINE_PATHS` (or whose
every path is pruned as infeasible, which means the enumeration was
truncated by the acyclic restriction) keep their unrefined findings —
refinement only ever acts on a complete, feasible path enumeration.
"""

from __future__ import annotations

from repro.ir.dataflow import IntervalAnalysis, find_pointer_ub, find_uninit_uses, solve
from repro.ir.dataflow.pruning import infeasible_edges
from repro.ir.dataflow.reaching import UNINIT
from repro.ir.module import Function, Module
from repro.static_analysis.interproc import InterprocContext
from repro.static_analysis.ub_oracle import (
    CONFIRMED,
    POSSIBLE,
    UBFinding,
    _dedupe_sites,
    _finding,
)

#: Acyclic path budget per function; beyond this, refinement declines.
MAX_REFINE_PATHS = 64

#: Checkers the per-path re-scan can reproduce (the dataflow families).
#: Everything else (eval_order, line_macro, misc) passes through.
REFINABLE = frozenset(
    {
        "uninit_read",
        "signed_overflow",
        "shift_ub",
        "div_zero",
        "null_deref",
        "oob_access",
        "use_after_free",
        "double_free",
        "bad_free",
        "pointer_cmp",
    }
)


def slice_functions(ctx: InterprocContext, focus: str) -> set[str]:
    """The divergence-implicated slice: *focus* plus transitive callees."""
    if focus not in ctx.module.functions:
        return set()
    return ctx.graph.reachable((focus,))


def enumerate_paths(
    func: Function, cap: int = MAX_REFINE_PATHS
) -> list[tuple[str, ...]] | None:
    """All acyclic entry→exit block paths, or None past the *cap*."""
    paths: list[tuple[str, ...]] = []
    stack: list[tuple[str, tuple[str, ...]]] = [(func.entry, (func.entry,))]
    while stack:
        label, path = stack.pop()
        succs = [s for s in func.blocks[label].successors() if s not in path]
        if not func.blocks[label].successors():
            paths.append(path)
            if len(paths) > cap:
                return None
            continue
        if not succs:
            # Every successor is a back edge: the acyclic walk ends here
            # without reaching an exit — an incomplete path, not a
            # terminating one.  Dropping it keeps verdicts honest; the
            # all-paths-dropped case declines refinement below.
            continue
        for succ in reversed(succs):
            stack.append((succ, path + (succ,)))
    return paths


def _path_dead_edges(func: Function, path: tuple[str, ...]) -> set[tuple[str, str]]:
    """Edges that pin the CFG to exactly *path*."""
    taken = set(zip(path, path[1:]))
    dead: set[tuple[str, str]] = set()
    for label in path:
        for succ in func.blocks[label].successors():
            if (label, succ) not in taken:
                dead.add((label, succ))
    return dead


def _path_findings(
    func: Function,
    module: Module,
    ctx: InterprocContext,
    dead: set[tuple[str, str]],
) -> list | None:
    """One path's re-scan: dataflow findings, or None if infeasible."""
    analysis = IntervalAnalysis(func, module, interproc=ctx)
    result = solve(func, analysis, dead_edges=dead)
    if not result.converged:
        return None
    contradicted = infeasible_edges(func, analysis, result)
    live = {
        (a, b)
        for a in result.block_in
        for b in func.blocks[a].successors()
        if (a, b) not in dead
    }
    if contradicted & live:
        return None  # the intervals rule this path out
    findings: list[UBFinding] = []
    uses, _ = find_uninit_uses(
        func, module, interproc=ctx, dead_edges=dead
    )
    for use in uses:
        findings.append(
            _finding(
                "uninit_read",
                CONFIRMED if use.state == UNINIT else POSSIBLE,
                use.line,
                func.name,
                use.block,
                "path-refined uninitialized read",
                trace=use.via,
            )
        )
    int_findings: list = []
    for label in result.block_in:
        state = dict(result.block_in[label])
        for idx, instr in enumerate(func.blocks[label].instrs):
            analysis.transfer_instr(
                instr, state, findings=int_findings, where=(label, idx)
            )
    ptr_findings, _ = find_pointer_ub(
        func,
        module,
        interval_analysis=analysis,
        interval_result=result,
        interproc=ctx,
        dead_edges=dead,
    )
    for f in int_findings:
        findings.append(
            _finding(f.checker, f.confidence, f.line, func.name, f.block, f.message)
        )
    for f in ptr_findings:
        findings.append(
            _finding(
                f.checker, f.confidence, f.line, func.name, f.block, f.message,
                trace=f.via,
            )
        )
    return findings


def refine_function(
    func: Function, module: Module, ctx: InterprocContext
) -> dict[tuple[str, int], str] | None:
    """Per-site path-sensitive verdicts for *func*.

    Returns ``{(checker, line): "confirmed" | "possible"}`` covering
    every refinable site observed on at least one feasible path — sites
    absent from the map were observed on no feasible path.  Returns
    None when refinement declines (path cap, truncated enumeration,
    no feasible path).
    """
    paths = enumerate_paths(func)
    if not paths:
        return None
    observations: dict[tuple[str, int], list[str]] = {}
    feasible = 0
    for path in paths:
        findings = _path_findings(func, module, ctx, _path_dead_edges(func, path))
        if findings is None:
            continue
        feasible += 1
        per_path: dict[tuple[str, int], str] = {}
        for finding in findings:
            key = (finding.checker, finding.line)
            if per_path.get(key) != CONFIRMED:
                per_path[key] = finding.confidence
        for key, confidence in per_path.items():
            observations.setdefault(key, []).append(confidence)
    if feasible == 0:
        return None
    return {
        key: (
            CONFIRMED
            if len(confs) == feasible and all(c == CONFIRMED for c in confs)
            else POSSIBLE
        )
        for key, confs in observations.items()
    }


def refine_findings(
    module: Module,
    ctx: InterprocContext,
    findings: list[UBFinding],
    focus: str,
) -> tuple[list[UBFinding], dict[str, dict[str, int]]]:
    """Refine the *focus* slice's refinable findings path-sensitively.

    Returns the updated finding list plus a per-function report of what
    changed: ``{function: {"dropped": n, "upgraded": n, "kept": n}}``.
    Functions where refinement declines are reported with a ``skipped``
    marker and keep their findings untouched.
    """
    targets = slice_functions(ctx, focus)
    report: dict[str, dict[str, int]] = {}
    verdicts: dict[str, dict[tuple[str, int], str] | None] = {}
    for name in sorted(targets):
        verdicts[name] = refine_function(module.functions[name], module, ctx)

    refined: list[UBFinding] = []
    for finding in findings:
        if finding.function not in targets or finding.checker not in REFINABLE:
            refined.append(finding)
            continue
        stats = report.setdefault(
            finding.function, {"dropped": 0, "upgraded": 0, "kept": 0, "skipped": 0}
        )
        table = verdicts.get(finding.function)
        if table is None:
            stats["skipped"] += 1
            refined.append(finding)
            continue
        verdict = table.get((finding.checker, finding.line))
        if verdict is None:
            stats["dropped"] += 1
            continue
        if verdict == CONFIRMED and finding.confidence != CONFIRMED:
            stats["upgraded"] += 1
            refined.append(
                _finding(
                    finding.checker,
                    CONFIRMED,
                    finding.line,
                    finding.function,
                    finding.block,
                    finding.message + " (path-refined: holds on every feasible path)",
                    trace=finding.trace,
                )
            )
        else:
            stats["kept"] += 1
            refined.append(finding)
    return _dedupe_sites(refined), report
