"""SARIF 2.1.0 export for the unified diagnostics.

:func:`to_sarif` renders a list of
:class:`~repro.static_analysis.diagnostics.Diagnostic` records as one
SARIF log with a single run per producing tool.  The subset emitted is
deliberately small and strictly schema-conformant: rules (one per
checker, with the Table 5 category in rule properties), results with
physical + logical locations, and a ``codeFlows`` thread flow for
findings that carry an interprocedural trace.

:func:`validate_sarif` is an in-repo structural validator for exactly
that subset (the container has no ``jsonschema`` package, and the CI
gate needs *some* machine check that exports stay well-formed).  It
checks the invariants the official schema would: required properties,
types, ``ruleIndex``/``ruleId`` consistency, legal ``level`` values,
and 1-based region lines.  It is intentionally strict about what we
produce rather than lenient about what SARIF allows.
"""

from __future__ import annotations

from repro.static_analysis.diagnostics import Diagnostic, diagnostic_sort_key

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: SARIF result levels we emit (the schema also allows "none").
_LEVELS = frozenset({"error", "warning", "note"})


def _rule_id(diag: Diagnostic) -> str:
    return f"{diag.tool}/{diag.checker}"


def to_sarif(
    diagnostics: list[Diagnostic],
    artifact_uri: str,
    tool_version: str = "1.0.0",
) -> dict:
    """One SARIF 2.1.0 log: a run per tool, results in canonical order."""
    by_tool: dict[str, list[Diagnostic]] = {}
    for diag in sorted(diagnostics, key=diagnostic_sort_key):
        by_tool.setdefault(diag.tool, []).append(diag)

    runs = []
    for tool_name in sorted(by_tool):
        entries = by_tool[tool_name]
        rule_ids = sorted({_rule_id(d) for d in entries})
        rule_index = {rid: i for i, rid in enumerate(rule_ids)}
        rules = []
        for rid in rule_ids:
            sample = next(d for d in entries if _rule_id(d) == rid)
            rules.append(
                {
                    "id": rid,
                    "shortDescription": {"text": f"{sample.checker} checker"},
                    "properties": {"category": sample.category},
                }
            )
        results = []
        for diag in entries:
            result = {
                "ruleId": _rule_id(diag),
                "ruleIndex": rule_index[_rule_id(diag)],
                "level": diag.severity,
                "message": {"text": diag.message},
                "locations": [_location(diag, artifact_uri)],
                "partialFingerprints": {"repro/v1": diag.fingerprint},
                "properties": {"category": diag.category},
            }
            if diag.trace:
                result["codeFlows"] = [_code_flow(diag, artifact_uri)]
            results.append(result)
        runs.append(
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": tool_version,
                        "informationUri": "https://github.com/compdiff/repro",
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": runs,
    }


def _location(diag: Diagnostic, artifact_uri: str) -> dict:
    location = {
        "physicalLocation": {
            "artifactLocation": {"uri": artifact_uri},
            "region": {"startLine": max(1, diag.line)},
        }
    }
    if diag.function:
        location["logicalLocations"] = [
            {"name": diag.function, "kind": "function"}
        ]
    return location


def _code_flow(diag: Diagnostic, artifact_uri: str) -> dict:
    """The interprocedural trace as one SARIF thread flow.

    Frames are ``"function:line"`` strings produced by the summary
    layer; a ``?`` line (widened summaries) maps to the finding's own
    line so the flow stays schema-valid.
    """
    flow_locations = [
        {"location": _location(diag, artifact_uri)}
    ]
    for frame in diag.trace:
        name, _, line_text = frame.rpartition(":")
        line = int(line_text) if line_text.isdigit() else diag.line
        frame_diag = Diagnostic(
            tool=diag.tool,
            checker=diag.checker,
            category=diag.category,
            severity=diag.severity,
            line=line,
            function=name or frame,
            message=diag.message,
        )
        flow_locations.append({"location": _location(frame_diag, artifact_uri)})
    return {"threadFlows": [{"locations": flow_locations}]}


# ----------------------------------------------------------------- validation


def validate_sarif(document: dict) -> list[str]:
    """Structural problems in a SARIF log (empty list = valid).

    Validates the subset :func:`to_sarif` produces against the SARIF
    2.1.0 schema's requirements for that subset.
    """
    problems: list[str] = []

    def check(cond: bool, message: str) -> bool:
        if not cond:
            problems.append(message)
        return cond

    if not check(isinstance(document, dict), "log must be an object"):
        return problems
    check(document.get("version") == SARIF_VERSION,
          f"version must be {SARIF_VERSION!r}")
    check(isinstance(document.get("$schema"), str) and "sarif" in document["$schema"],
          "$schema must point at the SARIF schema")
    runs = document.get("runs")
    if not check(isinstance(runs, list) and runs, "runs must be a non-empty array"):
        return problems
    for run_index, run in enumerate(runs):
        where = f"runs[{run_index}]"
        if not check(isinstance(run, dict), f"{where} must be an object"):
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(run.get("tool"), dict) else None
        if check(isinstance(driver, dict), f"{where}.tool.driver is required"):
            check(
                isinstance(driver.get("name"), str) and driver["name"],
                f"{where}.tool.driver.name must be a non-empty string",
            )
            rules = driver.get("rules", [])
            rule_ids: list[str] = []
            if check(isinstance(rules, list), f"{where}: rules must be an array"):
                for i, rule in enumerate(rules):
                    if check(
                        isinstance(rule, dict) and isinstance(rule.get("id"), str),
                        f"{where}.rules[{i}] needs a string id",
                    ):
                        rule_ids.append(rule["id"])
            check(
                len(rule_ids) == len(set(rule_ids)),
                f"{where}: rule ids must be unique",
            )
        else:
            rule_ids = []
        results = run.get("results")
        if not check(isinstance(results, list), f"{where}.results must be an array"):
            continue
        for i, result in enumerate(results):
            rwhere = f"{where}.results[{i}]"
            if not check(isinstance(result, dict), f"{rwhere} must be an object"):
                continue
            message = result.get("message")
            check(
                isinstance(message, dict) and isinstance(message.get("text"), str),
                f"{rwhere}.message.text is required",
            )
            check(
                result.get("level") in _LEVELS,
                f"{rwhere}.level must be one of {sorted(_LEVELS)}",
            )
            rule_id = result.get("ruleId")
            check(isinstance(rule_id, str), f"{rwhere}.ruleId must be a string")
            index = result.get("ruleIndex")
            if index is not None and check(
                isinstance(index, int) and 0 <= index < len(rule_ids),
                f"{rwhere}.ruleIndex out of range",
            ):
                check(
                    rule_ids[index] == rule_id,
                    f"{rwhere}.ruleIndex does not match ruleId",
                )
            for j, location in enumerate(result.get("locations", [])):
                _validate_location(location, f"{rwhere}.locations[{j}]", check)
            for j, flow in enumerate(result.get("codeFlows", [])):
                fwhere = f"{rwhere}.codeFlows[{j}]"
                threads = flow.get("threadFlows") if isinstance(flow, dict) else None
                if not check(
                    isinstance(threads, list) and threads,
                    f"{fwhere}.threadFlows must be non-empty",
                ):
                    continue
                for k, thread in enumerate(threads):
                    locations = (
                        thread.get("locations") if isinstance(thread, dict) else None
                    )
                    if not check(
                        isinstance(locations, list) and locations,
                        f"{fwhere}.threadFlows[{k}].locations must be non-empty",
                    ):
                        continue
                    for m, entry in enumerate(locations):
                        if check(
                            isinstance(entry, dict) and "location" in entry,
                            f"{fwhere}.threadFlows[{k}].locations[{m}] "
                            "needs a location",
                        ):
                            _validate_location(
                                entry["location"],
                                f"{fwhere}.threadFlows[{k}].locations[{m}].location",
                                check,
                            )
    return problems


def _validate_location(location, where: str, check) -> None:
    if not check(isinstance(location, dict), f"{where} must be an object"):
        return
    physical = location.get("physicalLocation")
    if not check(isinstance(physical, dict), f"{where}.physicalLocation is required"):
        return
    artifact = physical.get("artifactLocation")
    check(
        isinstance(artifact, dict) and isinstance(artifact.get("uri"), str),
        f"{where}: artifactLocation.uri is required",
    )
    region = physical.get("region")
    if check(isinstance(region, dict), f"{where}.region is required"):
        check(
            isinstance(region.get("startLine"), int) and region["startLine"] >= 1,
            f"{where}.region.startLine must be a positive integer",
        )
