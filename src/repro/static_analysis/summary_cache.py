"""Incremental on-disk cache for interprocedural function summaries.

Summaries are content-addressed by the *transitive* IR digest of
:func:`repro.static_analysis.interproc.function_digests`: the digest
covers the function's own lowered text, its SCC, and every resolved
callee's digest, so a cached entry is valid exactly as long as nothing
in the function's semantic input set changed.  The cache key is
``(module name, function name)`` — one slot per function — and a lookup
whose stored digest differs from the requested one is an
**invalidation**: the pass pipeline (or the source) rewrote something in
the function's callee closure, and the stale summary is discarded.

The disk format is a single JSON document (version-stamped with
:data:`~repro.static_analysis.interproc.SUMMARY_VERSION`; mismatched or
corrupt files are ignored wholesale), intended to live next to the
campaign's other artifacts.  Loading and saving are explicit — the
analysis loop touches only the in-memory table — so a crashed run never
leaves a half-written cache behind: :meth:`SummaryCache.save` writes to
a temp file and renames.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.static_analysis.interproc import SUMMARY_VERSION, FunctionSummary

#: On-disk file name used by the CLI when given a cache *directory*.
CACHE_FILENAME = "summaries.json"


@dataclass
class SummaryCacheStats:
    """Hit/miss/invalidation accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    #: Lookups that found the function under a *different* digest — the
    #: entry was stale and has been discarded.
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class SummaryCache:
    """Digest-addressed store of :class:`FunctionSummary` records."""

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path: Optional[Path] = None
        if path is not None:
            self.path = Path(path)
            if self.path.is_dir():
                self.path = self.path / CACHE_FILENAME
        self.stats = SummaryCacheStats()
        #: (module, function) -> (digest, summary)
        self._entries: dict[tuple[str, str], tuple[str, FunctionSummary]] = {}
        if self.path is not None and self.path.exists():
            self.load()

    def __len__(self) -> int:
        return len(self._entries)

    # ----------------------------------------------------------------- access

    def lookup(
        self, module_name: str, func_name: str, digest: str
    ) -> Optional[FunctionSummary]:
        """The cached summary for this exact digest, or None.

        A same-name entry with a different digest counts as both a miss
        and an invalidation, and is evicted — its digest can never
        become valid again (digests are content hashes).
        """
        key = (module_name, func_name)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        stored_digest, summary = entry
        if stored_digest != digest:
            self.stats.misses += 1
            self.stats.invalidations += 1
            del self._entries[key]
            return None
        self.stats.hits += 1
        return summary

    def store(
        self, module_name: str, func_name: str, digest: str, summary: FunctionSummary
    ) -> None:
        self._entries[(module_name, func_name)] = (digest, summary)

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------ persistence

    def load(self) -> bool:
        """Replace the in-memory table from :attr:`path`.

        Returns False (leaving the table empty) when the file is absent,
        unparsable, or written by a different :data:`SUMMARY_VERSION`.
        """
        self._entries.clear()
        if self.path is None or not self.path.exists():
            return False
        try:
            document = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            return False
        if not isinstance(document, dict) or document.get("version") != SUMMARY_VERSION:
            return False
        try:
            for module_name, func_name, digest, data in document["entries"]:
                self._entries[(module_name, func_name)] = (
                    digest,
                    FunctionSummary.from_json(data),
                )
        except (KeyError, TypeError, ValueError, IndexError):
            self._entries.clear()
            return False
        return True

    def save(self) -> None:
        """Atomically persist the table to :attr:`path` (no-op if unset)."""
        if self.path is None:
            return
        document = {
            "version": SUMMARY_VERSION,
            "entries": [
                [module_name, func_name, digest, summary.to_json()]
                for (module_name, func_name), (digest, summary) in sorted(
                    self._entries.items()
                )
            ],
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.path)
