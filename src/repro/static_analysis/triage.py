"""Divergence triage: label a CompDiff discrepancy with a Table 5 category.

The paper hand-assigned each confirmed real-world divergence to one of
EvalOrder / UninitMem / IntError / MemError / PointerCmp / Misc (plus
the ``__LINE__`` class the repo seeds separately).  This module closes
that loop automatically: it takes the divergence site recovered by the
trace-alignment localizer (:mod:`repro.core.localize`) and matches it
against the UB oracle's instruction-level findings.  The nearest finding
within a small line window names the category and the culpable
instruction; a site with no nearby finding falls back to Misc — which is
exactly right for the miscompile-style seeds that have no source-level
UB to point at.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import CompilerConfig
from repro.core.localize import Localization, localize
from repro.minic import ast
from repro.minic import load
from repro.static_analysis.ub_oracle import UBFinding, UBOracle

#: Triage label space: the paper's Table 5 plus the seeded LINE class.
TABLE5_CATEGORIES = (
    "EvalOrder",
    "UninitMem",
    "IntError",
    "MemError",
    "PointerCmp",
    "LINE",
    "Misc",
)

#: Tie-break order among equally-near findings — differential and
#: pointer evidence is more specific than arithmetic-range evidence.
_CATEGORY_PRIORITY = {name: rank for rank, name in enumerate(
    ("EvalOrder", "LINE", "PointerCmp", "MemError", "UninitMem", "IntError", "Misc")
)}

#: Findings farther than this many lines from every divergence-site
#: candidate line do not explain the divergence.
DEFAULT_WINDOW = 2


@dataclass(frozen=True)
class TriageLabel:
    """One triaged divergence: category plus the supporting finding."""

    category: str
    confidence: str  # "confirmed" | "possible"
    #: Divergence line the label anchors to (0 when diverged at entry).
    line: int
    finding: UBFinding | None
    rationale: str

    @property
    def explained(self) -> bool:
        return self.finding is not None


def triage_divergence(
    findings: list[UBFinding],
    localization: Localization,
    window: int = DEFAULT_WINDOW,
) -> TriageLabel:
    """Label one localized divergence using the oracle's *findings*.

    Two regimes, matching how unstable code actually manifests:

    * **Control divergence** — the two traces depart (guard folding,
      null-check elision, short-circuit differences): the nearest
      finding within *window* lines of the divergence-site candidates
      names the category.
    * **Value divergence** — the traces are identical but the outputs
      differ (an uninitialized read, overflowed arithmetic, or
      address-dependent value flowed into the output): line distance to
      the final print statement is meaningless, so the label comes from
      the findings on the *executed path*, preferring specific
      categories, confirmed evidence, and the most recently executed
      suspicious instruction.
    """
    if localization.diverged and (
        localization.next_line_a is not None or localization.next_line_b is not None
    ):
        candidates = [
            line
            for line in (
                localization.next_line_a,
                localization.next_line_b,
                localization.last_common_line,
            )
            if line
        ]
        if candidates:
            label = _triage_control_divergence(findings, candidates, window)
            if label is not None and label.category != "Misc":
                return label
            if label is not None:
                # A Misc-category finding near the branch point (an address
                # cast, a pointer print) is weak evidence: it explains *a*
                # difference, not necessarily *this* one.  Prefer a specific
                # cause on the executed path when one exists.
                value = _triage_value_divergence(findings, localization)
                return value if value.category != "Misc" else label
    return _triage_value_divergence(findings, localization)


def _triage_control_divergence(
    findings: list[UBFinding], candidates: list[int], window: int
) -> TriageLabel | None:
    anchor = candidates[0]
    best: tuple | None = None
    for finding in findings:
        distance = min(abs(finding.line - line) for line in candidates)
        if distance > window:
            continue
        key = (
            distance,
            0 if finding.confidence == "confirmed" else 1,
            _CATEGORY_PRIORITY.get(finding.category, len(_CATEGORY_PRIORITY)),
            finding.line,
            finding.checker,
            finding.message,
        )
        if best is None or key < best[0]:
            best = (key, finding)
    if best is None:
        return None
    finding = best[1]
    return TriageLabel(
        category=finding.category,
        confidence=finding.confidence,
        line=anchor,
        finding=finding,
        rationale=(
            f"{finding.checker} at {finding.function}:{finding.line} "
            f"({finding.confidence}): {finding.message}"
        ),
    )


def _triage_value_divergence(
    findings: list[UBFinding], localization: Localization
) -> TriageLabel:
    anchor = localization.last_common_line
    last_pos: dict[int, int] = {}
    for trace in (localization.trace_a, localization.trace_b):
        for index, line in enumerate(trace):
            if index > last_pos.get(line, -1):
                last_pos[line] = index
    best: tuple | None = None
    for finding in findings:
        # Multi-line expressions can record the instruction one line off
        # from the traced statement line, so tolerate a ±1 mismatch.
        position, distance = None, 0
        for delta in (0, -1, 1):
            hit = last_pos.get(finding.line + delta)
            if hit is not None:
                position, distance = hit, abs(delta)
                break
        if position is None:
            continue  # never executed on this input: cannot be culpable
        key = (
            _CATEGORY_PRIORITY.get(finding.category, len(_CATEGORY_PRIORITY)),
            0 if finding.confidence == "confirmed" else 1,
            distance,
            -position,
            finding.line,
            finding.checker,
            finding.message,
        )
        if best is None or key < best[0]:
            best = (key, finding)
    if best is None:
        return TriageLabel(
            category="Misc",
            confidence="possible",
            line=anchor,
            finding=None,
            rationale=(
                "no static UB finding on the executed path (or within the "
                "divergence window) — unexplained divergences default to Misc"
            ),
        )
    finding = best[1]
    return TriageLabel(
        category=finding.category,
        confidence=finding.confidence,
        line=anchor,
        finding=finding,
        rationale=(
            f"executed-path match: {finding.checker} at "
            f"{finding.function}:{finding.line} ({finding.confidence}): "
            f"{finding.message}"
        ),
    )


def triage_diff(
    program: ast.Program | str,
    diff,
    findings: list[UBFinding],
    window: int = DEFAULT_WINDOW,
    fuel: int | None = None,
) -> TriageLabel:
    """Triage one :class:`~repro.core.compdiff.DiffResult`.

    Localizes between one representative of the majority observation
    group and one of the first minority group — the deterministic pair
    :meth:`DiffResult.groups` ordering provides.
    """
    groups = diff.groups()
    if len(groups) < 2:
        return TriageLabel(
            category="Misc",
            confidence="possible",
            line=0,
            finding=None,
            rationale="input did not diverge; nothing to triage",
        )
    kwargs = {} if fuel is None else {"fuel": fuel}
    localization = localize(program, diff.input, groups[0][0], groups[1][0], **kwargs)
    return triage_divergence(findings, localization, window=window)


def triage_program(
    program: ast.Program | str,
    input_bytes: bytes,
    impl_a: CompilerConfig | str = "gcc-O0",
    impl_b: CompilerConfig | str = "gcc-O2",
    findings: list[UBFinding] | None = None,
    window: int = DEFAULT_WINDOW,
) -> TriageLabel:
    """Localize the divergence between two implementations and triage it.

    Pass precomputed *findings* when triaging many inputs of one
    program; otherwise the UB oracle runs once per call.
    """
    if isinstance(program, str):
        program = load(program)
    if findings is None:
        findings = UBOracle().analyze(program)
    localization = localize(program, input_bytes, impl_a, impl_b)
    return triage_divergence(findings, localization, window=window)
