"""IR-level UB oracle: the repo's fourth static "tool".

Unlike the Coverity/Cppcheck/Infer analogs — AST checkers over a
syntactic trace — this tool lowers the program to :mod:`repro.ir` and
runs the :mod:`repro.ir.dataflow` analyses, emitting one
:class:`UBFinding` per suspicious instruction with a CONFIRMED or
POSSIBLE confidence and the Table 5 category the divergence-triage
layer needs (EvalOrder, UninitMem, IntError, MemError, PointerCmp,
LINE, Misc).

Two checkers are inherently *differential* and need a second lowering:

* ``line_macro`` compares the constant operands of matched call sites
  between a gcc-config and a clang-config O0 module — an
  implementation-defined ``__LINE__`` expansion shows up as the same
  call receiving different constants;
* ``eval_order`` is single-module but interprocedural: two calls on one
  source line whose callees write the same global (the Listing 3
  static-buffer pattern) are flagged as evaluation-order dependent.

Both O0 modules come from the same deterministic lowering, so call
sites align structurally; checkers only compare sites whose callee and
arity agree, which keeps argument-evaluation-order differences from
producing false ``line_macro`` reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.binary import compile_module
from repro.compiler.implementations import implementation
from repro.ir.cfg import block_order_rpo
from repro.ir.dataflow import (
    IntervalAnalysis,
    PointsTo,
    find_integer_ub,
    find_pointer_ub,
    find_uninit_uses,
    solve,
)
from repro.ir.dataflow.pointsto import WRITES_THROUGH_ARG0
from repro.ir.dataflow.reaching import UNINIT
from repro.ir.instructions import (
    FLOAT_BINOPS,
    BinOp,
    Call,
    CallBuiltin,
    Cast,
    Const,
    Load,
    Reg,
    Store,
)
from repro.ir.module import Function, Module
from repro.minic import ast
from repro.minic import load
from repro.ir.dataflow.pruning import prune_function
from repro.minic.types import FloatType, IntType
from repro.static_analysis.base import dedupe_findings
from repro.static_analysis.interproc import InterprocContext, summarize_module

#: Table 5 category per checker (LINE is the repo's extra seeded class).
CHECKER_CATEGORY = {
    "uninit_read": "UninitMem",
    "signed_overflow": "IntError",
    "shift_ub": "IntError",
    "div_zero": "IntError",
    "null_deref": "MemError",
    "oob_access": "MemError",
    "use_after_free": "MemError",
    "double_free": "MemError",
    "bad_free": "MemError",
    "eval_order": "EvalOrder",
    "line_macro": "LINE",
    "pointer_cmp": "PointerCmp",
    "pointer_print": "Misc",
    "address_cast": "Misc",
    "float_sensitivity": "Misc",
}

#: Builtins whose results are implementation/rounding sensitive.
_FLOAT_SENSITIVE_BUILTINS = frozenset({"pow", "exp2", "exp", "log"})

CONFIRMED = "confirmed"
POSSIBLE = "possible"


@dataclass(frozen=True)
class UBFinding:
    """One instruction-level UB observation with its Table 5 category."""

    tool: str
    checker: str
    category: str
    confidence: str  # "confirmed" | "possible"
    line: int
    function: str
    block: str
    message: str
    #: Interprocedural route ("func:line" frames, outermost call first)
    #: when the flagged behavior happens inside a summarized callee.
    trace: tuple[str, ...] = ()


@dataclass
class UBReport:
    """Oracle output: findings plus solver-convergence telemetry."""

    findings: list[UBFinding]
    #: (function, analysis-name) pairs whose solver hit the visit cap.
    nonconverged: list[tuple[str, str]]

    @property
    def converged(self) -> bool:
        return not self.nonconverged


def flagged_blocks(findings: list[UBFinding]) -> set[tuple[str, str]]:
    """(function, block-label) pairs touched by any finding — the set the
    directed-fuzzing energy boost intersects with seed coverage."""
    return {(f.function, f.block) for f in findings if f.block}


class UBOracle:
    """Static tool facade matching the analyzer-analog interface.

    ``mode`` selects the analysis depth: ``"intra"`` (the seed behavior,
    call boundaries are opaque) or ``"interproc"`` (bottom-up function
    summaries + top-down parameter environments + constant-branch edge
    pruning — see :mod:`repro.static_analysis.interproc`).  A
    :class:`~repro.static_analysis.summary_cache.SummaryCache` makes
    interprocedural re-analysis incremental across runs.
    """

    name = "ub-oracle"

    def __init__(self, mode: str = "intra", summary_cache=None) -> None:
        if mode not in ("intra", "interproc"):
            raise ValueError(f"unknown UBOracle mode: {mode!r}")
        self.mode = mode
        self.summary_cache = summary_cache

    def analyze(self, program: ast.Program) -> list[UBFinding]:
        return self.report(program).findings

    def analyze_source(self, source: str) -> list[UBFinding]:
        return self.analyze(load(source))

    def flags(self, program: ast.Program) -> bool:
        return bool(self.analyze(program))

    def report(self, program: ast.Program, name: str = "") -> UBReport:
        """Full oracle run: lower twice, run all checkers, dedupe."""
        gcc_module = compile_module(program, implementation("gcc-O0"), name=name)
        clang_module = compile_module(program, implementation("clang-O0"), name=name)
        interproc = None
        if self.mode == "interproc":
            interproc = summarize_module(gcc_module, cache=self.summary_cache)
        return analyze_modules(gcc_module, clang_module, interproc=interproc)


def analyze_modules(
    module: Module,
    other_module: Module | None = None,
    interproc: InterprocContext | None = None,
) -> UBReport:
    """Run every checker over *module* (plus the differential ``line_macro``
    checker when a second lowering is supplied).  An
    :class:`InterprocContext` upgrades the dataflow checkers from
    intraprocedural to context-insensitive interprocedural."""
    findings: list[UBFinding] = []
    nonconverged: list[tuple[str, str]] = []
    effects = _GlobalEffects(module)
    for func in module.functions.values():
        pt = PointsTo(func, module)
        _dataflow_findings(func, module, pt, findings, nonconverged, interproc)
        _eval_order_findings(func, effects, findings)
        _misc_findings(func, module, pt, findings)
    if other_module is not None:
        _line_macro_findings(module, other_module, findings)
    return UBReport(
        findings=_dedupe_sites(dedupe_findings(findings)), nonconverged=nonconverged
    )


def _dedupe_sites(findings: list[UBFinding]) -> list[UBFinding]:
    """Collapse findings sharing (checker, function, line) to one report.

    The dataflow scans visit every block's in-state, so one faulty
    source expression can be flagged from several blocks (loop bodies,
    join points) with near-identical messages.  Keep the strongest:
    confirmed over possible, then the lexicographically smallest
    message so the survivor is deterministic.
    """
    best: dict[tuple[str, str, int], UBFinding] = {}
    for finding in findings:
        key = (finding.checker, finding.function, finding.line)
        rank = (0 if finding.confidence == CONFIRMED else 1, finding.message)
        old = best.get(key)
        if old is None or rank < (
            0 if old.confidence == CONFIRMED else 1,
            old.message,
        ):
            best[key] = finding
    return dedupe_findings(list(best.values()))


# ------------------------------------------------------------------ dataflow


def _dataflow_findings(
    func: Function,
    module: Module,
    pt: PointsTo,
    findings: list[UBFinding],
    nonconverged: list[tuple[str, str]],
    interproc: InterprocContext | None = None,
) -> None:
    if interproc is not None:
        # Interprocedural mode prunes statically-dead branch edges first;
        # the pruned interval solve is shared by every scan below.
        dead, interval_analysis, interval_result = prune_function(
            func, module, points_to=pt, interproc=interproc
        )
        dead_edges = dead or None
    else:
        dead_edges = None
        interval_analysis = IntervalAnalysis(func, module, points_to=pt)
        interval_result = solve(func, interval_analysis)
    uses, r_init = find_uninit_uses(
        func, module, points_to=pt, interproc=interproc, dead_edges=dead_edges
    )
    int_findings: list = []
    for label in interval_result.block_in:
        state = dict(interval_result.block_in[label])
        for idx, instr in enumerate(func.blocks[label].instrs):
            interval_analysis.transfer_instr(
                instr, state, findings=int_findings, where=(label, idx)
            )
    ptr_findings, r_ptr = find_pointer_ub(
        func,
        module,
        points_to=pt,
        interval_analysis=interval_analysis,
        interval_result=interval_result,
        interproc=interproc,
        dead_edges=dead_edges,
    )
    for result, which in ((r_init, "init"), (interval_result, "intervals"), (r_ptr, "provenance")):
        if not result.converged:
            nonconverged.append((func.name, which))
    for use in uses:
        confirmed = use.state == UNINIT
        if use.via:
            message = (
                f"{use.obj.describe()} passed uninitialized to a callee "
                f"that reads it (via {' -> '.join(use.via)})"
            )
        else:
            message = (
                f"read of {use.obj.describe()} before initialization on "
                f"{'every' if confirmed else 'some'} path"
            )
        findings.append(
            _finding(
                "uninit_read",
                CONFIRMED if confirmed else POSSIBLE,
                use.line,
                func.name,
                use.block,
                message,
                trace=use.via,
            )
        )
    for f in int_findings:
        findings.append(
            _finding(f.checker, f.confidence, f.line, func.name, f.block, f.message)
        )
    for f in ptr_findings:
        findings.append(
            _finding(
                f.checker,
                f.confidence,
                f.line,
                func.name,
                f.block,
                f.message,
                trace=f.via,
            )
        )


def _finding(
    checker: str,
    confidence: str,
    line: int,
    function: str,
    block: str,
    message: str,
    trace: tuple[str, ...] = (),
) -> UBFinding:
    return UBFinding(
        tool=UBOracle.name,
        checker=checker,
        category=CHECKER_CATEGORY[checker],
        confidence=confidence,
        line=line,
        function=function,
        block=block,
        message=message,
        trace=tuple(trace),
    )


# ---------------------------------------------------------------- eval order


class _GlobalEffects:
    """Transitive per-function global read/write summaries."""

    def __init__(self, module: Module) -> None:
        self.writes: dict[str, set[str]] = {}
        self.reads: dict[str, set[str]] = {}
        callees: dict[str, set[str]] = {}
        for func in module.functions.values():
            pt = PointsTo(func, module)
            writes: set[str] = set()
            reads: set[str] = set()
            called: set[str] = set()
            for block in func.blocks.values():
                for instr in block.instrs:
                    if isinstance(instr, Store):
                        ptr = pt.pointer(instr.addr)
                        if ptr is not None and ptr.obj.kind == "global":
                            writes.add(ptr.obj.key)
                    elif isinstance(instr, Load):
                        ptr = pt.pointer(instr.addr)
                        if ptr is not None and ptr.obj.kind == "global":
                            reads.add(ptr.obj.key)
                    elif isinstance(instr, CallBuiltin):
                        if instr.name in WRITES_THROUGH_ARG0 and instr.args:
                            ptr = pt.pointer(instr.args[0])
                            if ptr is not None and ptr.obj.kind == "global":
                                writes.add(ptr.obj.key)
                    elif isinstance(instr, Call):
                        called.add(instr.callee)
            self.writes[func.name] = writes
            self.reads[func.name] = reads
            callees[func.name] = called
        changed = True
        while changed:
            changed = False
            for name, called in callees.items():
                for callee in called:
                    for table in (self.writes, self.reads):
                        extra = table.get(callee, set()) - table[name]
                        if extra:
                            table[name] |= extra
                            changed = True


def _eval_order_findings(
    func: Function, effects: _GlobalEffects, findings: list[UBFinding]
) -> None:
    by_line: dict[int, list[tuple[str, str]]] = {}
    for label in block_order_rpo(func):
        for instr in func.blocks[label].instrs:
            if isinstance(instr, Call):
                by_line.setdefault(instr.line, []).append((instr.callee, label))
    for line, calls in sorted(by_line.items()):
        if len(calls) < 2:
            continue
        for i, (callee_a, label_a) in enumerate(calls):
            for callee_b, _ in calls[i + 1 :]:
                wa = effects.writes.get(callee_a, set())
                wb = effects.writes.get(callee_b, set())
                ra = effects.reads.get(callee_a, set())
                rb = effects.reads.get(callee_b, set())
                if wa & wb:
                    shared = sorted(wa & wb)[0]
                    confidence, what = CONFIRMED, f"both write global '{shared}'"
                elif (wa & rb) or (wb & ra):
                    shared = sorted((wa & rb) | (wb & ra))[0]
                    confidence, what = POSSIBLE, f"one writes global '{shared}' the other reads"
                else:
                    continue
                findings.append(
                    _finding(
                        "eval_order",
                        confidence,
                        line,
                        func.name,
                        label_a,
                        f"calls to {callee_a}() and {callee_b}() in one full "
                        f"expression {what}; argument evaluation order is "
                        "unspecified",
                    )
                )
                break
            else:
                continue
            break


# --------------------------------------------------------------------- misc


def _misc_findings(
    func: Function, module: Module, pt: PointsTo, findings: list[UBFinding]
) -> None:
    for label, block in func.blocks.items():
        for instr in block.instrs:
            if isinstance(instr, Cast):
                # Address-of casts are typed as integer conversions by the
                # lowering, so the pointer provenance of the *source
                # register* is the reliable signal, not ``from_type``.
                if (
                    isinstance(instr.to_type, IntType)
                    and isinstance(instr.src, Reg)
                    and pt.pointer(instr.src) is not None
                ):
                    obj = pt.pointer(instr.src).obj
                    findings.append(
                        _finding(
                            "address_cast",
                            CONFIRMED,
                            instr.line,
                            func.name,
                            label,
                            f"cast of the address of {obj.describe()} to an "
                            "integer — the value depends on each "
                            "implementation's object layout",
                        )
                    )
            elif isinstance(instr, CallBuiltin):
                if instr.name in ("printf", "eprintf") and instr.args:
                    fmt = _format_string(instr.args[0], pt, module)
                    if fmt is not None and b"%p" in fmt:
                        findings.append(
                            _finding(
                                "pointer_print",
                                CONFIRMED,
                                instr.line,
                                func.name,
                                label,
                                "printing a pointer value (%p) — addresses "
                                "differ across implementations",
                            )
                        )
                elif instr.name in _FLOAT_SENSITIVE_BUILTINS:
                    findings.append(
                        _finding(
                            "float_sensitivity",
                            POSSIBLE,
                            instr.line,
                            func.name,
                            label,
                            f"{instr.name}() result may differ in the last "
                            "bit across math-library implementations",
                        )
                    )
            elif isinstance(instr, BinOp):
                # Single-precision accumulation is sensitive to whether an
                # implementation keeps extended-precision intermediates.
                if instr.op in FLOAT_BINOPS and isinstance(instr.type, FloatType) and instr.type.bits == 32:
                    findings.append(
                        _finding(
                            "float_sensitivity",
                            POSSIBLE,
                            instr.line,
                            func.name,
                            label,
                            "single-precision float arithmetic may round "
                            "differently across implementations",
                        )
                    )


def _format_string(arg, pt: PointsTo, module: Module) -> bytes | None:
    ptr = pt.pointer(arg)
    if ptr is None or ptr.obj.kind != "global":
        return None
    data = module.globals.get(ptr.obj.key)
    return data.init if data is not None else None


# --------------------------------------------------------------- line macro


def _line_macro_findings(
    module: Module, other: Module, findings: list[UBFinding]
) -> None:
    for name, func in module.functions.items():
        twin = other.functions.get(name)
        if twin is None:
            continue
        calls_a = _call_constants(func)
        calls_b = _call_constants(twin)
        for (callee_a, args_a, line, label), (callee_b, args_b, _, _) in zip(
            calls_a, calls_b
        ):
            if callee_a != callee_b or len(args_a) != len(args_b):
                continue
            for value_a, value_b in zip(args_a, args_b):
                if value_a is not None and value_b is not None and value_a != value_b:
                    findings.append(
                        _finding(
                            "line_macro",
                            CONFIRMED,
                            line,
                            name,
                            label,
                            f"call to {callee_a}() receives constant {value_a} "
                            f"under one implementation but {value_b} under "
                            "another (__LINE__-style implementation-defined "
                            "expansion)",
                        )
                    )
                    break


def _call_constants(func: Function):
    """Calls in deterministic order with int-constant args resolved."""
    consts: dict[int, int] = {}
    counts: dict[int, int] = {}
    for block in func.blocks.values():
        for instr in block.instrs:
            dst = instr.defines()
            if dst is not None:
                counts[dst.id] = counts.get(dst.id, 0) + 1
            if isinstance(instr, Const) and isinstance(instr.value, int):
                consts[instr.dst.id] = instr.value
    out = []
    for label in block_order_rpo(func):
        for instr in func.blocks[label].instrs:
            if not isinstance(instr, Call):
                continue
            args = []
            for arg in instr.args:
                if isinstance(arg, bool):
                    args.append(int(arg))
                elif isinstance(arg, int):
                    args.append(arg)
                elif isinstance(arg, Reg) and counts.get(arg.id) == 1:
                    args.append(consts.get(arg.id))
                else:
                    args.append(None)
            out.append((instr.callee, tuple(args), instr.line, label))
    return out
