"""Simulated real-world targets (the 23 projects of Table 4).

Each target is a generated MiniC input-parsing program named after one of
the paper's fuzzing targets, seeded with the root-cause mix of Table 5:
78 bugs total across EvalOrder, UninitMem, IntError, MemError, PointerCmp,
LINE, and Misc (3 compiler miscompilations, 4 float-imprecision cases,
pointer printing, address-derived "randomness").

Every seeded bug carries a ``__bugsite`` marker so evaluation can
attribute a fuzzer-found discrepancy to a specific bug — the automated
stand-in for the paper's manual triage with developer feedback.
"""

from repro.targets.bugs import BugSnippet, CATEGORY_SANITIZER
from repro.targets.registry import (
    SeededBug,
    Target,
    build_all_targets,
    build_target,
    target_names,
    TARGET_TABLE,
)

__all__ = [
    "BugSnippet",
    "CATEGORY_SANITIZER",
    "SeededBug",
    "TARGET_TABLE",
    "Target",
    "build_all_targets",
    "build_target",
    "target_names",
]
