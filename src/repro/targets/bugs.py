"""Seeded-bug snippet library for the simulated targets.

Each factory returns a :class:`BugSnippet`: a handler function
``h<site>(char *p, long n)`` containing one bug of the given root cause
(Table 5's categories), plus any globals/helpers it needs.  The handler
begins with ``__bugsite(<site>)`` so evaluation can attribute findings.

Bugs are written to be *reachable but input-dependent*: the dispatcher
already routes a type byte to the handler, and most snippets add at most
one byte-level condition, which a coverage-guided fuzzer with the
auto-dictionary discovers quickly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Which sanitizer class can in principle catch each category (RQ3):
#: MemError -> ASan, IntError -> UBSan, UninitMem -> MSan (branch uses
#: only); the rest have no sanitizer (None).
CATEGORY_SANITIZER: dict[str, str | None] = {
    "EvalOrder": None,
    "UninitMem": "msan",
    "IntError": "ubsan",
    "MemError": "asan",
    "PointerCmp": None,
    "LINE": None,
    "Misc": None,
}


@dataclass(frozen=True)
class BugSnippet:
    site: int
    category: str
    subcategory: str
    globals: str
    helpers: str
    handler: str  # full definition of h<site>


def _handler(site: int, body: str) -> str:
    return (
        f"static int h{site}(char *p, long n) {{\n"
        f"    __bugsite({site});\n"
        f"{body}\n"
        f"    return 0;\n"
        f"}}"
    )


# --------------------------------------------------------------- EvalOrder


def evalorder_bug(site: int, rng: random.Random) -> BugSnippet:
    """Listing 3: two calls sharing a static buffer as printf arguments."""
    helpers = f"""static char *fmt{site}(int v) {{
    static char buffer[24];
    buffer[0] = 'A' + (v & 63) % 26;
    buffer[1] = 'a' + (v & 63) % 13;
    buffer[2] = 0;
    return buffer;
}}"""
    body = f"""    if (n < 2) {{ return 1; }}
    printf("who-is %s tell %s\\n", fmt{site}(p[0]), fmt{site}(p[1]));"""
    return BugSnippet(site, "EvalOrder", "static_buffer_args", "", helpers, _handler(site, body))


# --------------------------------------------------------------- UninitMem


def uninit_bug(site: int, rng: random.Random) -> BugSnippet:
    """Listing 4: a local stays uninitialized on an input-dependent path."""
    kind = rng.choice(("scalar", "heap", "branch"))
    if kind == "scalar":
        body = """    int value;
    if (n > 2 && p[0] == 'V') { value = p[1]; }
    printf("field=%d\\n", value);"""
    elif kind == "heap":
        body = """    int *box = (int*)malloc(16);
    if (n > 2 && p[0] != 0) { box[2] = p[1]; }
    printf("field=%d\\n", box[2]);
    free((char*)box);"""
    else:  # branch: also MSan-visible
        body = """    int level;
    if (n > 2 && p[0] == 'L') { level = p[1]; }
    if (level > 40) { printf("verbose\\n"); }
    else { printf("quiet\\n"); }"""
    return BugSnippet(site, "UninitMem", kind, "", "", _handler(site, body))


# ---------------------------------------------------------------- IntError


def interror_bug(site: int, rng: random.Random) -> BugSnippet:
    kind = rng.choice(("widen_mul", "guard_fold"))
    if kind == "widen_mul":
        # int*int feeding a long: clang-O1+ computes in 64 bits (§4.3).
        body = """    if (n < 3) { return 1; }
    int width = (p[0] & 127) * 66000;
    int height = (p[1] & 127) * 700;
    long pixels = width * height;
    printf("pixels=%ld\\n", pixels);"""
    else:
        # Listing 1: the wraparound guard folds away at -O1+.
        body = """    if (n < 3) { return 1; }
    int offset = 2147483647 - (p[0] & 127);
    int len = (p[1] & 127) + 1;
    if (offset + len < offset) {
        printf("rejected\\n");
        return -1;
    }
    printf("dump at %d len %d\\n", offset, len);"""
    return BugSnippet(site, "IntError", kind, "", "", _handler(site, body))


# ---------------------------------------------------------------- MemError


def memerror_bug(site: int, rng: random.Random) -> BugSnippet:
    kind = rng.choice(("stack_overflow", "heap_overflow", "uaf", "double_free"))
    if kind == "stack_overflow":
        body = """    char record[24];
    char label[8] = "intact";
    int len = p[0] & 63;
    int i;
    if (n < 2) { return 1; }
    for (i = 0; i < len; i++) { record[i] = p[1]; }
    printf("label=%s first=%c\\n", label, record[0]);"""
    elif kind == "heap_overflow":
        body = """    char *field = malloc(16);
    char *next = malloc(8);
    int len = p[0] & 31;
    int i;
    if (n < 2) { return 1; }
    strcpy(next, "NEXT");
    for (i = 0; i < len; i++) { field[i] = 'D'; }
    printf("next=%s\\n", next);
    free(field);
    free(next);"""
    elif kind == "uaf":
        body = """    char *obj = malloc(16);
    if (n < 2) { return 1; }
    strcpy(obj, "LIVE");
    if (p[0] & 1) { free(obj); }
    char *fresh = malloc(16);
    strcpy(fresh, "FRSH");
    printf("obj=%c%c\\n", obj[0], obj[1]);
    free(fresh);"""
    else:  # double_free
        body = """    char *obj = malloc(16);
    obj[0] = 'x';
    free(obj);
    if (n > 1 && p[0] == 'F') {
        free(obj);
        char *a = malloc(16);
        char *b = malloc(16);
        a[0] = 'A';
        b[0] = 'B';
        printf("a=%c\\n", a[0]);
    }
    printf("done\\n");"""
    return BugSnippet(site, "MemError", kind, "", "", _handler(site, body))


# --------------------------------------------------------------- PointerCmp


def ptrcmp_bug(site: int, rng: random.Random) -> BugSnippet:
    """Listing 2: relational comparison of pointers into distinct objects."""
    globals_src = f"""char section_small{site}[8];
char section_big{site}[64];"""
    body = f"""    char *saved_start = section_small{site};
    char *look_for = section_big{site};
    if (look_for <= saved_start) {{
        printf("look-before-start\\n");
    }} else {{
        printf("look-after-start\\n");
    }}"""
    return BugSnippet(site, "PointerCmp", "cross_object", globals_src, "", _handler(site, body))


# -------------------------------------------------------------------- LINE


def line_bug(site: int, rng: random.Random) -> BugSnippet:
    """__LINE__ inside a continued expression is implementation-defined."""
    helpers = f"""static int report{site}(int line, int code) {{
    printf("warning at line %d code %d\\n", line, code);
    return line;
}}"""
    # The statement starts one line before the __LINE__ token.
    body = f"""    int rc =
        report{site}(__LINE__,
                     p[0] & 15);
    if (rc < 0) {{ return rc; }}"""
    return BugSnippet(site, "LINE", "continued_expr", "", helpers, _handler(site, body))


# -------------------------------------------------------------------- Misc


def misc_float_bug(site: int, rng: random.Random) -> BugSnippet:
    kind = rng.choice(("pow_exp2", "f32_chain"))
    if kind == "pow_exp2":
        # clang-O3 substitutes exp2; last-bit disagreement (RQ2).
        body = """    double e = (p[0] & 15) + 0.5;
    double r = pow(2.0, e);
    printf("ratio=%.17g\\n", r);"""
    else:
        # Single-precision accumulation: x87-style extended intermediates
        # (gcc-O3) versus per-op SSE rounding.
        body = """    float acc = 1.5f;
    int i;
    int steps = (p[0] & 15) + 3;
    for (i = 0; i < steps; i++) {
        acc = acc * 1.1f + 0.3f;
    }
    printf("acc=%.9g\\n", acc);"""
    return BugSnippet(site, "Misc", f"float_{kind}", "", "", _handler(site, body))


def misc_miscompile_bug(site: int, rng: random.Random, pattern: str) -> BugSnippet:
    """RQ2's compiler bugs: patterns miscompiled by specific configs."""
    if pattern == "ushl_ushr_elide":
        body = """    unsigned int x = (unsigned int)(p[0] & 255) << 25;
    unsigned int y = (x << 1) >> 1;
    printf("norm=%u\\n", y);"""
    elif pattern == "sext_shift_pair":
        body = """    int x = p[0] & 255;
    int y = (x << 24) >> 24;
    printf("sext=%d\\n", y);"""
    else:  # srem_to_mask
        body = """    int x = p[0];
    int y = x % 8;
    printf("mod=%d\\n", y);"""
    return BugSnippet(site, "Misc", f"miscompile_{pattern}", "", "", _handler(site, body))


def misc_ptrprint_bug(site: int, rng: random.Random) -> BugSnippet:
    """Prints a pointer value instead of the pointed-to data (objdump)."""
    globals_src = f"char symtab{site}[32];"
    body = f"""    symtab{site}[0] = p[0];
    printf("symbol at %p\\n", symtab{site});"""
    return BugSnippet(site, "Misc", "pointer_print", globals_src, "", _handler(site, body))


def misc_random_bug(site: int, rng: random.Random) -> BugSnippet:
    """'Bad random value' (libtiff): entropy derived from an address."""
    body = """    char probe[16];
    probe[0] = p[0];
    long seed = (long)probe;
    printf("tag=%d\\n", (int)(seed % 9973));"""
    return BugSnippet(site, "Misc", "address_random", "", "", _handler(site, body))


# ------------------------------------------------------------ benign filler


def benign_handler(site: int, rng: random.Random) -> str:
    """A correct handler: provides coverage structure, never diverges."""
    kind = rng.choice(("checksum", "count", "echo", "minmax"))
    if kind == "checksum":
        body = """    long i;
    unsigned int sum = 0;
    for (i = 0; i < n; i++) { sum = sum * 31u + (unsigned int)(p[i] & 255); }
    printf("sum=%u\\n", sum);"""
    elif kind == "count":
        body = """    long i;
    int zeros = 0;
    for (i = 0; i < n; i++) { if (p[i] == 0) { zeros++; } }
    printf("zeros=%d of %ld\\n", zeros, n);"""
    elif kind == "echo":
        body = """    long i;
    for (i = 0; i < n && i < 8; i++) { printf("%02x", p[i] & 255); }
    printf("\\n");"""
    else:
        body = """    long i;
    int lo = 255;
    int hi = 0;
    for (i = 0; i < n; i++) {
        int v = p[i] & 255;
        if (v < lo) { lo = v; }
        if (v > hi) { hi = v; }
    }
    printf("range=%d..%d\\n", lo, hi);"""
    return (
        f"static int h{site}(char *p, long n) {{\n{body}\n    return 0;\n}}"
    )
