"""The 23 simulated targets: Table 4 metadata plus seeded-bug assembly.

The per-target bug assignment reproduces Table 5's totals exactly —
EvalOrder 2, UninitMem 27, IntError 8, MemError 13, PointerCmp 1, LINE 6,
Misc 21 (of which 3 compiler miscompilations, 4 float imprecision) — and
places signature bugs where the paper found them: both EvalOrder bugs in
tcpdump, the PointerCmp bug in readelf, the miscompilations in MuJS,
LINE inconsistencies in readelf/ImageMagick/wireshark/libtiff/php, the
float-imprecision fix in brotli, pointer printing in objdump, the bad
random value in libtiff.

"Confirmed" and "Fixed" are developer responses the paper measured by
reporting bugs upstream; they cannot be re-measured against a simulator,
so they are carried as recorded metadata with Table 5's per-category
counts assigned deterministically to the seeded bugs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.targets import bugs as bug_lib

#: Table 4 verbatim: name, input type, version, size.
TARGET_TABLE: list[tuple[str, str, str, str]] = [
    ("tcpdump", "Network packet", "4.99.1", "99K"),
    ("wireshark", "Network packet", "3.4.5", "4.6M"),
    ("objdump", "Binary file", "2.36.1", "74K"),
    ("readelf", "Binary file", "2.36.1", "72K"),
    ("nm-new", "Binary file", "2.36.1", "55K"),
    ("sysdump", "Binary file", "2.36.1", "10K"),
    ("openssl", "Binary file", "3.0.0", "702K"),
    ("ClamAV", "Binary file", "0.103.3", "239K"),
    ("libsndfile", "Audio", "1.0.31", "66K"),
    ("libzip", "Compress tool", "v1.8.0", "29K"),
    ("brotli", "Compress tool", "v1.0.9", "55K"),
    ("php", "PHP", "7.4.26", "1.4M"),
    ("MuJS", "JavaScript", "1.1.3", "18K"),
    ("pdftotext", "PDF", "4.03", "130K"),
    ("pdftoppm", "PDF", "21.11.0", "203K"),
    ("jq", "json", "1.6", "46K"),
    ("exiv2", "Exiv2 image", "0.27.5", "384K"),
    ("libtiff", "Tiff image", "4.3.0", "37K"),
    ("ImageMagick", "Image", "7.1.0-23", "655K"),
    ("grok", "JPEG 2000", "9.7.0", "127K"),
    ("libxml2", "XML", "2.9.12", "458K"),
    ("curl", "URL", "7.80.0", "13K"),
    ("gpac", "Video", "2.0.0", "597K"),
]

#: Per-target bug plan: list of (category, subkind-or-None).
_BUG_PLAN: dict[str, list[tuple[str, str | None]]] = {
    "tcpdump": [("EvalOrder", None), ("EvalOrder", None), ("UninitMem", None), ("MemError", None)],
    "wireshark": [("LINE", None), ("UninitMem", None), ("UninitMem", None), ("Misc", "random")],
    "objdump": [("Misc", "ptrprint"), ("Misc", "ptrprint"), ("UninitMem", None)],
    "readelf": [("PointerCmp", None), ("LINE", None), ("UninitMem", None)],
    "nm-new": [("UninitMem", None), ("UninitMem", None), ("MemError", None)],
    "sysdump": [("UninitMem", None), ("Misc", "ptrprint")],
    "openssl": [("MemError", None), ("MemError", None), ("UninitMem", None), ("IntError", None), ("Misc", "random")],
    "ClamAV": [("MemError", None), ("UninitMem", None), ("IntError", None), ("Misc", "random")],
    "libsndfile": [("IntError", None), ("UninitMem", None), ("Misc", "float")],
    "libzip": [("MemError", None), ("UninitMem", None), ("Misc", "ptrprint")],
    "brotli": [("Misc", "float"), ("IntError", None)],
    "php": [("LINE", None), ("LINE", None), ("UninitMem", None), ("UninitMem", None)],
    "MuJS": [
        ("Misc", "miscompile:ushl_ushr_elide"),
        ("Misc", "miscompile:sext_shift_pair"),
        ("Misc", "miscompile:srem_to_mask"),
    ],
    "pdftotext": [("UninitMem", None), ("MemError", None), ("Misc", "random")],
    "pdftoppm": [("UninitMem", None), ("MemError", None), ("Misc", "random")],
    "jq": [("UninitMem", None), ("IntError", None), ("Misc", "ptrprint")],
    "exiv2": [("UninitMem", None), ("UninitMem", None), ("Misc", "random")],
    "libtiff": [("LINE", None), ("Misc", "random"), ("UninitMem", None)],
    "ImageMagick": [("LINE", None), ("MemError", None), ("MemError", None), ("UninitMem", None)],
    "grok": [("Misc", "float"), ("IntError", None), ("UninitMem", None)],
    "libxml2": [("MemError", None), ("MemError", None), ("UninitMem", None), ("UninitMem", None)],
    "curl": [("IntError", None), ("UninitMem", None), ("Misc", "ptrprint")],
    "gpac": [
        ("Misc", "float"),
        ("MemError", None),
        ("IntError", None),
        ("UninitMem", None),
        ("UninitMem", None),
        ("Misc", "ptrprint"),
    ],
}

#: Table 5's Confirmed/Fixed per category (carried as metadata).  The
#: printed Misc "fixed" cell reads 9, but the table total and the paper's
#: text say 52 fixed overall; the two missing fixes are allocated to Misc
#: so the total matches the prose.
_CONFIRMED_FIXED = {
    "EvalOrder": (2, 2),
    "UninitMem": (19, 15),
    "IntError": (8, 6),
    "MemError": (13, 12),
    "PointerCmp": (1, 1),
    "LINE": (5, 5),
    "Misc": (17, 11),
}

#: Targets the paper calls non-deterministic/multi-threaded (RQ5).
NONDETERMINISTIC_TARGETS = {"tcpdump", "wireshark", "MuJS", "ImageMagick", "grok", "gpac"}


@dataclass(frozen=True)
class SeededBug:
    site: int
    target: str
    category: str
    subcategory: str
    #: Sanitizer class able to catch this category in principle (RQ3).
    sanitizer_class: str | None
    confirmed: bool
    fixed: bool


@dataclass
class Target:
    name: str
    input_type: str
    version: str
    paper_size: str
    source: str
    seeds: list[bytes]
    bugs: list[SeededBug]
    magic: bytes
    #: True when output needs timestamp scrubbing (RQ5).
    needs_normalizer: bool = False
    generated_loc: int = 0


def target_names() -> list[str]:
    return [row[0] for row in TARGET_TABLE]


def _make_snippet(
    category: str, subkind: str | None, site: int, rng: random.Random
) -> bug_lib.BugSnippet:
    if category == "EvalOrder":
        return bug_lib.evalorder_bug(site, rng)
    if category == "UninitMem":
        return bug_lib.uninit_bug(site, rng)
    if category == "IntError":
        return bug_lib.interror_bug(site, rng)
    if category == "MemError":
        return bug_lib.memerror_bug(site, rng)
    if category == "PointerCmp":
        return bug_lib.ptrcmp_bug(site, rng)
    if category == "LINE":
        return bug_lib.line_bug(site, rng)
    assert category == "Misc"
    if subkind and subkind.startswith("miscompile:"):
        return bug_lib.misc_miscompile_bug(site, rng, subkind.split(":", 1)[1])
    if subkind == "float":
        return bug_lib.misc_float_bug(site, rng)
    if subkind == "ptrprint":
        return bug_lib.misc_ptrprint_bug(site, rng)
    return bug_lib.misc_random_bug(site, rng)


def build_target(name: str, seed: int = 20230325) -> Target:
    """Generate one target program with its seeded bugs and seeds."""
    rows = {row[0]: row for row in TARGET_TABLE}
    if name not in rows:
        raise KeyError(f"unknown target {name!r}; have {target_names()}")
    _, input_type, version, size = rows[name]
    target_index = target_names().index(name)
    rng = random.Random(seed * 1021 + target_index)
    plan = _BUG_PLAN[name]
    magic = bytes([0x40 + target_index, 0xA7 ^ target_index])
    snippets: list[bug_lib.BugSnippet] = []
    for k, (category, subkind) in enumerate(plan):
        site = target_index * 100 + k + 1
        snippets.append(_make_snippet(category, subkind, site, rng))
    benign_count = rng.randint(2, 4)
    benign_sites = [target_index * 100 + 90 + j for j in range(benign_count)]
    benign = [bug_lib.benign_handler(site, rng) for site in benign_sites]
    source = _assemble_target(
        name, magic, snippets, benign, benign_sites, noisy=(name == "wireshark")
    )
    seeds = _make_seeds(magic, len(snippets) + benign_count, rng)
    counters = _confirmed_fixed_counters()
    bug_records = []
    for snippet in snippets:
        confirmed, fixed = counters[snippet.category].take()
        bug_records.append(
            SeededBug(
                site=snippet.site,
                target=name,
                category=snippet.category,
                subcategory=snippet.subcategory,
                sanitizer_class=bug_lib.CATEGORY_SANITIZER[snippet.category],
                confirmed=confirmed,
                fixed=fixed,
            )
        )
    target = Target(
        name=name,
        input_type=input_type,
        version=version,
        paper_size=size,
        source=source,
        seeds=seeds,
        bugs=bug_records,
        magic=magic,
        needs_normalizer=(name == "wireshark"),
        generated_loc=source.count("\n"),
    )
    return target


class _TakeCounter:
    """Deterministic assignment of confirmed/fixed metadata per category."""

    _positions: dict[str, int] = {}

    def __init__(self, category: str, confirmed: int, fixed: int, total: int) -> None:
        self.category = category
        self.confirmed = confirmed
        self.fixed = fixed
        self.total = total

    def take(self) -> tuple[bool, bool]:
        position = _TakeCounter._positions.get(self.category, 0)
        _TakeCounter._positions[self.category] = position + 1
        return position < self.confirmed, position < self.fixed


def _confirmed_fixed_counters() -> dict[str, _TakeCounter]:
    totals: dict[str, int] = {}
    for plan in _BUG_PLAN.values():
        for category, _ in plan:
            totals[category] = totals.get(category, 0) + 1
    return {
        category: _TakeCounter(category, confirmed, fixed, totals[category])
        for category, (confirmed, fixed) in _CONFIRMED_FIXED.items()
    }


def _assemble_target(
    name: str,
    magic: bytes,
    snippets: list[bug_lib.BugSnippet],
    benign: list[str],
    benign_sites: list[int],
    noisy: bool = False,
) -> str:
    sections: list[str] = [f"/* simulated target: {name} */"]
    for snippet in snippets:
        if snippet.globals:
            sections.append(snippet.globals)
    for snippet in snippets:
        if snippet.helpers:
            sections.append(snippet.helpers)
    for snippet in snippets:
        sections.append(snippet.handler)
    sections.extend(benign)
    dispatch_lines = []
    for i, snippet in enumerate(snippets):
        handler = f"h{snippet.site}"
        dispatch_lines.append(
            f"    {'if' if not dispatch_lines else 'else if'} (t == {i}) "
            f"{{ rc = {handler}(buf + 3, len - 3); }}"
        )
    for j, site in enumerate(benign_sites):
        dispatch_lines.append(
            f"    else if (t == {len(snippets) + j}) {{ rc = h{site}(buf + 3, len - 3); }}"
        )
    total = len(snippets) + len(benign_sites)
    # RQ5: the wireshark simulation embeds a volatile timestamp-looking
    # value in its output (layout-derived, so it differs per binary).  It
    # is noise, not a bug: campaigns on this target must scrub it with
    # OutputNormalizer.standard(), like the paper's regex post-processing.
    noise = ""
    if noisy:
        noise = (
            '    long t0 = (long)buf;\n'
            '    printf("%02d:%02d:%02d.%06d [Epan WARNING] capture started\\n",\n'
            "           (int)(t0 % 24), (int)(t0 % 60),\n"
            "           (int)((t0 / 7) % 60), (int)(t0 % 1000000));\n"
        )
    main = f"""int main(void) {{
    char buf[256];
    long len = read_input(buf, 256);
{noise}    if (len < 4) {{
        printf("{name}: input too short\\n");
        return 1;
    }}
    if ((buf[0] & 255) != {magic[0]} || (buf[1] & 255) != {magic[1]}) {{
        printf("{name}: bad magic\\n");
        return 1;
    }}
    int t = (buf[2] & 255) % {total};
    int rc = 0;
{chr(10).join(dispatch_lines)}
    else {{ printf("{name}: no handler\\n"); }}
    printf("{name}: rc=%d\\n", rc);
    return rc;
}}"""
    sections.append(main)
    return "\n\n".join(sections) + "\n"


def _make_seeds(magic: bytes, handlers: int, rng: random.Random) -> list[bytes]:
    """Seeds from the 'official test suite': valid headers, varied types."""
    seeds = []
    for t in range(min(handlers, 6)):
        payload = bytes(rng.randrange(256) for _ in range(8))
        seeds.append(magic + bytes([t]) + payload)
    return seeds


def build_all_targets(seed: int = 20230325) -> list[Target]:
    _TakeCounter._positions = {}
    return [build_target(name, seed=seed) for name in target_names()]
