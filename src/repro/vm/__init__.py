"""Bytecode virtual machine: the execution substrate.

Runs :class:`~repro.compiler.binary.CompiledBinary` artifacts with a
byte-addressable, segmented memory whose layout is dictated by the binary's
compiler configuration.  The VM itself is deterministic and identical for
all implementations — every cross-implementation divergence originates in
the compiled IR or the configured layout, exactly as on real hardware.
"""

from repro.vm.execution import ExecutionResult, Status, run_binary
from repro.vm.forkserver import ForkServer
from repro.vm.lockstep import (
    DecodedProgram,
    LockstepExecutor,
    LockstepMachine,
    run_lockstep,
)
from repro.vm.machine import Machine
from repro.vm.memory import ImageLayout, Memory, MemTrap

__all__ = [
    "DecodedProgram",
    "ExecutionResult",
    "ForkServer",
    "ImageLayout",
    "LockstepExecutor",
    "LockstepMachine",
    "Machine",
    "Memory",
    "MemTrap",
    "Status",
    "run_binary",
    "run_lockstep",
]
