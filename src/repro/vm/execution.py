"""Execution results and the one-shot run entry point."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.compiler.binary import CompiledBinary
from repro.vm.machine import DEFAULT_FUEL, Machine
from repro.vm.memory import ImageLayout


class Status(enum.Enum):
    """Terminal state of one execution."""

    OK = "ok"
    CRASH = "crash"
    #: The VM exhausted its *fuel* (instruction budget).  More fuel may
    #: let the execution finish — this is what the RQ6 retry path escalates.
    TIMEOUT = "timeout"
    SANITIZER = "sanitizer"
    #: A *wall-clock* deadline expired (hung or repeatedly-dying worker):
    #: no result was produced and no amount of fuel would help.  Results
    #: with this status are dropped from the cross-check (k-1 differential)
    #: instead of being retried or compared.
    DEADLINE = "deadline"


@dataclass
class ExecutionResult:
    """Everything observable about one (binary, input) execution."""

    stdout: bytes
    stderr: bytes
    exit_code: int
    status: Status
    #: "segv" | "sigfpe" | "abort" when status is CRASH.
    trap: str | None = None
    #: (kind, line, detail) when status is SANITIZER.
    sanitizer_report: tuple[str, int, str] | None = None
    #: Ground-truth bug sites reached during this execution.
    bug_sites: frozenset[int] = frozenset()
    executed_instructions: int = 0
    binary_name: str = ""
    #: Source-line execution trace (only populated when requested).
    line_trace: tuple[int, ...] = ()
    #: Normalized observation checksum, computed once where the execution
    #: happened (engine workers fill this in so the oracle never derives
    #: it a second time from ``observations``).  ``None`` means "not yet
    #: computed" — CompDiff falls back to deriving it parent-side.
    output_checksum: int | None = None

    def observation(self) -> tuple:
        """The tuple CompDiff compares across implementations.

        Final outputs plus the exit status — the paper's oracle observes a
        process's stdout/stderr (redirected via dup2) and its exit, so a
        crash in one binary and a clean run in another is a discrepancy.
        """
        return (self.stdout, self.stderr, self.exit_code, self.status is Status.TIMEOUT)

    @property
    def crashed(self) -> bool:
        return self.status is Status.CRASH

    @property
    def timed_out(self) -> bool:
        """Fuel exhaustion only — never wall-clock deadline expiry, so the
        RQ6 fuel-escalation retry never re-runs a genuinely hung task."""
        return self.status is Status.TIMEOUT

    @property
    def deadline_expired(self) -> bool:
        return self.status is Status.DEADLINE


def deadline_result(binary_name: str, reason: str) -> ExecutionResult:
    """Placeholder for an execution that never produced a result.

    Synthesized by the supervised engine when a task is quarantined or an
    implementation is dropped from a program's cross-check; carries the
    failure reason in ``stderr`` for forensics but is never checksummed.
    """
    return ExecutionResult(
        stdout=b"",
        stderr=reason.encode("utf-8", "replace"),
        exit_code=-1,
        status=Status.DEADLINE,
        binary_name=binary_name,
    )


def run_binary(
    binary: CompiledBinary,
    input_bytes: bytes = b"",
    fuel: int = DEFAULT_FUEL,
    layout: ImageLayout | None = None,
    coverage=None,
    trace_lines: bool = False,
) -> ExecutionResult:
    """Execute *binary* on *input_bytes* and collect the observation."""
    machine = Machine(
        binary,
        input_bytes=input_bytes,
        fuel=fuel,
        layout=layout,
        coverage=coverage,
        trace_lines=trace_lines,
    )
    exit_code, trap, sanitizer_stop = machine.run()
    return collect_result(machine, exit_code, trap, sanitizer_stop)


def collect_result(
    machine: Machine, exit_code: int, trap: str | None, sanitizer_stop
) -> ExecutionResult:
    """Fold a finished machine's outcome into an :class:`ExecutionResult`.

    Shared by the reference path above and the lockstep fast path so the
    status mapping and sanitizer stderr report stay byte-identical.
    """
    if sanitizer_stop is not None:
        status = Status.SANITIZER
        report = (sanitizer_stop.kind, sanitizer_stop.line, sanitizer_stop.detail)
        # Sanitizers print their report to stderr, like the real tools.
        machine.emit_stderr(
            f"==SAN== {sanitizer_stop.kind} at line {sanitizer_stop.line}: "
            f"{sanitizer_stop.detail}\n".encode()
        )
    elif trap == "timeout":
        status = Status.TIMEOUT
        report = None
        exit_code = -1
        trap = None
    elif trap is not None:
        status = Status.CRASH
        report = None
    else:
        status = Status.OK
        report = None
    return ExecutionResult(
        stdout=bytes(machine.stdout),
        stderr=bytes(machine.stderr),
        exit_code=exit_code,
        status=status,
        trap=trap,
        sanitizer_report=report,
        bug_sites=frozenset(machine.bug_sites),
        executed_instructions=machine.executed,
        binary_name=machine.binary.name,
        line_trace=tuple(machine.line_trace),
    )
