"""Forkserver-style fast repeated execution of one binary.

Real AFL++ injects a forkserver so the target's process image is set up
once and each test case only pays for a fork (§3.2, [26]).  The analog
here: the :class:`~repro.vm.memory.ImageLayout` (global layout, frame
layouts, coverage ids) is computed once per binary, and every ``run`` gets
a fresh :class:`~repro.vm.machine.Machine` that merely copies the
pre-built segment templates.
"""

from __future__ import annotations

from repro.compiler.binary import CompiledBinary
from repro.vm.execution import ExecutionResult, run_binary
from repro.vm.machine import DEFAULT_FUEL
from repro.vm.memory import ImageLayout


class ForkServer:
    """Executes many inputs against one binary with shared load-time state."""

    def __init__(self, binary: CompiledBinary, fuel: int = DEFAULT_FUEL) -> None:
        self.binary = binary
        self.fuel = fuel
        self.layout = ImageLayout(binary)
        self.executions = 0

    def run(self, input_bytes: bytes, fuel: int | None = None, coverage=None) -> ExecutionResult:
        """Execute one input (the "forked child")."""
        self.executions += 1
        return run_binary(
            self.binary,
            input_bytes=input_bytes,
            fuel=fuel if fuel is not None else self.fuel,
            layout=self.layout,
            coverage=coverage,
        )
