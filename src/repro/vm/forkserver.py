"""Forkserver-style fast repeated execution of one binary.

Real AFL++ injects a forkserver so the target's process image is set up
once and each test case only pays for a fork (§3.2, [26]).  The analog
here: the :class:`~repro.vm.memory.ImageLayout` (global layout, frame
layouts, coverage ids) is computed once per binary, and every ``run`` gets
a fresh :class:`~repro.vm.machine.Machine` that merely copies the
pre-built segment templates.

Since the throughput rearchitecture the forkserver also owns the binary's
:class:`~repro.vm.lockstep.DecodedProgram`: the first execution decodes
the IR into flat pre-resolved instruction tables, and every subsequent
input runs from that decoded form (a decode-cache hit).  Executions that
need coverage maps or line traces fall back to the reference
:class:`~repro.vm.machine.Machine`; ``REPRO_NO_LOCKSTEP=1`` forces the
fallback globally and ``REPRO_VERIFY_LOCKSTEP=1`` cross-checks every
lockstep run against the reference interpreter (docs/PERFORMANCE.md).
"""

from __future__ import annotations

import os

from repro.compiler.binary import CompiledBinary
from repro.errors import ReproError
from repro.vm.execution import ExecutionResult, run_binary
from repro.vm.lockstep import DecodedProgram, run_lockstep
from repro.vm.machine import DEFAULT_FUEL
from repro.vm.memory import ImageLayout

#: Fields that must agree between the lockstep and reference interpreters
#: under REPRO_VERIFY_LOCKSTEP=1.  ``line_trace`` is excluded (the
#: fallback path owns tracing); ``output_checksum`` is transport, not
#: an observation.
_VERIFY_FIELDS = (
    "stdout",
    "stderr",
    "exit_code",
    "status",
    "trap",
    "sanitizer_report",
    "bug_sites",
    "executed_instructions",
)


class ForkServer:
    """Executes many inputs against one binary with shared load-time state."""

    def __init__(
        self,
        binary: CompiledBinary,
        fuel: int = DEFAULT_FUEL,
        lockstep: bool = True,
        stats=None,
    ) -> None:
        self.binary = binary
        self.fuel = fuel
        self.layout = ImageLayout(binary)
        self.executions = 0
        self.lockstep = lockstep and os.environ.get("REPRO_NO_LOCKSTEP") != "1"
        self._verify = os.environ.get("REPRO_VERIFY_LOCKSTEP") == "1"
        #: Optional EngineStats sink; counters below are always kept so
        #: engine workers can report deltas without holding a stats object.
        self.stats = stats
        self._decoded: DecodedProgram | None = None
        self.decode_hits = 0
        self.decode_misses = 0
        self.lockstep_runs = 0
        self.fallback_runs = 0

    def decoded(self) -> DecodedProgram:
        """The binary's decoded instruction tables, built on first use."""
        decoded = self._decoded
        if decoded is None:
            decoded = self._decoded = DecodedProgram(self.binary, self.layout)
            self.decode_misses += 1
            if self.stats is not None:
                self.stats.record_executor(decode_misses=1)
        return decoded

    def run(self, input_bytes: bytes, fuel: int | None = None, coverage=None) -> ExecutionResult:
        """Execute one input (the "forked child")."""
        self.executions += 1
        use_fuel = fuel if fuel is not None else self.fuel
        if coverage is not None or not self.lockstep:
            self.fallback_runs += 1
            if self.stats is not None:
                self.stats.record_executor(fallback=1)
            return run_binary(
                self.binary,
                input_bytes=input_bytes,
                fuel=use_fuel,
                layout=self.layout,
                coverage=coverage,
            )
        warm = self._decoded is not None
        decoded = self.decoded()
        if warm:
            self.decode_hits += 1
        self.lockstep_runs += 1
        if self.stats is not None:
            self.stats.record_executor(lockstep=1, decode_hits=int(warm))
        result = run_lockstep(decoded, input_bytes=input_bytes, fuel=use_fuel)
        if self._verify:
            self._cross_check(result, input_bytes, use_fuel)
        return result

    def _cross_check(self, result: ExecutionResult, input_bytes: bytes, fuel: int) -> None:
        reference = run_binary(
            self.binary, input_bytes=input_bytes, fuel=fuel, layout=self.layout
        )
        for field in _VERIFY_FIELDS:
            got, want = getattr(result, field), getattr(reference, field)
            if got != want:
                raise ReproError(
                    f"lockstep divergence on {self.binary.name}: "
                    f"{field} {got!r} != reference {want!r}"
                )
