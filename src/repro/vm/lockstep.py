"""Decode-once lockstep execution: the throughput fast path.

The oracle costs "roughly 10×" a single execution (§5) because every
input re-walks each implementation's IR through the reference
:class:`~repro.vm.machine.Machine`: per instruction that is a dict
dispatch, several ``isinstance`` operand probes, and a handful of
attribute loads that never change between runs.  This module pays that
cost once per *binary* instead of once per *execution*: each function is
decoded into a flat instruction table of ``(step, instr)`` pairs whose
step callables have operand register indices, frame-slot offsets, global
addresses, and integer-op semantics pre-resolved, plus a
``block_offsets`` map from labels to flat indices.  A
:class:`LockstepMachine` then runs any number of inputs from the decoded
form, and a :class:`LockstepExecutor` drives all k implementations of
one program over an input from their decoded tables.

Byte-identity with the reference interpreter is the contract, not a
goal: specialized steps are only emitted for unsanitized binaries and
for operations whose reference semantics are trap-free; everything else
(division, float arithmetic, calls, builtins, returns, and every
instruction of a sanitized binary) executes through the *same* unbound
``Machine._op_*`` handlers the reference dispatch table uses.  Fuel is
kept as a machine attribute — builtins charge per-byte fuel on the
machine directly — and the per-instruction ordering (advance, count,
burn fuel, check timeout, dispatch) matches ``Machine._loop`` exactly,
so fuel-timeout boundaries land on the same instruction.  Set
``REPRO_VERIFY_LOCKSTEP=1`` to cross-check every lockstep execution
against the reference machine (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import operator
import struct
from typing import Callable, Mapping

from repro.compiler.binary import CompiledBinary
from repro.errors import ReproError, VMError
from repro.ir.instructions import (
    AddrGlobal,
    AddrSlot,
    BinOp,
    Branch,
    BugSite,
    Call,
    Cast,
    Const,
    Jump,
    Load,
    Move,
    Reg,
    Store,
    UnOp,
)
from repro.minic.types import FloatType, IntType, PointerType
from repro.vm.execution import ExecutionResult, collect_result
from repro.vm.machine import (
    DEFAULT_FUEL,
    Machine,
    _cast_value,
    _DISPATCH,
    _Frame,
    _Timeout,
    _U64,
)
from repro.vm.memory import ImageLayout, MemTrap, SanitizerStop

_CMP_FNS = {
    "eq": operator.eq,
    "ne": operator.ne,
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
}


def _int_op_fn(op: str, itype: IntType) -> Callable | None:
    """Pre-bound trap-free integer semantics, exactly ``Machine._int_binop``.

    ``IntType.wrap`` is inlined here (mask, then signed range adjust) so
    the hot arithmetic closures do pure local integer ops.  Returns None
    for ops with trap paths (division/remainder) — those run through the
    generic handler so ubsan/sigfpe behavior stays shared.
    """
    bits = itype.bits
    mask = (1 << bits) - 1
    span = 1 << bits
    maxv = itype.max_value
    signed = itype.signed

    def _arith(raw: Callable) -> Callable:
        if signed:
            def go(a, b, _f=raw, _m=mask, _x=maxv, _s=span):
                v = _f(int(a), int(b)) & _m
                return v - _s if v > _x else v

        else:
            def go(a, b, _f=raw, _m=mask):
                return _f(int(a), int(b)) & _m

        return go

    if op == "add":
        return _arith(operator.add)
    if op == "sub":
        return _arith(operator.sub)
    if op == "mul":
        return _arith(operator.mul)
    if op == "and":
        return _arith(operator.and_)
    if op == "or":
        return _arith(operator.or_)
    if op == "xor":
        return _arith(operator.xor)
    # x86-style masked shift counts (one legal UB outcome), as in the
    # reference; the ubsan invalid-shift check only exists under ubsan,
    # and sanitized binaries never reach these specializations.
    if op == "shl":
        return _arith(lambda a, b, _b=bits: a << (b % _b))
    if op == "lshr":
        return _arith(lambda a, b, _b=bits, _m=mask: (a & _m) >> (b % _b))
    if op == "ashr":
        if signed:
            def ashr_raw(a, b, _b=bits, _m=mask, _x=maxv, _s=span):
                w = a & _m
                if w > _x:
                    w -= _s
                return w >> (b % _b)

            return _arith(ashr_raw)
        return _arith(lambda a, b, _b=bits, _m=mask: (a & _m) >> (b % _b))
    base = op[1:] if op and op[0] in "su" else op
    cmp_fn = _CMP_FNS.get(base)
    if cmp_fn is not None and (op in ("eq", "ne") or op[0] in "su"):
        if op[0] == "u" or not signed:
            def go(a, b, _c=cmp_fn, _m=mask):
                return int(_c(int(a) & _m, int(b) & _m))

        else:
            def go(a, b, _c=cmp_fn, _m=mask, _x=maxv, _s=span):
                x = int(a) & _m
                if x > _x:
                    x -= _s
                y = int(b) & _m
                if y > _x:
                    y -= _s
                return int(_c(x, y))

        return go
    return None


def _decode_instr(instr, layout: ImageLayout, frame_layout, sanitized: bool):
    """One instruction → one step callable ``(machine, frame, instr) -> ...``.

    A non-None return from a step signals a control transfer, mirroring
    the reference dispatch protocol.
    """
    kind = type(instr)
    generic = _DISPATCH.get(kind)
    if generic is None:
        def unhandled(machine, frame, arg):
            raise VMError(f"unhandled instruction {arg!r}")

        return unhandled
    if sanitized:
        # msan/ubsan/asan consult taint bits and insert checks on the hot
        # path; the reference handlers already encode all of it.
        return generic

    if kind is Const:
        def step(machine, frame, arg, _d=instr.dst.id, _v=instr.value):
            frame.regs[_d] = _v

        return step

    if kind is Move:
        if isinstance(instr.src, Reg):
            def step(machine, frame, arg, _d=instr.dst.id, _s=instr.src.id):
                frame.regs[_d] = frame.regs[_s]
        else:
            def step(machine, frame, arg, _d=instr.dst.id, _v=instr.src):
                frame.regs[_d] = _v

        return step

    if kind is AddrSlot:
        offset = None if frame_layout is None else frame_layout.offsets.get(instr.slot)
        if offset is None:
            return generic

        def step(machine, frame, arg, _d=instr.dst.id, _o=offset):
            frame.regs[_d] = frame.base + _o

        return step

    if kind is AddrGlobal:
        addr = layout.global_addrs.get(instr.name)
        if addr is None:
            return generic

        def step(machine, frame, arg, _d=instr.dst.id, _a=addr):
            frame.regs[_d] = _a

        return step

    if kind is Load:
        # Inlines read_scalar → read → _locate for unsanitized binaries:
        # the asan poison probe is a no-op without asan, and the wrap of
        # the loaded integer becomes local mask arithmetic.  MemTrap
        # semantics stay in Memory._locate.
        value_type = instr.type if not isinstance(instr.type, PointerType) else _U64
        a_reg = instr.addr.id if isinstance(instr.addr, Reg) else None
        a_const = None if a_reg is not None else int(instr.addr)
        if isinstance(value_type, IntType):
            size = max(value_type.size(), 1)
            mask = (1 << value_type.bits) - 1
            span = 1 << value_type.bits
            maxv = value_type.max_value
            signed = value_type.signed

            def step(
                machine, frame, arg,
                _d=instr.dst.id, _ar=a_reg, _ac=a_const, _n=size, _l=instr.line,
                _m=mask, _x=maxv, _sp=span, _sg=signed,
            ):
                addr = int(frame.regs[_ar]) if _ar is not None else _ac
                seg, off = machine.memory._locate(addr, _n, _l)
                v = int.from_bytes(seg[off:off + _n], "little") & _m
                if _sg and v > _x:
                    v -= _sp
                frame.regs[_d] = v

            return step
        if isinstance(value_type, FloatType):
            size = max(value_type.size(), 1)
            fmt = "<f" if value_type.bits == 32 else "<d"

            def step(
                machine, frame, arg,
                _d=instr.dst.id, _ar=a_reg, _ac=a_const, _n=size, _l=instr.line,
                _fmt=fmt, _unpack=struct.unpack,
            ):
                addr = int(frame.regs[_ar]) if _ar is not None else _ac
                seg, off = machine.memory._locate(addr, _n, _l)
                frame.regs[_d] = _unpack(_fmt, seg[off:off + _n])[0]

            return step
        return generic

    if kind is Store:
        value_type = instr.type if not isinstance(instr.type, PointerType) else _U64
        a_reg = instr.addr.id if isinstance(instr.addr, Reg) else None
        a_const = None if a_reg is not None else int(instr.addr)
        s_reg = instr.src.id if isinstance(instr.src, Reg) else None
        s_const = None if s_reg is not None else instr.src
        if isinstance(value_type, IntType):
            size = value_type.size()
            mask = (1 << value_type.bits) - 1

            def step(
                machine, frame, arg,
                _ar=a_reg, _ac=a_const, _sr=s_reg, _sc=s_const,
                _n=size, _l=instr.line, _m=mask,
            ):
                addr = int(frame.regs[_ar]) if _ar is not None else _ac
                value = frame.regs[_sr] if _sr is not None else _sc
                raw = (int(value) & _m).to_bytes(_n, "little")
                seg, off = machine.memory._locate(addr, _n, _l)
                seg[off:off + _n] = raw

            return step
        if isinstance(value_type, FloatType):
            size = value_type.size()
            fmt = "<f" if value_type.bits == 32 else "<d"

            def step(
                machine, frame, arg,
                _ar=a_reg, _ac=a_const, _sr=s_reg, _sc=s_const,
                _n=size, _l=instr.line, _fmt=fmt, _pack=struct.pack,
            ):
                addr = int(frame.regs[_ar]) if _ar is not None else _ac
                value = frame.regs[_sr] if _sr is not None else _sc
                try:
                    raw = _pack(_fmt, float(value))
                except OverflowError:
                    raw = _pack(_fmt, float("inf") if value > 0 else float("-inf"))
                seg, off = machine.memory._locate(addr, _n, _l)
                seg[off:off + _n] = raw

            return step
        return generic

    if kind is Cast:
        if isinstance(instr.src, Reg):
            from_type, to_type = instr.from_type, instr.to_type
            if isinstance(to_type, IntType) and not isinstance(from_type, FloatType):
                # int → int: to_type.wrap inlined.
                mask = (1 << to_type.bits) - 1
                span = 1 << to_type.bits
                maxv = to_type.max_value
                signed = to_type.signed

                def step(
                    machine, frame, arg,
                    _d=instr.dst.id, _s=instr.src.id,
                    _m=mask, _x=maxv, _sp=span, _sg=signed,
                ):
                    v = int(frame.regs[_s]) & _m
                    if _sg and v > _x:
                        v -= _sp
                    frame.regs[_d] = v

                return step
            if isinstance(to_type, FloatType):
                if to_type.bits == 32:
                    def step(
                        machine, frame, arg,
                        _d=instr.dst.id, _s=instr.src.id,
                        _pack=struct.pack, _unpack=struct.unpack,
                    ):
                        frame.regs[_d] = _unpack(
                            "<f", _pack("<f", float(frame.regs[_s]))
                        )[0]
                else:
                    def step(machine, frame, arg, _d=instr.dst.id, _s=instr.src.id):
                        frame.regs[_d] = float(frame.regs[_s])

                return step

            def step(
                machine, frame, arg,
                _d=instr.dst.id, _s=instr.src.id,
                _ft=from_type, _tt=to_type,
            ):
                frame.regs[_d] = _cast_value(frame.regs[_s], _ft, _tt)
        else:
            folded = _cast_value(instr.src, instr.from_type, instr.to_type)

            def step(machine, frame, arg, _d=instr.dst.id, _v=folded):
                frame.regs[_d] = _v

        return step

    if kind is UnOp:
        if instr.op in ("neg", "not") and isinstance(instr.type, IntType):
            wrap = instr.type.wrap
            if isinstance(instr.src, Reg):
                if instr.op == "neg":
                    def step(machine, frame, arg, _d=instr.dst.id, _s=instr.src.id, _w=wrap):
                        frame.regs[_d] = _w(-int(frame.regs[_s]))
                else:
                    def step(machine, frame, arg, _d=instr.dst.id, _s=instr.src.id, _w=wrap):
                        frame.regs[_d] = _w(~int(frame.regs[_s]))
            else:
                folded = (
                    wrap(-int(instr.src)) if instr.op == "neg" else wrap(~int(instr.src))
                )

                def step(machine, frame, arg, _d=instr.dst.id, _v=folded):
                    frame.regs[_d] = _v

            return step
        if instr.op == "fneg":
            if isinstance(instr.src, Reg):
                def step(machine, frame, arg, _d=instr.dst.id, _s=instr.src.id):
                    frame.regs[_d] = -float(frame.regs[_s])
            else:
                folded = -float(instr.src)

                def step(machine, frame, arg, _d=instr.dst.id, _v=folded):
                    frame.regs[_d] = _v

            return step
        return generic

    if kind is BinOp:
        if isinstance(instr.type, FloatType) or instr.op[0] == "f":
            return generic  # float semantics depend on config rounding mode
        if not isinstance(instr.type, IntType):
            return generic
        op_fn = _int_op_fn(instr.op, instr.type)
        if op_fn is None:
            return generic  # division/remainder: trap paths stay shared
        lhs, rhs = instr.lhs, instr.rhs
        if isinstance(lhs, Reg) and isinstance(rhs, Reg):
            def step(machine, frame, arg, _d=instr.dst.id, _l=lhs.id, _r=rhs.id, _f=op_fn):
                frame.regs[_d] = _f(frame.regs[_l], frame.regs[_r])
        elif isinstance(lhs, Reg):
            def step(machine, frame, arg, _d=instr.dst.id, _l=lhs.id, _v=rhs, _f=op_fn):
                frame.regs[_d] = _f(frame.regs[_l], _v)
        elif isinstance(rhs, Reg):
            def step(machine, frame, arg, _d=instr.dst.id, _v=lhs, _r=rhs.id, _f=op_fn):
                frame.regs[_d] = _f(_v, frame.regs[_r])
        else:
            folded = op_fn(lhs, rhs)

            def step(machine, frame, arg, _d=instr.dst.id, _v=folded):
                frame.regs[_d] = _v

        return step

    if kind is BugSite:
        def step(machine, frame, arg, _s=instr.site):
            machine.bug_sites.add(_s)

        return step

    if kind is Jump:
        def step(machine, frame, arg, _t=instr.target):
            frame.label = _t
            return True

        return step

    if kind is Branch:
        if isinstance(instr.cond, Reg):
            def step(
                machine, frame, arg,
                _c=instr.cond.id, _t=instr.if_true, _e=instr.if_false,
            ):
                frame.label = _t if frame.regs[_c] else _e
                return True
        else:
            target = instr.if_true if instr.cond else instr.if_false

            def step(machine, frame, arg, _t=target):
                frame.label = _t
                return True

        return step

    if kind is Call:
        # Marshal arguments with pre-resolved operand kinds; frame push
        # (depth check, param wrap, layout) stays in _push_call.  Taint
        # is always False without msan.
        plan = tuple(
            (a.id, None) if isinstance(a, Reg) else (None, a) for a in instr.args
        )

        def step(
            machine, frame, arg,
            _plan=plan, _callee=instr.callee, _dst=instr.dst, _l=instr.line,
        ):
            regs = frame.regs
            machine._push_call(
                _callee,
                [(regs[i], False) if i is not None else (v, False) for i, v in _plan],
                _dst,
                _l,
            )
            return True

        return step

    # Ret / CallBuiltin: frame teardown and I/O machinery stays shared.
    return generic


#: Steps that may touch machine-level counters (fuel via builtins) and so
#: need the loop's local fuel flushed/reloaded around the call.
_GENERIC_STEPS = frozenset(_DISPATCH.values())


class DecodedFunction:
    """One function flattened: blocks concatenated, labels → flat offsets.

    ``code`` holds ``(step, instr, sync)`` triples — ``sync`` marks
    shared reference handlers whose callees may charge fuel on the
    machine.  A ``(None, label, False)`` sentinel follows every block so
    falling off its end raises the same "fell through without
    terminator" error as the reference loop — including when a ``Call``
    is the last instruction and the callee's return resumes the caller
    at the block boundary.
    """

    __slots__ = ("func", "code", "block_offsets")

    def __init__(self, func, code, block_offsets) -> None:
        self.func = func
        self.code = code
        self.block_offsets = block_offsets


def _decode_function(func, layout: ImageLayout, sanitized: bool) -> DecodedFunction:
    frame_layout = layout.frames.get(func.name)
    code: list[tuple] = []
    block_offsets: dict[str, int] = {}
    for label, block in func.blocks.items():
        block_offsets[label] = len(code)
        for instr in block.instrs:
            step = _decode_instr(instr, layout, frame_layout, sanitized)
            code.append((step, instr, step in _GENERIC_STEPS))
        code.append((None, label, False))
    return DecodedFunction(func, code, block_offsets)


class DecodedProgram:
    """A binary's IR decoded once, reusable across any number of inputs."""

    __slots__ = ("binary", "layout", "functions", "instruction_count")

    def __init__(self, binary: CompiledBinary, layout: ImageLayout | None = None) -> None:
        self.binary = binary
        self.layout = layout if layout is not None else ImageLayout(binary)
        sanitized = binary.sanitizer is not None
        self.functions = {
            name: _decode_function(func, self.layout, sanitized)
            for name, func in binary.module.functions.items()
        }
        self.instruction_count = sum(
            len(fn.code) for fn in self.functions.values()
        )


class _LFrame(_Frame):
    __slots__ = ("pc", "decoded")


class LockstepMachine(Machine):
    """Reference-semantics interpreter over a :class:`DecodedProgram`.

    Never instantiated with coverage or line tracing — callers fall back
    to the reference :class:`Machine` for those (ForkServer counts them
    as fallback executions).
    """

    def __init__(
        self,
        decoded: DecodedProgram,
        input_bytes: bytes = b"",
        fuel: int = DEFAULT_FUEL,
    ) -> None:
        super().__init__(
            decoded.binary,
            input_bytes=input_bytes,
            fuel=fuel,
            layout=decoded.layout,
        )
        self.decoded = decoded

    def _push_call(self, callee: str, args: list, ret_reg, line: int) -> None:
        # Mirrors Machine._push_call but builds an _LFrame positioned at
        # the callee's decoded entry offset.  Coverage edges are omitted:
        # lockstep machines never carry a coverage map.
        func = self.module.functions.get(callee)
        if func is None:
            raise VMError(f"call to undefined function {callee!r}")
        if len(self._frames) >= 256:
            raise MemTrap("segv", 0, line, "call stack exhausted")
        if self._ubsan and len(args) < len(func.params):
            raise SanitizerStop(
                "function-type-mismatch",
                line,
                f"{callee} expects {len(func.params)} args, got {len(args)}",
            )
        regs = [0] * max(func.num_regs, len(func.params))
        taints = [False] * len(regs) if self._msan else None
        for i, (_, param_type) in enumerate(func.params):
            if i < len(args):
                value, taint = args[i]
            else:
                value, taint = self.config.missing_arg_value, False
            if isinstance(param_type, IntType):
                value = param_type.wrap(int(value))
            regs[i] = value
            if taints is not None:
                taints[i] = taint
        base, frame_layout = self.memory.push_frame(func.name, line)
        frame = _LFrame(func, regs, taints, base, frame_layout, ret_reg)
        decoded = self.decoded.functions[callee]
        offset = decoded.block_offsets.get(func.entry)
        if offset is None:
            raise VMError(f"missing block {func.entry} in {func.name}")
        frame.decoded = decoded
        frame.pc = offset
        self._frames.append(frame)

    def _loop(self) -> None:
        # Per-instruction ordering is the reference loop's, verbatim:
        # advance, count, burn fuel, timeout check, dispatch.  Fuel and
        # the executed counter live in locals; around ``sync`` steps
        # (shared reference handlers — builtins charge per-byte fuel on
        # the machine directly) the local fuel is flushed and reloaded,
        # so timeout boundaries land on exactly the same instruction.
        frames = self._frames
        executed = self.executed
        fuel = self.fuel
        try:
            while frames:
                frame = frames[-1]
                decoded = frame.decoded
                code = decoded.code
                pc = frame.pc
                while True:
                    step, arg, sync = code[pc]
                    if step is None:
                        raise VMError(
                            f"block {arg} fell through without terminator"
                        )
                    pc += 1
                    executed += 1
                    fuel -= 1
                    if fuel <= 0:
                        raise _Timeout()
                    if sync:
                        self.fuel = fuel
                        result = step(self, frame, arg)
                        fuel = self.fuel
                        if result is not None:
                            break
                    elif step(self, frame, arg) is not None:
                        break
                if frames and frames[-1] is frame:
                    # Jump/Branch within the function: resolve the label.
                    offset = decoded.block_offsets.get(frame.label)
                    if offset is None:
                        raise VMError(
                            f"missing block {frame.label} in {frame.func.name}"
                        )
                    frame.pc = offset
                else:
                    # Call pushed a callee (resume after it on return) or
                    # Ret popped this frame (pc write is then inert).
                    frame.pc = pc
        finally:
            self.executed = executed
            self.fuel = fuel


def run_lockstep(
    decoded: DecodedProgram,
    input_bytes: bytes = b"",
    fuel: int = DEFAULT_FUEL,
) -> ExecutionResult:
    """Execute one input from decoded form; mirrors :func:`run_binary`."""
    machine = LockstepMachine(decoded, input_bytes=input_bytes, fuel=fuel)
    exit_code, trap, sanitizer_stop = machine.run()
    return collect_result(machine, exit_code, trap, sanitizer_stop)


class LockstepExecutor:
    """Drives all k implementations of one program over shared decoded IR.

    Built over the per-implementation ForkServers so each binary's
    :class:`DecodedProgram` (and ImageLayout) is decoded exactly once and
    reused for every input — the k independent ``Machine.run`` IR walks
    of the serial oracle collapse into k table executions.
    """

    def __init__(self, servers: Mapping[str, "ForkServer"]) -> None:  # noqa: F821
        self._servers = dict(servers)

    @property
    def servers(self):
        return self._servers

    def decode_all(self) -> int:
        """Eagerly decode every implementation; returns total table size."""
        return sum(
            server.decoded().instruction_count for server in self._servers.values()
        )

    def run_input(
        self,
        input_bytes: bytes,
        fuel: int | None = None,
        on_error=None,
    ) -> dict[str, ExecutionResult]:
        """Run *input_bytes* through every implementation in lockstep.

        ``on_error(name, exc) -> ExecutionResult | None`` lets the caller
        degrade a failing implementation (the oracle's k-1 policy) instead
        of aborting the sweep; without it the first error propagates.
        """
        results: dict[str, ExecutionResult] = {}
        for name, server in self._servers.items():
            try:
                results[name] = server.run(input_bytes, fuel=fuel)
            except ReproError as err:
                if on_error is None:
                    raise
                replacement = on_error(name, err)
                if replacement is not None:
                    results[name] = replacement
        return results
