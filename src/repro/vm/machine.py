"""The bytecode interpreter.

Executes one input against one compiled binary.  All undefined behavior is
given *some* deterministic concrete semantics here (x86-flavored: masked
shift counts, trapping integer division, truncating float→int casts); the
cross-implementation divergence the paper studies comes from the compiled
IR and the layout policy, not from interpreter nondeterminism.
"""

from __future__ import annotations

import math
import struct

from repro.compiler.binary import CompiledBinary
from repro.errors import VMError
from repro.ir.instructions import (
    AddrGlobal,
    AddrSlot,
    BinOp,
    Branch,
    BugSite,
    Call,
    CallBuiltin,
    Cast,
    Const,
    Jump,
    Load,
    Move,
    Reg,
    Ret,
    Store,
    UnOp,
)
from repro.minic.types import FloatType, IntType, PointerType
from repro.vm.memory import ImageLayout, Memory, MemTrap, SanitizerStop

DEFAULT_FUEL = 2_000_000
OUTPUT_LIMIT = 1 << 20


class _Exit(Exception):
    def __init__(self, code: int) -> None:
        self.code = code


class _Timeout(Exception):
    pass


class _Frame:
    __slots__ = ("func", "regs", "taints", "base", "layout", "label", "index", "ret_reg")

    def __init__(self, func, regs, taints, base, layout, ret_reg) -> None:
        self.func = func
        self.regs = regs
        self.taints = taints
        self.base = base
        self.layout = layout
        self.label = func.entry
        self.index = 0
        self.ret_reg = ret_reg


class Machine:
    """Interprets one execution of *binary* on *input_bytes*."""

    def __init__(
        self,
        binary: CompiledBinary,
        input_bytes: bytes = b"",
        fuel: int = DEFAULT_FUEL,
        layout: ImageLayout | None = None,
        coverage=None,
        trace_lines: bool = False,
    ) -> None:
        self.binary = binary
        self.config = binary.config
        self.module = binary.module
        self.layout = layout if layout is not None else ImageLayout(binary)
        self.memory = Memory(self.layout)
        self.input = input_bytes
        self.input_cursor = 0
        self.fuel = fuel
        self.coverage = coverage if binary.instrument_coverage else None
        self._prev_location = 0
        self.stdout = bytearray()
        self.stderr = bytearray()
        self.bug_sites: set[int] = set()
        self.executed = 0
        self.sanitizer = binary.sanitizer
        # Hot-path flags (string compares per instruction add up).
        self._msan = binary.sanitizer == "msan"
        self._ubsan = binary.sanitizer == "ubsan"
        self._frames: list[_Frame] = []
        #: Optional source-line execution trace (consecutive duplicates
        #: collapsed) for §5-style trace-alignment fault localization.
        self.trace_lines = trace_lines
        self.line_trace: list[int] = []

    # -------------------------------------------------------------- driving

    def run(self) -> tuple[int, str | None, object]:
        """Execute ``main``; returns (exit_code, trap_kind, sanitizer_stop).

        Exactly one of the three describes the outcome: trap_kind is set on
        a crash, the third element on a sanitizer abort, otherwise the exit
        code is main's return value (POSIX-truncated).
        """
        if "main" not in self.module.functions:
            raise VMError(f"module {self.module.name!r} has no main()")
        try:
            self._push_call("main", [], None, line=0)
            self._loop()
            return 0, None, None  # pragma: no cover - loop exits via _Exit
        except _Exit as stop:
            return stop.code & 0xFF, None, None
        except MemTrap as trap:
            code = {"segv": 139, "sigfpe": 136, "abort": 134}.get(trap.kind, 132)
            return code, trap.kind, None
        except SanitizerStop as stop:
            return 1, None, stop
        except _Timeout:
            return -1, "timeout", None

    def _loop(self) -> None:
        while self._frames:
            frame = self._frames[-1]
            block = frame.func.blocks.get(frame.label)
            if block is None:
                raise VMError(f"missing block {frame.label} in {frame.func.name}")
            instrs = block.instrs
            while frame.index < len(instrs):
                instr = instrs[frame.index]
                frame.index += 1
                self.executed += 1
                self.fuel -= 1
                if self.fuel <= 0:
                    raise _Timeout()
                if self.trace_lines and instr.line:
                    trace = self.line_trace
                    if (not trace or trace[-1] != instr.line) and len(trace) < 200_000:
                        trace.append(instr.line)
                handler = _DISPATCH.get(type(instr))
                if handler is None:
                    raise VMError(f"unhandled instruction {instr!r}")
                result = handler(self, frame, instr)
                if result is not None:
                    break  # control transfer: frame/label changed
            else:
                raise VMError(f"block {frame.label} fell through without terminator")

    # ----------------------------------------------------------- value plumbing

    def _value(self, frame: _Frame, operand):
        if isinstance(operand, Reg):
            return frame.regs[operand.id]
        return operand

    def _taint(self, frame: _Frame, operand) -> bool:
        if self._msan and isinstance(operand, Reg):
            return frame.taints[operand.id]
        return False

    def _set(self, frame: _Frame, reg: Reg, value, taint: bool = False) -> None:
        frame.regs[reg.id] = value
        if self._msan:
            frame.taints[reg.id] = taint

    # --------------------------------------------------------------- control

    def _enter_block(self, frame: _Frame, label: str) -> None:
        frame.label = label
        frame.index = 0
        if self.coverage is not None:
            cur = self.layout.label_ids[(frame.func.name, label)]
            self.coverage.record_edge(self._prev_location, cur)
            self._prev_location = cur

    def _push_call(self, callee: str, args: list, ret_reg, line: int) -> None:
        func = self.module.functions.get(callee)
        if func is None:
            raise VMError(f"call to undefined function {callee!r}")
        if len(self._frames) >= 256:
            raise MemTrap("segv", 0, line, "call stack exhausted")
        if self._ubsan and len(args) < len(func.params):
            # -fsanitize=function: call through a mismatched prototype.
            raise SanitizerStop(
                "function-type-mismatch",
                line,
                f"{callee} expects {len(func.params)} args, got {len(args)}",
            )
        regs = [0] * max(func.num_regs, len(func.params))
        taints = [False] * len(regs) if self._msan else None
        for i, (_, param_type) in enumerate(func.params):
            if i < len(args):
                value, taint = args[i]
            else:
                value, taint = self.config.missing_arg_value, False
            if isinstance(param_type, IntType):
                value = param_type.wrap(int(value))
            regs[i] = value
            if taints is not None:
                taints[i] = taint
        base, frame_layout = self.memory.push_frame(func.name, line)
        frame = _Frame(func, regs, taints, base, frame_layout, ret_reg)
        self._frames.append(frame)
        if self.coverage is not None:
            cur = self.layout.label_ids[(func.name, func.entry)]
            self.coverage.record_edge(self._prev_location, cur)
            self._prev_location = cur

    # ------------------------------------------------------------ instruction ops

    def _op_const(self, frame: _Frame, instr: Const):
        self._set(frame, instr.dst, instr.value)
        return None

    def _op_move(self, frame: _Frame, instr: Move):
        self._set(frame, instr.dst, self._value(frame, instr.src), self._taint(frame, instr.src))
        return None

    def _op_addr_slot(self, frame: _Frame, instr: AddrSlot):
        offset = frame.layout.offsets[instr.slot]
        self._set(frame, instr.dst, frame.base + offset)
        return None

    def _op_addr_global(self, frame: _Frame, instr: AddrGlobal):
        addr = self.layout.global_addrs.get(instr.name)
        if addr is None:
            raise VMError(f"unknown global {instr.name!r}")
        self._set(frame, instr.dst, addr)
        return None

    def _op_load(self, frame: _Frame, instr: Load):
        addr = int(self._value(frame, instr.addr))
        if self._ubsan and 0 <= addr < 4096:
            raise SanitizerStop("null-pointer-dereference", instr.line, "load")
        value_type = instr.type if not isinstance(instr.type, PointerType) else _U64
        value = self.memory.read_scalar(addr, value_type, instr.line)
        taint = False
        if self._msan:
            taint = not self.memory.is_initialized(addr, max(value_type.size(), 1))
        self._set(frame, instr.dst, value, taint)
        return None

    def _op_store(self, frame: _Frame, instr: Store):
        addr = int(self._value(frame, instr.addr))
        if self._ubsan and 0 <= addr < 4096:
            raise SanitizerStop("null-pointer-dereference", instr.line, "store")
        value = self._value(frame, instr.src)
        value_type = instr.type if not isinstance(instr.type, PointerType) else _U64
        self.memory.write_scalar(addr, value, value_type, instr.line)
        if self._msan:
            size = max(value_type.size(), 1)
            self.memory.mark_initialized(addr, size, not self._taint(frame, instr.src))
        return None

    def _op_cast(self, frame: _Frame, instr: Cast):
        value = self._value(frame, instr.src)
        taint = self._taint(frame, instr.src)
        self._set(frame, instr.dst, _cast_value(value, instr.from_type, instr.to_type), taint)
        return None

    def _op_unop(self, frame: _Frame, instr: UnOp):
        value = self._value(frame, instr.src)
        taint = self._taint(frame, instr.src)
        if instr.op == "neg":
            assert isinstance(instr.type, IntType)
            result = instr.type.wrap(-int(value))
        elif instr.op == "not":
            assert isinstance(instr.type, IntType)
            result = instr.type.wrap(~int(value))
        elif instr.op == "fneg":
            result = -float(value)
        else:  # pragma: no cover
            raise VMError(f"unknown unop {instr.op}")
        self._set(frame, instr.dst, result, taint)
        return None

    def _op_binop(self, frame: _Frame, instr: BinOp):
        lhs = self._value(frame, instr.lhs)
        rhs = self._value(frame, instr.rhs)
        taint = self._taint(frame, instr.lhs) or self._taint(frame, instr.rhs)
        if isinstance(instr.type, FloatType) or instr.op[0] == "f":
            result = self._float_binop(instr, lhs, rhs)
        else:
            result = self._int_binop(instr, int(lhs), int(rhs))
        self._set(frame, instr.dst, result, taint)
        return None

    def _int_binop(self, instr: BinOp, lhs: int, rhs: int):
        op = instr.op
        itype = instr.type
        assert isinstance(itype, IntType)
        bits = itype.bits
        if op == "add":
            result = lhs + rhs
        elif op == "sub":
            result = lhs - rhs
        elif op == "mul":
            result = lhs * rhs
        elif op in ("sdiv", "srem"):
            a, d = itype.wrap(lhs), itype.wrap(rhs)
            if d == 0:
                if self._ubsan:
                    raise SanitizerStop("division-by-zero", instr.line)
                raise MemTrap("sigfpe", 0, instr.line, "integer division by zero")
            if a == itype.min_value and d == -1:
                if self._ubsan:
                    raise SanitizerStop("signed-integer-overflow", instr.line, "division")
                raise MemTrap("sigfpe", 0, instr.line, "division overflow")
            quotient = abs(a) // abs(d) * (1 if (a >= 0) == (d >= 0) else -1)
            result = quotient if op == "sdiv" else a - quotient * d
        elif op in ("udiv", "urem"):
            mask = (1 << bits) - 1
            a, d = lhs & mask, rhs & mask
            if d == 0:
                if self._ubsan:
                    raise SanitizerStop("division-by-zero", instr.line)
                raise MemTrap("sigfpe", 0, instr.line, "integer division by zero")
            result = a // d if op == "udiv" else a % d
        elif op in ("shl", "lshr", "ashr"):
            if self._ubsan and not 0 <= rhs < bits:
                raise SanitizerStop("invalid-shift", instr.line, f"count {rhs}")
            count = rhs % bits  # x86-style masked count (one legal UB outcome)
            if op == "shl":
                result = lhs << count
            elif op == "lshr":
                result = (lhs & ((1 << bits) - 1)) >> count
            else:
                result = itype.wrap(lhs) >> count
        elif op == "and":
            result = lhs & rhs
        elif op == "or":
            result = lhs | rhs
        elif op == "xor":
            result = lhs ^ rhs
        elif op in ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"):
            return self._int_cmp(op, lhs, rhs, itype)
        else:  # pragma: no cover
            raise VMError(f"unknown binop {op}")
        if (
            self._ubsan
            and instr.nsw
            and op in ("add", "sub", "mul")
            and not itype.contains(result)
        ):
            raise SanitizerStop("signed-integer-overflow", instr.line, f"{op} {itype}")
        return itype.wrap(result)

    def _int_cmp(self, op: str, lhs: int, rhs: int, itype: IntType) -> int:
        if op[0] == "u" or not itype.signed:
            mask = (1 << itype.bits) - 1
            lhs &= mask
            rhs &= mask
        else:
            lhs = itype.wrap(lhs)
            rhs = itype.wrap(rhs)
        base = op[1:] if op[0] in "su" else op
        if base == "eq":
            return int(lhs == rhs)
        if base == "ne":
            return int(lhs != rhs)
        if base == "lt":
            return int(lhs < rhs)
        if base == "le":
            return int(lhs <= rhs)
        if base == "gt":
            return int(lhs > rhs)
        return int(lhs >= rhs)

    def _float_binop(self, instr: BinOp, lhs, rhs):
        lhs = float(lhs)
        rhs = float(rhs)
        op = instr.op
        if op == "fadd":
            result = lhs + rhs
        elif op == "fsub":
            result = lhs - rhs
        elif op == "fmul":
            result = lhs * rhs
        elif op == "fdiv":
            if rhs == 0.0:
                result = math.inf if lhs > 0 else (-math.inf if lhs < 0 else math.nan)
            else:
                result = lhs / rhs
        elif op == "feq":
            return int(lhs == rhs)
        elif op == "fne":
            return int(lhs != rhs)
        elif op == "flt":
            return int(lhs < rhs)
        elif op == "fle":
            return int(lhs <= rhs)
        elif op == "fgt":
            return int(lhs > rhs)
        elif op == "fge":
            return int(lhs >= rhs)
        else:  # pragma: no cover
            raise VMError(f"unknown float op {op}")
        if (
            isinstance(instr.type, FloatType)
            and instr.type.bits == 32
            and not self.config.fp_extended_intermediate
        ):
            # SSE-style: round to single precision after every operation.
            # fp_extended_intermediate keeps the x87-style double-rounded
            # chain, a classic source of float divergence (§4.3 RQ2).
            result = struct.unpack("<f", struct.pack("<f", result))[0]
        return result

    def _op_bugsite(self, frame: _Frame, instr: BugSite):
        self.bug_sites.add(instr.site)
        return None

    def _op_jump(self, frame: _Frame, instr: Jump):
        self._enter_block(frame, instr.target)
        return True

    def _op_branch(self, frame: _Frame, instr: Branch):
        if self._msan and self._taint(frame, instr.cond):
            raise SanitizerStop("use-of-uninitialized-value", instr.line, "branch")
        cond = self._value(frame, instr.cond)
        self._enter_block(frame, instr.if_true if cond else instr.if_false)
        return True

    def _op_ret(self, frame: _Frame, instr: Ret):
        value = 0 if instr.value is None else self._value(frame, instr.value)
        taint = self._taint(frame, instr.value) if instr.value is not None else False
        self.memory.pop_frame(frame.base, frame.layout)
        self._frames.pop()
        if not self._frames:
            raise _Exit(int(value) if isinstance(value, (int, float)) else 0)
        caller = self._frames[-1]
        if frame.ret_reg is not None:
            self._set(caller, frame.ret_reg, value, taint)
        return True

    def _op_call(self, frame: _Frame, instr: Call):
        args = [
            (self._value(frame, a), self._taint(frame, a)) for a in instr.args
        ]
        self._push_call(instr.callee, args, instr.dst, instr.line)
        return True

    def _op_builtin(self, frame: _Frame, instr: CallBuiltin):
        from repro.vm.runtime import call_builtin

        result, taint = call_builtin(self, frame, instr)
        if instr.dst is not None:
            self._set(frame, instr.dst, result, taint)
        return None

    # ------------------------------------------------------------------ output

    def emit_stdout(self, data: bytes) -> None:
        if len(self.stdout) < OUTPUT_LIMIT:
            self.stdout += data

    def emit_stderr(self, data: bytes) -> None:
        if len(self.stderr) < OUTPUT_LIMIT:
            self.stderr += data


_U64 = IntType(64, signed=False)


def _cast_value(value, from_type, to_type):
    if isinstance(to_type, IntType):
        if isinstance(from_type, FloatType):
            f = float(value)
            if math.isnan(f) or math.isinf(f):
                return to_type.min_value
            truncated = int(f)
            if not to_type.contains(truncated):
                # x86 cvttsd2si "integer indefinite" result.
                return to_type.min_value
            return truncated
        return to_type.wrap(int(value))
    if isinstance(to_type, FloatType):
        result = float(value)
        if to_type.bits == 32:
            result = struct.unpack("<f", struct.pack("<f", result))[0]
        return result
    return value


_DISPATCH = {
    Const: Machine._op_const,
    Move: Machine._op_move,
    AddrSlot: Machine._op_addr_slot,
    AddrGlobal: Machine._op_addr_global,
    Load: Machine._op_load,
    Store: Machine._op_store,
    Cast: Machine._op_cast,
    UnOp: Machine._op_unop,
    BinOp: Machine._op_binop,
    BugSite: Machine._op_bugsite,
    Jump: Machine._op_jump,
    Branch: Machine._op_branch,
    Ret: Machine._op_ret,
    Call: Machine._op_call,
    CallBuiltin: Machine._op_builtin,
}
