"""Segmented memory model with per-implementation layout policies.

Memory is three flat segments — globals, stack, heap — whose base
addresses, object ordering, and padding come from the binary's
:class:`~repro.compiler.implementations.CompilerConfig`.  Everything
*inside* a segment is plain corruptible storage: a four-byte overflow past
a buffer lands in whatever the layout placed next, which is how MemError
unstable code acquires implementation-dependent behavior.  Only accesses
that escape every segment fault (SIGSEGV), as on a real MMU.
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass, field

from repro.compiler.binary import CompiledBinary
from repro.compiler.implementations import CompilerConfig
from repro.ir.module import FrameSlot, Function
from repro.minic.types import FloatType, IntType, Type

STACK_SIZE = 256 * 1024
HEAP_SIZE = 256 * 1024
#: The unmapped page at address zero.
NULL_PAGE = 4096
#: ASan redzone width around every object.
REDZONE = 16


class MemTrap(Exception):
    """A hardware-style trap raised by a guest memory access or operation."""

    def __init__(self, kind: str, addr: int = 0, line: int = 0, detail: str = "") -> None:
        self.kind = kind  # "segv" | "sigfpe" | "abort"
        self.addr = addr
        self.line = line
        self.detail = detail
        super().__init__(f"{kind} at 0x{addr:x} (line {line}) {detail}")


class SanitizerStop(Exception):
    """Raised when a sanitizer check fires (run aborts with a report)."""

    def __init__(self, kind: str, line: int = 0, detail: str = "") -> None:
        self.kind = kind
        self.line = line
        self.detail = detail
        super().__init__(f"{kind} (line {line}) {detail}")


def order_slots(slots: list[FrameSlot], policy: str) -> list[FrameSlot]:
    """Order frame slots according to the layout *policy* (stable sorts)."""
    if policy == "size_desc":
        return sorted(slots, key=lambda s: (-s.size, s.index))
    if policy == "buffers_last":
        return sorted(slots, key=lambda s: (s.is_buffer, s.index))
    return list(slots)


def order_globals(names: list[str], sizes: dict[str, int], policy: str) -> list[str]:
    index = {name: i for i, name in enumerate(names)}
    if policy == "alpha":
        return sorted(names)
    if policy == "size_desc":
        return sorted(names, key=lambda n: (-sizes[n], index[n]))
    if policy == "size_desc_rev":
        return sorted(names, key=lambda n: (-sizes[n], -index[n]))
    if policy == "decl_rev":
        return list(reversed(names))
    return list(names)


@dataclass
class FrameLayout:
    """Offsets of one function's slots within its frame."""

    size: int
    offsets: dict[int, int]  # slot index -> offset from frame base
    #: (offset, length) of ASan redzones inside the frame.
    redzones: list[tuple[int, int]] = field(default_factory=list)
    #: (offset, length, name) of the slots themselves (for reports).
    objects: list[tuple[int, int, str]] = field(default_factory=list)


class ImageLayout:
    """Load-time layout for one binary: global addresses, frame layouts.

    Computed once per binary and shared across executions (the forkserver
    analogy: the expensive part happens before the first fork).
    """

    def __init__(self, binary: CompiledBinary) -> None:
        config = binary.config
        self.binary = binary
        self.config = config
        asan = binary.sanitizer == "asan"
        # ---- globals segment ----
        module = binary.module
        names = list(module.globals)
        sizes = {name: module.globals[name].size for name in names}
        ordered = order_globals(names, sizes, config.global_order)
        self.global_addrs: dict[str, int] = {}
        self.global_objects: list[tuple[int, int, str]] = []
        self.global_redzones: list[tuple[int, int]] = []
        cursor = 0
        chunks: list[bytes] = []
        for name in ordered:
            data = module.globals[name]
            align = max(data.align, 1)
            pad = (-cursor) % align
            if pad:
                chunks.append(bytes(pad))
                cursor += pad
            if asan:
                chunks.append(bytes(REDZONE))
                self.global_redzones.append((cursor, REDZONE))
                cursor += REDZONE
            self.global_addrs[name] = config.global_base + cursor
            self.global_objects.append((cursor, data.size, name))
            chunks.append(data.init if data.init is not None else bytes(data.size))
            cursor += data.size
        if asan:
            chunks.append(bytes(REDZONE))
            self.global_redzones.append((cursor, REDZONE))
            cursor += REDZONE
        image = bytearray(b"".join(chunks))
        # Apply relocations now that addresses are known.
        for name in ordered:
            data = module.globals[name]
            base_offset = self.global_addrs[name] - config.global_base
            for offset, symbol in data.relocations:
                target = self.global_addrs[symbol]
                image[base_offset + offset : base_offset + offset + 8] = target.to_bytes(
                    8, "little"
                )
        self.global_image = bytes(image)
        self.globals_size = len(image)
        # ---- frame layouts ----
        self.frames: dict[str, FrameLayout] = {}
        for func in module.functions.values():
            self.frames[func.name] = self._layout_frame(func, config, asan)
        # ---- coverage label ids ----
        self.label_ids: dict[tuple[str, str], int] = {}
        for func in module.functions.values():
            for label in func.blocks:
                key = (func.name, label)
                self.label_ids[key] = _stable_hash(f"{func.name}:{label}")

    def _layout_frame(self, func: Function, config: CompilerConfig, asan: bool) -> FrameLayout:
        ordered = order_slots(func.slots, config.stack_slot_order)
        offsets: dict[int, int] = {}
        redzones: list[tuple[int, int]] = []
        objects: list[tuple[int, int, str]] = []
        cursor = 0
        # Under ASan the frame is packed with redzones instead of plain
        # padding — a gap would let small overflows land in unpoisoned
        # bytes, which the real instrumentation never allows.
        gap = 0 if asan else config.stack_gap
        for slot in ordered:
            if asan:
                redzones.append((cursor, REDZONE))
                cursor += REDZONE
            align = max(slot.align, 1)
            cursor += (-cursor) % align
            offsets[slot.index] = cursor
            objects.append((cursor, slot.size, slot.name))
            cursor += slot.size + gap
        if asan:
            redzones.append((cursor, REDZONE))
            cursor += REDZONE
        size = cursor + (-cursor) % 16
        return FrameLayout(size=size, offsets=offsets, redzones=redzones, objects=objects)


def _stable_hash(text: str) -> int:
    value = 2166136261
    for ch in text.encode():
        value = ((value ^ ch) * 16777619) & 0xFFFFFFFF
    return value


@dataclass
class HeapBlock:
    addr: int
    size: int
    live: bool


class Memory:
    """One execution's memory state (segments + allocator + shadows)."""

    def __init__(self, layout: ImageLayout) -> None:
        config = layout.config
        self.layout = layout
        self.config = config
        self.sanitizer = layout.binary.sanitizer
        self._asan = self.sanitizer == "asan"
        self._msan = self.sanitizer == "msan"
        self.globals_base = config.global_base
        self.globals = bytearray(layout.global_image)
        self.stack_base = config.stack_base  # stack occupies [base-size, base)
        self.stack = bytearray([config.uninit_fill]) * STACK_SIZE
        self.heap_base = config.heap_base
        self.heap = bytearray([config.heap_fill]) * HEAP_SIZE
        self.sp = config.stack_base
        # Heap allocator state.
        self._brk = 0  # offset into the heap arena
        self.blocks: dict[int, HeapBlock] = {}
        self._free_lists: dict[int, list[int]] = {}
        # ASan poison intervals (absolute addresses), kept sorted by start.
        self._poison_starts: list[int] = []
        self._poison: list[tuple[int, int, str]] = []  # (start, end, why)
        if self.sanitizer == "asan":
            for offset, length in layout.global_redzones:
                self._add_poison(
                    self.globals_base + offset, length, "global-buffer-overflow"
                )
        # MSan shadow: 1 bit per byte, 1 = initialized.
        if self.sanitizer == "msan":
            self.shadow_globals = bytearray(b"\x01") * len(self.globals)
            self.shadow_stack = bytearray(STACK_SIZE)
            self.shadow_heap = bytearray(HEAP_SIZE)
        else:
            self.shadow_globals = self.shadow_stack = self.shadow_heap = None

    # ------------------------------------------------------------ mapping

    def _locate(self, addr: int, size: int, line: int) -> tuple[bytearray, int]:
        """Map *addr* to (segment, offset) or trap."""
        if 0 <= addr < NULL_PAGE:
            raise MemTrap("segv", addr, line, "null-page access")
        g = addr - self.globals_base
        if 0 <= g and g + size <= len(self.globals):
            return self.globals, g
        s = addr - (self.stack_base - STACK_SIZE)
        if 0 <= s and s + size <= STACK_SIZE:
            return self.stack, s
        h = addr - self.heap_base
        if 0 <= h and h + size <= HEAP_SIZE:
            return self.heap, h
        raise MemTrap("segv", addr, line, "unmapped address")

    def _shadow_for(self, segment: bytearray) -> bytearray | None:
        if not self._msan:
            return None
        if segment is self.globals:
            return self.shadow_globals
        if segment is self.stack:
            return self.shadow_stack
        return self.shadow_heap

    # ------------------------------------------------------------ raw access

    def read(self, addr: int, size: int, line: int = 0) -> bytes:
        self._check_asan(addr, size, line, write=False)
        segment, offset = self._locate(addr, size, line)
        return bytes(segment[offset : offset + size])

    def write(self, addr: int, data: bytes, line: int = 0) -> None:
        self._check_asan(addr, len(data), line, write=True)
        segment, offset = self._locate(addr, len(data), line)
        segment[offset : offset + len(data)] = data
        if self._msan:
            shadow = self._shadow_for(segment)
            if shadow is not None:
                shadow[offset : offset + len(data)] = b"\x01" * len(data)

    def is_initialized(self, addr: int, size: int) -> bool:
        """MSan query: are all *size* bytes at *addr* initialized?"""
        if self.sanitizer != "msan":
            return True
        segment, offset = self._locate(addr, size, 0)
        shadow = self._shadow_for(segment)
        assert shadow is not None
        return all(shadow[offset : offset + size])

    def mark_initialized(self, addr: int, size: int, value: bool = True) -> None:
        if self.sanitizer != "msan":
            return
        segment, offset = self._locate(addr, size, 0)
        shadow = self._shadow_for(segment)
        assert shadow is not None
        shadow[offset : offset + size] = (b"\x01" if value else b"\x00") * size

    def copy_shadow(self, dst: int, src: int, size: int) -> None:
        if self.sanitizer != "msan" or size <= 0:
            return
        src_seg, src_off = self._locate(src, size, 0)
        dst_seg, dst_off = self._locate(dst, size, 0)
        src_shadow = self._shadow_for(src_seg)
        dst_shadow = self._shadow_for(dst_seg)
        assert src_shadow is not None and dst_shadow is not None
        dst_shadow[dst_off : dst_off + size] = src_shadow[src_off : src_off + size]

    # -------------------------------------------------------------- typed access

    def read_scalar(self, addr: int, value_type: Type, line: int = 0):
        raw = self.read(addr, max(value_type.size(), 1), line)
        if isinstance(value_type, FloatType):
            return struct.unpack("<f" if value_type.bits == 32 else "<d", raw)[0]
        assert isinstance(value_type, IntType)
        return value_type.wrap(int.from_bytes(raw, "little"))

    def write_scalar(self, addr: int, value, value_type: Type, line: int = 0) -> None:
        if isinstance(value_type, FloatType):
            fmt = "<f" if value_type.bits == 32 else "<d"
            try:
                raw = struct.pack(fmt, float(value))
            except OverflowError:
                raw = struct.pack(fmt, float("inf") if value > 0 else float("-inf"))
        else:
            assert isinstance(value_type, IntType)
            raw = (int(value) & ((1 << value_type.bits) - 1)).to_bytes(
                value_type.size(), "little"
            )
        self.write(addr, raw, line)

    def read_cstring(self, addr: int, line: int = 0, limit: int = 1 << 16) -> bytes:
        out = bytearray()
        for i in range(limit):
            byte = self.read(addr + i, 1, line)
            if byte == b"\0":
                return bytes(out)
            out += byte
        return bytes(out)

    # ------------------------------------------------------------------ stack

    def push_frame(self, func_name: str, line: int = 0) -> tuple[int, FrameLayout]:
        frame = self.layout.frames[func_name]
        self.sp -= frame.size
        if self.sp < self.stack_base - STACK_SIZE:
            raise MemTrap("segv", self.sp, line, "stack overflow")
        base = self.sp
        if self.sanitizer == "asan":
            for offset, length in frame.redzones:
                self._add_poison(base + offset, length, "stack-buffer-overflow")
        return base, frame

    def pop_frame(self, base: int, frame: FrameLayout) -> None:
        if self.sanitizer == "asan":
            for offset, length in frame.redzones:
                self._remove_poison(base + offset)
        if self.sanitizer == "msan":
            # Returning frees the frame: its bytes become uninitialized again.
            offset = base - (self.stack_base - STACK_SIZE)
            self.shadow_stack[offset : offset + frame.size] = bytes(frame.size)
        self.sp = base + frame.size

    # ------------------------------------------------------------------- heap

    def malloc(self, size: int, line: int = 0, zero: bool = False) -> int:
        size = max(int(size), 1)
        if size > HEAP_SIZE:
            return 0
        rounded = (size + 15) // 16 * 16
        addr = 0
        if self.config.heap_reuse and self.sanitizer != "asan":
            free_list = self._free_lists.get(rounded)
            if free_list:
                addr = free_list.pop()
        if addr == 0:
            pad = REDZONE if self.sanitizer == "asan" else self.config.heap_gap
            start = self._brk + pad
            end = start + rounded + (REDZONE if self.sanitizer == "asan" else 0)
            if end > HEAP_SIZE:
                return 0
            addr = self.heap_base + start
            self._brk = end
            if self.sanitizer == "asan":
                self._add_poison(addr - REDZONE, REDZONE, "heap-buffer-overflow")
                # Poison the rounding slack too (ASan's 8-byte granule
                # partials): p[size] must fault even inside the granule.
                self._add_poison(
                    addr + size, rounded - size + REDZONE, "heap-buffer-overflow"
                )
        block = self.blocks.get(addr)
        if block is not None:
            block.live = True
            block.size = size
        else:
            self.blocks[addr] = HeapBlock(addr, size, live=True)
        offset = addr - self.heap_base
        if zero:
            self.heap[offset : offset + size] = bytes(size)
        if self.sanitizer == "asan":
            self._remove_poison(addr)  # un-poison if this block was quarantined
        if self.sanitizer == "msan":
            self.shadow_heap[offset : offset + size] = (
                b"\x01" * size if zero else bytes(size)
            )
        return addr

    def free(self, addr: int, line: int = 0) -> None:
        if addr == 0:
            return  # free(NULL) is a no-op
        block = self.blocks.get(addr)
        if block is None:
            # Not a heap block: free() of stack/global memory (CWE-590).
            if self.sanitizer == "asan":
                raise SanitizerStop("bad-free", line, f"0x{addr:x} not heap-allocated")
            if self.config.free_strict:
                raise MemTrap("abort", addr, line, "invalid free")
            return
        if not block.live:
            # Double free (CWE-415).
            if self.sanitizer == "asan":
                raise SanitizerStop("double-free", line, f"0x{addr:x}")
            if self.config.free_strict:
                raise MemTrap("abort", addr, line, "double free")
            # Lenient allocator: the block re-enters the free list a second
            # time, so two future mallocs will alias — silent corruption.
        block.live = False
        rounded = (block.size + 15) // 16 * 16
        if self.sanitizer == "asan":
            # Quarantine: poison the block and never reuse it.
            self._add_poison(addr, rounded, "heap-use-after-free")
            return
        if self.config.free_poison is not None:
            offset = addr - self.heap_base
            self.heap[offset : offset + block.size] = bytes(
                [self.config.free_poison]
            ) * block.size
        if self.config.heap_reuse:
            self._free_lists.setdefault(rounded, []).append(addr)

    def block_containing(self, addr: int) -> HeapBlock | None:
        for block in self.blocks.values():
            if block.addr <= addr < block.addr + block.size:
                return block
        return None

    # ------------------------------------------------------------------- ASan

    def _add_poison(self, start: int, length: int, why: str) -> None:
        index = bisect.bisect_left(self._poison_starts, start)
        self._poison_starts.insert(index, start)
        self._poison.insert(index, (start, start + length, why))

    def _remove_poison(self, start: int) -> None:
        index = bisect.bisect_left(self._poison_starts, start)
        if index < len(self._poison_starts) and self._poison_starts[index] == start:
            self._poison_starts.pop(index)
            self._poison.pop(index)

    def _check_asan(self, addr: int, size: int, line: int, write: bool) -> None:
        if not self._asan or not self._poison:
            return
        index = bisect.bisect_right(self._poison_starts, addr + size - 1)
        if index == 0:
            return
        start, end, why = self._poison[index - 1]
        if addr < end and addr + size > start:
            raise SanitizerStop(why, line, f"{'write' if write else 'read'} at 0x{addr:x}")
