"""Builtin (libc-analog) implementations, including printf formatting.

Behaviors C leaves implementation-defined are driven by the binary's
compiler configuration: ``memcpy`` direction on (undefined) overlapping
copies, allocator reuse/poisoning via :class:`~repro.vm.memory.Memory`, and
``pow``'s polynomial path versus the ``exp2`` libcall the clang-O3 pipeline
substitutes (float-imprecision Misc divergences, RQ2).
"""

from __future__ import annotations

import math

from repro.errors import VMError
from repro.ir.instructions import CallBuiltin
from repro.minic.types import FloatType, IntType, PointerType
from repro.vm.memory import MemTrap


def call_builtin(machine, frame, instr: CallBuiltin):
    """Execute a builtin; returns (result value, msan taint of result)."""
    handler = _BUILTINS.get(instr.name)
    if handler is None:
        raise VMError(f"unknown builtin {instr.name!r}")
    args = [machine._value(frame, a) for a in instr.args]
    taints = [machine._taint(frame, a) for a in instr.args]
    return handler(machine, instr, args, taints)


# --------------------------------------------------------------------- stdio


def _printf_common(machine, instr, args, taints, to_stderr: bool):
    fmt = machine.memory.read_cstring(int(args[0]), instr.line)
    rendered = format_printf(machine, fmt, args[1:], instr.arg_types[1:], instr.line)
    if to_stderr:
        machine.emit_stderr(rendered)
    else:
        machine.emit_stdout(rendered)
    return len(rendered), False


def _bi_printf(machine, instr, args, taints):
    return _printf_common(machine, instr, args, taints, to_stderr=False)


def _bi_eprintf(machine, instr, args, taints):
    return _printf_common(machine, instr, args, taints, to_stderr=True)


def _bi_putchar(machine, instr, args, taints):
    machine.emit_stdout(bytes([int(args[0]) & 0xFF]))
    return int(args[0]) & 0xFF, False


def _bi_puts(machine, instr, args, taints):
    text = machine.memory.read_cstring(int(args[0]), instr.line)
    machine.emit_stdout(text + b"\n")
    return len(text) + 1, False


def format_printf(machine, fmt: bytes, args: list, arg_types: list, line: int) -> bytes:
    """A faithful subset of printf: %d %i %u %x %X %o %c %s %p %f %e %g %%
    with '-'/'0' flags, width, precision, and h/l length modifiers."""
    out = bytearray()
    arg_index = 0
    i = 0
    n = len(fmt)

    def next_arg():
        nonlocal arg_index
        if arg_index >= len(args):
            # Too few printf arguments: reads garbage (UB); use the
            # implementation's register junk for determinism.
            value = machine.config.missing_arg_value
            arg_index += 1
            return value, None
        value = args[arg_index]
        value_type = arg_types[arg_index] if arg_index < len(arg_types) else None
        arg_index += 1
        return value, value_type

    while i < n:
        ch = fmt[i]
        if ch != 0x25:  # '%'
            out.append(ch)
            i += 1
            continue
        i += 1
        if i >= n:
            break
        # Parse flags, width, precision, length.
        flags = ""
        while i < n and chr(fmt[i]) in "-0+ #":
            flags += chr(fmt[i])
            i += 1
        width = ""
        while i < n and chr(fmt[i]).isdigit():
            width += chr(fmt[i])
            i += 1
        precision = ""
        if i < n and fmt[i] == 0x2E:  # '.'
            i += 1
            precision = ""
            while i < n and chr(fmt[i]).isdigit():
                precision += chr(fmt[i])
                i += 1
        length = ""
        while i < n and chr(fmt[i]) in "hlz":
            length += chr(fmt[i])
            i += 1
        if i >= n:
            break
        conv = chr(fmt[i])
        i += 1
        if conv == "%":
            out.append(0x25)
            continue
        value, value_type = next_arg()
        out += _format_one(machine, conv, flags, width, precision, length, value, value_type, line)
    return bytes(out)


def _int_bits(length: str, value_type) -> int:
    if "ll" in length or "l" in length or "z" in length:
        return 64
    if isinstance(value_type, IntType):
        return max(value_type.bits, 32)
    if isinstance(value_type, PointerType):
        return 64
    return 32


def _format_one(
    machine, conv, flags, width, precision, length, value, value_type, line
) -> bytes:
    if conv in "di":
        bits = _int_bits(length, value_type)
        text = str(IntType(bits, True).wrap(int(value)))
    elif conv == "u":
        bits = _int_bits(length, value_type)
        text = str(int(value) & ((1 << bits) - 1))
    elif conv in "xXo":
        bits = _int_bits(length, value_type)
        magnitude = int(value) & ((1 << bits) - 1)
        if conv == "o":
            text = format(magnitude, "o")
        else:
            text = format(magnitude, conv.lower())
            if conv == "X":
                text = text.upper()
    elif conv == "c":
        text = chr(int(value) & 0xFF)
    elif conv == "s":
        raw = machine.memory.read_cstring(int(value), line)
        text = raw.decode("latin-1")
        if precision:
            text = text[: int(precision)]
    elif conv == "p":
        # Address rendering is pure layout: a classic Misc divergence.
        text = f"0x{int(value) & ((1 << 64) - 1):x}"
    elif conv in "feEgG":
        number = float(value)
        digits = int(precision) if precision else 6
        if conv == "f":
            text = f"{number:.{digits}f}"
        elif conv in "eE":
            text = f"{number:.{digits}e}"
            if conv == "E":
                text = text.upper()
        else:
            text = f"{number:.{digits if precision else 6}g}"
    else:
        return b"%" + conv.encode()
    if width:
        pad = int(width)
        if "-" in flags:
            text = text.ljust(pad)
        elif "0" in flags and conv not in "sc":
            sign = ""
            if text.startswith("-"):
                sign, text = "-", text[1:]
            text = sign + text.rjust(pad - len(sign), "0")
        else:
            text = text.rjust(pad)
    return text.encode("latin-1")


# ------------------------------------------------------------------- process


def _bi_exit(machine, instr, args, taints):
    from repro.vm.machine import _Exit

    raise _Exit(int(args[0]))


def _bi_abort(machine, instr, args, taints):
    raise MemTrap("abort", 0, instr.line, "abort()")


# ---------------------------------------------------------------------- heap


def _bi_malloc(machine, instr, args, taints):
    return machine.memory.malloc(int(args[0]), instr.line), False


def _bi_calloc(machine, instr, args, taints):
    count, size = int(args[0]), int(args[1])
    total = count * size  # (deliberately unchecked: CWE-680 feeder)
    return machine.memory.malloc(total, instr.line, zero=True), False


def _bi_free(machine, instr, args, taints):
    machine.memory.free(int(args[0]), instr.line)
    return 0, False


# ------------------------------------------------------------------- strings


def _bi_memset(machine, instr, args, taints):
    dst, value, count = int(args[0]), int(args[1]) & 0xFF, int(args[2])
    if count < 0 or count > (1 << 22):
        raise MemTrap("segv", dst, instr.line, "memset size out of range")
    machine.fuel -= count
    machine.memory.write(dst, bytes([value]) * count, instr.line)
    return dst, False


def _bi_memcpy(machine, instr, args, taints):
    dst, src, count = int(args[0]), int(args[1]), int(args[2])
    if count < 0 or count > (1 << 22):
        raise MemTrap("segv", dst, instr.line, "memcpy size out of range")
    machine.fuel -= count
    memory = machine.memory
    if (
        machine.sanitizer == "asan"
        and count > 0
        and (dst < src + count and src < dst + count)
        and dst != src
    ):
        # ASan's interceptor rejects overlapping memcpy ranges (CWE-475).
        from repro.vm.memory import SanitizerStop

        raise SanitizerStop("memcpy-param-overlap", instr.line, f"[{src:#x},{dst:#x})+{count}")
    # Overlapping memcpy is UB; the copy direction decides the outcome and
    # differs across implementations.
    indices = range(count - 1, -1, -1) if machine.config.memcpy_backward else range(count)
    # Fast path for the common non-overlapping case.
    if dst + count <= src or src + count <= dst:
        data = memory.read(src, count, instr.line) if count else b""
        memory.write(dst, data, instr.line)
    else:
        for offset in indices:
            memory.write(dst + offset, memory.read(src + offset, 1, instr.line), instr.line)
    memory.copy_shadow(dst, src, count)
    return dst, False


def _bi_memmove(machine, instr, args, taints):
    """memmove: overlap-safe by specification — no divergence here."""
    dst, src, count = int(args[0]), int(args[1]), int(args[2])
    if count < 0 or count > (1 << 22):
        raise MemTrap("segv", dst, instr.line, "memmove size out of range")
    machine.fuel -= count
    data = machine.memory.read(src, count, instr.line) if count else b""
    machine.memory.write(dst, data, instr.line)
    machine.memory.copy_shadow(dst, src, count)
    return dst, False


def _bi_memcmp(machine, instr, args, taints):
    count = int(args[2])
    if count < 0 or count > (1 << 22):
        raise MemTrap("segv", int(args[0]), instr.line, "memcmp size out of range")
    a = machine.memory.read(int(args[0]), count, instr.line) if count else b""
    b = machine.memory.read(int(args[1]), count, instr.line) if count else b""
    return (a > b) - (a < b), False


def _bi_realloc(machine, instr, args, taints):
    old, size = int(args[0]), int(args[1])
    memory = machine.memory
    if old == 0:
        return memory.malloc(size, instr.line), False
    if size == 0:
        memory.free(old, instr.line)
        return 0, False
    block = memory.blocks.get(old)
    new = memory.malloc(size, instr.line)
    if new != 0 and block is not None:
        keep = min(block.size, size)
        if new != old:
            data = memory.read(old, keep, instr.line)
            memory.write(new, data, instr.line)
            memory.copy_shadow(new, old, keep)
            memory.free(old, instr.line)
    return new, False


def _bi_strcat(machine, instr, args, taints):
    dst, src = int(args[0]), int(args[1])
    offset = len(machine.memory.read_cstring(dst, instr.line))
    data = machine.memory.read_cstring(src, instr.line) + b"\0"
    machine.fuel -= offset + len(data)
    for i, byte in enumerate(data):
        machine.memory.write(dst + offset + i, bytes([byte]), instr.line)
    return dst, False


def _bi_strlen(machine, instr, args, taints):
    return len(machine.memory.read_cstring(int(args[0]), instr.line)), False


def _bi_strcpy(machine, instr, args, taints):
    dst, src = int(args[0]), int(args[1])
    data = machine.memory.read_cstring(src, instr.line) + b"\0"
    machine.fuel -= len(data)
    # Byte-wise so a too-small destination traps/corrupts naturally.
    for offset, byte in enumerate(data):
        machine.memory.write(dst + offset, bytes([byte]), instr.line)
    machine.memory.copy_shadow(dst, src, len(data))
    return dst, False


def _bi_strncpy(machine, instr, args, taints):
    dst, src, count = int(args[0]), int(args[1]), int(args[2])
    data = machine.memory.read_cstring(src, instr.line)[:count]
    data = data.ljust(count, b"\0")
    machine.fuel -= count
    machine.memory.write(dst, data, instr.line)
    return dst, False


def _bi_strcmp(machine, instr, args, taints):
    a = machine.memory.read_cstring(int(args[0]), instr.line)
    b = machine.memory.read_cstring(int(args[1]), instr.line)
    return (a > b) - (a < b), False


def _bi_strncmp(machine, instr, args, taints):
    count = int(args[2])
    a = machine.memory.read_cstring(int(args[0]), instr.line)[:count]
    b = machine.memory.read_cstring(int(args[1]), instr.line)[:count]
    return (a > b) - (a < b), False


def _bi_atoi(machine, instr, args, taints):
    text = machine.memory.read_cstring(int(args[0]), instr.line).decode("latin-1").strip()
    sign = 1
    index = 0
    if index < len(text) and text[index] in "+-":
        sign = -1 if text[index] == "-" else 1
        index += 1
    digits = ""
    while index < len(text) and text[index].isdigit():
        digits += text[index]
        index += 1
    value = sign * int(digits) if digits else 0
    return IntType(32, True).wrap(value), False


# ----------------------------------------------------------------------- math


def _bi_abs(machine, instr, args, taints):
    return IntType(32, True).wrap(abs(int(args[0]))), taints[0] if taints else False


def _bi_labs(machine, instr, args, taints):
    return IntType(64, True).wrap(abs(int(args[0]))), taints[0] if taints else False


def _bi_pow(machine, instr, args, taints):
    x, y = float(args[0]), float(args[1])
    # Computed via exp/log (as libm does), which disagrees with the exp2
    # substitution in the last bits — the paper's floating-point Misc case.
    if x > 0.0 and x != 1.0:
        return math.exp(y * math.log(x)), False
    try:
        return math.pow(x, y), False
    except ValueError:
        return math.nan, False


def _bi_exp2(machine, instr, args, taints):
    try:
        return 2.0 ** float(args[0]), False
    except OverflowError:
        return math.inf, False


def _bi_sqrt(machine, instr, args, taints):
    x = float(args[0])
    return math.sqrt(x) if x >= 0 else math.nan, False


def _bi_fabs(machine, instr, args, taints):
    return abs(float(args[0])), False


# ----------------------------------------------------------------- fuzz input


def _bi_read_input(machine, instr, args, taints):
    dst, want = int(args[0]), int(args[1])
    if want < 0:
        return -1, False
    available = machine.input[machine.input_cursor : machine.input_cursor + want]
    machine.input_cursor += len(available)
    if available:
        machine.fuel -= len(available)
        machine.memory.write(dst, available, instr.line)
    return len(available), False


def _bi_input_size(machine, instr, args, taints):
    return len(machine.input), False


def _bi_input_byte(machine, instr, args, taints):
    index = int(args[0])
    if 0 <= index < len(machine.input):
        return machine.input[index], False
    return -1, False


_BUILTINS = {
    "printf": _bi_printf,
    "eprintf": _bi_eprintf,
    "putchar": _bi_putchar,
    "puts": _bi_puts,
    "exit": _bi_exit,
    "abort": _bi_abort,
    "malloc": _bi_malloc,
    "calloc": _bi_calloc,
    "free": _bi_free,
    "memset": _bi_memset,
    "memcpy": _bi_memcpy,
    "memmove": _bi_memmove,
    "memcmp": _bi_memcmp,
    "realloc": _bi_realloc,
    "strcat": _bi_strcat,
    "strlen": _bi_strlen,
    "strcpy": _bi_strcpy,
    "strncpy": _bi_strncpy,
    "strcmp": _bi_strcmp,
    "strncmp": _bi_strncmp,
    "atoi": _bi_atoi,
    "abs": _bi_abs,
    "labs": _bi_labs,
    "pow": _bi_pow,
    "exp2": _bi_exp2,
    "sqrt": _bi_sqrt,
    "fabs": _bi_fabs,
    "read_input": _bi_read_input,
    "input_size": _bi_input_size,
    "input_byte": _bi_input_byte,
}
