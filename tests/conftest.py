"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.compiler import compile_source, implementation
from repro.compiler.implementations import DEFAULT_IMPLEMENTATIONS
from repro.vm import run_binary


def run_source(source: str, impl: str = "gcc-O0", input_bytes: bytes = b"", fuel: int = 500_000):
    """Compile *source* for *impl* and execute it once."""
    binary = compile_source(source, implementation(impl))
    return run_binary(binary, input_bytes, fuel=fuel)


def stdout_of(source: str, impl: str = "gcc-O0", input_bytes: bytes = b"") -> bytes:
    result = run_source(source, impl, input_bytes)
    assert result.status.value == "ok", (result.status, result.trap, result.stderr)
    return result.stdout


def outputs_across_impls(source: str, input_bytes: bytes = b"") -> dict[str, tuple]:
    """Map implementation name -> (stdout, exit_code, status) for all ten."""
    out = {}
    for config in DEFAULT_IMPLEMENTATIONS:
        result = run_binary(compile_source(source, config), input_bytes)
        out[config.name] = (result.stdout, result.exit_code, result.status.value)
    return out


@pytest.fixture
def run():
    return run_source


@pytest.fixture
def stdout():
    return stdout_of
