int g1 = 256;
int g2 = 42;
int g3 = -81;

int s34probe(int x) {
    if ((x + 5) > x) {
        return 1;
    }
    return 0;
}

int fn0(int a4) {
    if (((37 | a4) <= (input_byte(7) & 63))) {
        if ((((input_byte(0) & 31) >> 0) != 70)) {
            g3 -= g3;
            int v5 = ((a4 + g2) ^ (95 + 77));
        } else {
            g3 -= ((0 * a4) ^ 87);
            int v6 = ((a4 * 32) * 94);
            printf("p %d\n", 6);
            printf("p %d\n", ((v6 + -76) % 11));
        }
        for (int i7 = 0; i7 < 5; i7 = i7 + 1) {
            g1 ^= (a4 | 16);
            int v8 = g2;
        }
        printf("p %d\n", (2 | (g3 - 22)));
        printf("p %d\n", ((38 | -21) >> 5));
        a4 ^= g3;
    }
    g1 ^= ((-21 ^ g2) | 47);
    printf("p %d\n", -32);
    return ((21 | g3) % 8);
}

int fn1(int a9, int a10) {
    if (((g2 << 0) == a9)) {
        for (int i11 = 0; i11 < 2; i11 = i11 + 1) {
            int v12 = g2;
            g1 ^= 15;
        }
        for (int i13 = 0; i13 < 4; i13 = i13 + 1) {
            int v14 = g1;
            g3 ^= ((73 * g2) * -57);
            printf("p %d\n", (37 ^ (g3 % 30)));
            g2 -= ((v14 ^ 16) & g2);
            int v15 = ((v14 & -31) | ((input_byte(2) & 15) ^ a10));
        }
    } else {
        if (((a10 % 28) == g2)) {
            int v16 = ((93 * g2) | a9);
            int c17 = fn0((g3 << 3));
            int c18 = fn0((2 + (input_byte(4) & 31)));
        }
        int c19 = fn0(a10);
    }
    int v20 = 16;
    int c21 = fn0((-69 | g3));
    g3 ^= g3;
    g2 += (42 * (g2 - 255));
    int s33g = 2147483644;
    if ((s33g + 9) > s33g) {
        printf("s33 guard 1\n");
    } else {
        printf("s33 guard 0\n");
    }
    return ((a9 % 27) * (-4 & -65));
}

int fn2(int a22, int a23, int a24) {
    int s34v = 2147483643;
    printf("s34 %d\n", s34probe(s34v));
    int s32u;
    int s32m = 17;
    if ((s32u & 255) < 158) {
        printf("s32 lo %d\n", (s32u + s32m));
    } else {
        printf("s32 hi\n");
    }
    int c25 = fn0(a22);
    int c26 = fn0(a24);
    return -3;
}

int main(void) {
    int r27 = fn0(256);
    printf("fn0 %d\n", r27);
    int r28 = fn1(5, 16);
    printf("fn1 %d\n", r28);
    int r29 = fn2(91, -4, 4);
    printf("fn2 %d\n", r29);
    r28 ^= r29;
    r27 -= ((g3 + -62) + (g1 << 0));
    int v30 = ((7 * g2) << 5);
    int v31 = (56 + (-75 % 7));
    return 0;
}
