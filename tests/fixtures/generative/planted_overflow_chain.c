int g1 = -31;
int g2 = -85;

int s37probe(int x) {
    if ((x + 4) > x) {
        return 1;
    }
    return 0;
}

int fn0(int a3, int a4, int a5) {
    if (((g1 << 3) >= (16 + (input_byte(4) & 15)))) {
        printf("p %d\n", ((1000 % 24) % 29));
        a3 -= g1;
        int v6 = g2;
        if ((a4 != ((input_byte(0) & 31) & v6))) {
            int v7 = g2;
            int v8 = (v6 & a3);
            printf("p %d\n", ((a4 >> 6) ^ (v7 - -46)));
        }
    }
    if (((-13 * a5) != (a4 % 10))) {
        a3 += (86 + (a3 ^ g2));
        if (((-66 << 6) > a3)) {
            printf("p %d\n", g2);
            g2 = ((a3 % 5) >> 7);
            printf("p %d\n", (a5 % 24));
        }
        if (((a3 + a4) == a5)) {
            int v9 = 2;
            printf("p %d\n", (a3 % 21));
            printf("p %d\n", ((g1 - a4) * g1));
            v9 += ((a3 + a5) * 71);
            printf("p %d\n", (60 * (a3 | a4)));
        } else {
            int v10 = a5;
            int v11 = (input_byte(6) & 63);
            g2 = 1000;
        }
        for (int i12 = 0; i12 < 4; i12 = i12 + 1) {
            printf("p %d\n", 8);
            int v13 = -46;
            printf("p %d\n", ((-77 | a5) + (a5 << 4)));
            g2 *= ((a5 % 10) ^ 8);
        }
    } else {
        if ((-30 >= (96 & g2))) {
            g2 = a4;
            a3 = 92;
            printf("p %d\n", (((input_byte(2) & 15) & 256) % 30));
            int v14 = ((-40 + g2) % 17);
            g1 = ((v14 ^ (input_byte(3) & 63)) | (g1 % 24));
        }
        if (((-46 & a3) <= (-38 & 51))) {
            a4 *= (g2 * (33 & a5));
            printf("p %d\n", (a4 >> 5));
            printf("p %d\n", (((input_byte(4) & 31) + 1000) | g2));
            printf("p %d\n", (a4 * (a4 - a4)));
        }
    }
    for (int i15 = 0; i15 < 4; i15 = i15 + 1) {
        for (int i16 = 0; i16 < 2; i16 = i16 + 1) {
            int v17 = ((-13 >> 7) + -62);
            int v18 = i15;
            printf("p %d\n", (63 + (62 & g2)));
            int v19 = i15;
        }
        if ((((input_byte(3) & 31) + i15) != (46 >> 6))) {
            printf("p %d\n", -84);
            printf("p %d\n", (((input_byte(2) & 31) % 24) * g2));
        } else {
            a5 = ((-59 - g1) - (-93 | i15));
            printf("p %d\n", ((i15 & -83) - (a4 % 28)));
            printf("p %d\n", g2);
            int v20 = (g2 << 1);
            int v21 = g2;
        }
        printf("p %d\n", g1);
    }
    printf("p %d\n", (21 % 19));
    return (a4 & (a3 * a5));
}

int fn1(int a22, int a23, int a24) {
    int s35g = 2147483645;
    if ((s35g + 6) > s35g) {
        printf("s35 guard 1\n");
    } else {
        printf("s35 guard 0\n");
    }
    int v25 = a24;
    int v26 = (40 + (g1 | v25));
    if (((-32 - g1) > (g2 ^ g2))) {
        int v27 = a22;
        for (int i28 = 0; i28 < 3; i28 = i28 + 1) {
            v27 -= ((a23 + v25) * -85);
            a23 -= (v26 - (-62 << 1));
            printf("p %d\n", v27);
            int v29 = (((input_byte(6) & 63) << 3) - (g1 % 20));
        }
    }
    printf("p %d\n", a24);
    for (int i30 = 0; i30 < 5; i30 = i30 + 1) {
        printf("p %d\n", g1);
        int v31 = ((i30 << 7) ^ a24);
    }
    return -69;
}

int main(void) {
    int r32 = fn0(8, 26, -69);
    printf("fn0 %d\n", r32);
    int s36g = 2147483643;
    if ((s36g + 8) > s36g) {
        printf("s36 guard 1\n");
    } else {
        printf("s36 guard 0\n");
    }
    int r33 = fn1(80, -24, 1000);
    printf("fn1 %d\n", r33);
    int c34 = fn0((g2 * g1), r33, (-57 + 72));
    printf("p %d\n", ((55 | r33) & (c34 * (input_byte(7) & 15))));
    printf("p %d\n", (g1 >> 5));
    printf("p %d\n", g2);
    int s37v = 2147483647;
    printf("s37 %d\n", s37probe(s37v));
    return 0;
}
