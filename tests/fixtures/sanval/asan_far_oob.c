int main(void) {
    char a[8];
    char z[64];
    int i;
    for (i = 0; i < 64; i = i + 1) {
        z[i] = 7;
    }
    a[28] = 1;
    printf("%d\n", z[0]);
    return 0;
}
