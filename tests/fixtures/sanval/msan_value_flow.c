int main(void) {
    int x;
    printf("%d\n", x);
    return 0;
}
