int main(void) {
    int x;
    x = 3;
    printf("%d\n", x);
    return 0;
}
