int main(void) {
    int x = 2147483647;
    printf("%d\n", x + 1);
    return 0;
}
