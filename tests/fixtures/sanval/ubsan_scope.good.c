int helper(int a, int b) {
    return a - a;
}

int main(void) {
    printf("%d\n", helper(1));
    return 0;
}
