"""Corpus salvage (``repro bank fsck``) tests.

Banks are crafted by hand here — fsck validates metadata consistency
(keys, program files, manifest shape), not program semantics, so no
engine run is needed.  Each test damages a healthy bank in one specific
way, asserts strict loading rejects it (where it should), and asserts
fsck moves exactly the broken parts into the ``corrupt/`` sidecar and
leaves a bank that loads cleanly.
"""

from __future__ import annotations

import json

import pytest

from repro.campaigns.fsck import CORRUPT_DIR, LEDGER_FILE, fsck_bank
from repro.cli import main as cli_main
from repro.errors import ReproError
from repro.generative.bank import BankedRepro, CorpusBank, corpus_key
from repro.sanval.bank import BankedFinding, FindingBank, finding_key

pytestmark = pytest.mark.faults

PARTITION = (("gcc-O0", "clang-O0"), ("gcc-O2",))


def _make_repro(tag: str) -> BankedRepro:
    checkers = (f"UninitLoad-{tag}",)
    key = corpus_key(set(checkers), "baseline", PARTITION)
    return BankedRepro(
        key=key,
        seed=7,
        profile="ub",
        generator_version=1,
        ub_shapes=("uninit_load",),
        source=f"int main(void) {{ return 0; }} /* {tag} */\n",
        good_source=f"int main(void) {{ return 0; }} /* good {tag} */\n",
        inputs=[b""],
        checkers=checkers,
        fingerprints=(f"fp-{tag}",),
        group="uninit",
        partition=PARTITION,
        impl_ref="gcc-O0",
        impl_target="gcc-O2",
    )


def _make_finding(tag: str) -> BankedFinding:
    checkers = (f"OOBRead-{tag}",)
    fingerprints = (f"ofp-{tag}",)
    key = finding_key(
        "asan", "FN", ("heap-buffer-overflow",), checkers, fingerprints, PARTITION
    )
    return BankedFinding(
        key=key,
        sanitizer="asan",
        outcome="FN",
        seed=f"fix-{tag}",
        variant="outline",
        kinds=("heap-buffer-overflow",),
        checkers=checkers,
        oracle_fingerprints=fingerprints,
        partition=PARTITION,
        impl_ref="gcc-O0",
        impl_target="gcc-O2",
        source=f"int main(void) {{ return 0; }} /* {tag} */\n",
        inputs=[b""],
    )


@pytest.fixture
def gen_bank(tmp_path):
    root = tmp_path / "gen-bank"
    bank = CorpusBank(root)
    for tag in ("alpha", "beta", "gamma"):
        assert bank.add(_make_repro(tag))
    return root


@pytest.fixture
def san_bank(tmp_path):
    root = tmp_path / "san-bank"
    bank = FindingBank(root)
    for tag in ("alpha", "beta"):
        assert bank.add(_make_finding(tag))
    return root


def _manifest(root) -> dict:
    return json.loads((root / "manifest.json").read_text())


def _write_manifest(root, data) -> None:
    (root / "manifest.json").write_text(json.dumps(data))


def test_clean_bank_passes_untouched(gen_bank):
    report = fsck_bank(gen_bank)
    assert report.clean
    assert report.kind == "generative"
    assert (report.kept, report.total_entries) == (3, 3)
    assert not (gen_bank / CORRUPT_DIR).exists()
    assert len(CorpusBank(gen_bank)) == 3


def test_missing_program_is_quarantined(gen_bank):
    victim = CorpusBank(gen_bank).keys()[0]
    (gen_bank / "programs" / f"{victim}.c").unlink()
    with pytest.raises(ReproError, match="fsck"):
        CorpusBank(gen_bank)
    report = fsck_bank(gen_bank)
    assert report.kept == 2
    assert [f.key for f in report.quarantined] == [victim]
    # The surviving twin file travelled into the sidecar too.
    assert (gen_bank / CORRUPT_DIR / "programs" / f"{victim}.good.c").exists()
    bank = CorpusBank(gen_bank)
    assert victim not in bank and len(bank) == 2
    ledger = json.loads((gen_bank / CORRUPT_DIR / LEDGER_FILE).read_text())
    assert ledger["entries"][0]["key"] == victim
    assert "missing or unreadable" in ledger["entries"][0]["reason"]


def test_tampered_metadata_fails_key_recomputation(gen_bank):
    data = _manifest(gen_bank)
    data["repros"][1]["checkers"] = ["SomethingElse"]
    _write_manifest(gen_bank, data)
    report = fsck_bank(gen_bank)
    assert report.kept == 2
    assert "does not match metadata" in report.quarantined[0].reason
    assert len(CorpusBank(gen_bank)) == 2


def test_duplicate_key_keeps_first_occurrence(gen_bank):
    data = _manifest(gen_bank)
    data["repros"].append(dict(data["repros"][0]))
    _write_manifest(gen_bank, data)
    report = fsck_bank(gen_bank)
    assert report.kept == 3
    assert "duplicate key" in report.quarantined[0].reason
    assert len(CorpusBank(gen_bank)) == 3


def test_orphans_and_tmp_leftovers_are_swept(gen_bank):
    (gen_bank / "programs" / "deadbeefdeadbeef.c").write_text("int x;\n")
    (gen_bank / "programs" / "manifest.json.1234.tmp").write_text("{}")
    report = fsck_bank(gen_bank)
    assert report.kept == 3
    assert {f.reason for f in report.quarantined} == {
        "orphaned program file (no manifest entry references it)"
    }
    assert (gen_bank / CORRUPT_DIR / "programs" / "deadbeefdeadbeef.c").exists()
    assert not (gen_bank / "programs" / "manifest.json.1234.tmp").exists()
    assert len(CorpusBank(gen_bank)) == 3


def test_sidecar_never_clobbers_prior_salvage(gen_bank):
    for _ in range(2):
        (gen_bank / "programs" / "deadbeefdeadbeef.c").write_text("int x;\n")
        fsck_bank(gen_bank)
    sidecar = gen_bank / CORRUPT_DIR / "programs"
    assert (sidecar / "deadbeefdeadbeef.c").exists()
    assert (sidecar / "deadbeefdeadbeef.c.1").exists()


def test_unparseable_manifest_is_quarantined_wholesale(gen_bank):
    (gen_bank / "manifest.json").write_text("{ this is not json")
    with pytest.raises(ReproError, match="fsck"):
        CorpusBank(gen_bank)
    report = fsck_bank(gen_bank)
    assert report.manifest_quarantined
    # No new manifest is written: the bank loads empty, the programs
    # stay under corrupt/ for manual recovery.
    assert not (gen_bank / "manifest.json").exists()
    assert len(CorpusBank(gen_bank)) == 0
    assert (gen_bank / CORRUPT_DIR / "manifest.json").exists()


def test_version_mismatch_distrusts_every_entry(gen_bank):
    data = _manifest(gen_bank)
    data["version"] = 99
    _write_manifest(gen_bank, data)
    report = fsck_bank(gen_bank)
    assert report.kept == 0 and len(report.quarantined) == 3
    assert all("version" in f.reason for f in report.quarantined)
    assert len(CorpusBank(gen_bank)) == 0


def test_kind_override_mismatch_quarantines_manifest(gen_bank):
    report = fsck_bank(gen_bank, kind="sancheck")
    assert report.manifest_quarantined
    assert "holds a generative bank" in report.quarantined[0].reason


def test_sanval_bank_salvage(san_bank):
    victim = FindingBank(san_bank).keys()[0]
    (san_bank / "programs" / f"{victim}.c").unlink()
    with pytest.raises(ReproError, match="fsck"):
        FindingBank(san_bank)
    report = fsck_bank(san_bank)
    assert report.kind == "sancheck"
    assert report.kept == 1
    assert len(FindingBank(san_bank)) == 1


def test_not_a_bank_is_refused(tmp_path):
    with pytest.raises(ReproError, match="not a corpus bank"):
        fsck_bank(tmp_path / "nothing-here")


def test_second_pass_over_salvaged_bank_is_clean(gen_bank):
    victim = CorpusBank(gen_bank).keys()[0]
    (gen_bank / "programs" / f"{victim}.c").unlink()
    assert not fsck_bank(gen_bank).clean
    assert fsck_bank(gen_bank).clean


class TestCLI:
    def test_clean_bank_exits_zero(self, gen_bank, capsys):
        assert cli_main(["bank", "fsck", str(gen_bank)]) == 0
        assert "is clean" in capsys.readouterr().out

    def test_salvage_exits_one_and_reports(self, gen_bank, capsys):
        victim = CorpusBank(gen_bank).keys()[0]
        (gen_bank / "programs" / f"{victim}.c").unlink()
        assert cli_main(["bank", "fsck", str(gen_bank)]) == 1
        out = capsys.readouterr().out
        assert "salvaged" in out and victim in out

    def test_json_output(self, gen_bank, capsys):
        victim = CorpusBank(gen_bank).keys()[0]
        (gen_bank / "programs" / f"{victim}.c").unlink()
        assert cli_main(["bank", "fsck", str(gen_bank), "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["kept"] == 2
        assert document["quarantined"][0]["key"] == victim

    def test_not_a_bank_exits_two(self, tmp_path, capsys):
        assert cli_main(["bank", "fsck", str(tmp_path / "void")]) == 2
        capsys.readouterr()
