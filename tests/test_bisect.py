"""Divergence pass-bisection tests (core/bisect.py, CLI, evaluation)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.core.bisect import (
    STATUS_ATTRIBUTED,
    STATUS_BASELINE_DIVERGENT,
    STATUS_NO_DIVERGENCE,
    bisect_diff,
    bisect_divergence,
    choose_bisection_pair,
)
from repro.core.compdiff import CompDiff
from repro.core.localize import divergence_profile
from repro.core.triage import attribute_clusters, triage

pytestmark = pytest.mark.passes

#: Listing-1-style nsw overflow guard: -O0 keeps the guard, exploit_ub
#: folds it away at lowering time under optimizing configs.
GUARD_SOURCE = """
int dump_data(int offset, int len) {
    if (offset + len < offset) {
        printf("overflow guard tripped");
        return -1;
    }
    printf("dumping %d at %d", len, offset);
    return 0;
}

int main(void) {
    int rc = dump_data(2147483547, 101);
    printf(" rc=%d", rc);
    return 0;
}
"""

STABLE_SOURCE = "int main(void){ printf(\"ok\"); return 0; }"


class TestBisectDivergence:
    def test_attributes_guard_fold_to_exploit_ub(self):
        result = bisect_divergence(GUARD_SOURCE, b"", "gcc-O0", "gcc-O2")
        assert result.status == STATUS_ATTRIBUTED
        assert result.culprit.pass_name == "exploit_ub"
        assert result.culprit.scope == "lowering"
        assert result.culprit.position == 1
        assert result.total_applications > 0
        assert "exploit_ub" in result.render()

    def test_binary_search_cost_is_logarithmic(self):
        result = bisect_divergence(GUARD_SOURCE, b"", "gcc-O0", "gcc-O2")
        # full + zero probes + ceil(log2(total)) bisection probes, with slack
        assert result.probes <= 3 + result.total_applications.bit_length()

    def test_no_divergence(self):
        result = bisect_divergence(STABLE_SOURCE, b"", "gcc-O0", "gcc-O2")
        assert result.status == STATUS_NO_DIVERGENCE
        assert result.culprit is None
        assert not result.attributed

    def test_baseline_divergent_when_layouts_differ(self):
        # Cross-family O0 pair: no passes anywhere, any divergence is
        # front-end/layout.  gcc and clang evaluate call arguments in
        # opposite order, so this classic diverges with zero passes.
        source = """
        int counter = 0;
        int tick(void) { counter = counter + 1; return counter; }
        int main(void) { printf("%d %d", tick(), tick()); return 0; }
        """
        result = bisect_divergence(source, b"", "gcc-O0", "clang-O0")
        assert result.status == STATUS_BASELINE_DIVERGENT
        assert result.total_applications == 0

    def test_to_json_round_trips(self):
        result = bisect_divergence(GUARD_SOURCE, b"", "gcc-O0", "gcc-O2")
        payload = result.to_json()
        assert payload["status"] == "attributed"
        assert payload["culprit"]["pass"] == "exploit_ub"
        assert payload["culprit"]["position"] == 1
        json.dumps(payload)  # JSON-serializable


class TestPairChoice:
    def _diff(self, source: str):
        with CompDiff() as engine:
            outcome = engine.check_source(source, [b""], name="t")
        return outcome.diffs[0]

    def test_reference_is_least_optimized(self):
        ref, target = choose_bisection_pair(self._diff(GUARD_SOURCE))
        assert ref.endswith("-O0")
        assert not target.endswith("-O0")

    def test_pair_spans_two_observation_groups(self):
        diff = self._diff(GUARD_SOURCE)
        ref, target = choose_bisection_pair(diff)
        groups = diff.groups()
        ref_group = next(i for i, g in enumerate(groups) if ref in g)
        target_group = next(i for i, g in enumerate(groups) if target in g)
        assert ref_group != target_group

    def test_rejects_stable_diff(self):
        with pytest.raises(ValueError):
            choose_bisection_pair(self._diff(STABLE_SOURCE))

    def test_bisect_diff_end_to_end(self):
        diff = self._diff(GUARD_SOURCE)
        result = bisect_diff(GUARD_SOURCE, diff, name="guard")
        assert result.attributed
        assert result.culprit.pass_name == "exploit_ub"


class TestTriageWiring:
    def test_attribute_clusters_labels_each_signature(self):
        with CompDiff() as engine:
            outcome = engine.check_source(GUARD_SOURCE, [b""], name="guard")
        clusters = triage(outcome.diffs)
        assert clusters
        attributions = attribute_clusters(GUARD_SOURCE, clusters, name="guard")
        assert set(attributions) == set(clusters)
        result = next(iter(attributions.values()))
        assert result.attributed
        assert result.culprit.pass_name == "exploit_ub"


class TestLocalizeWiring:
    def test_divergence_profile_combines_both_answers(self):
        profile = divergence_profile(GUARD_SOURCE, b"", "gcc-O0", "gcc-O2")
        assert profile.localization.diverged
        assert profile.bisection.attributed
        text = profile.render(GUARD_SOURCE)
        assert "trace alignment" in text
        assert "pass bisection" in text


class TestCli:
    def _write(self, tmp_path, source: str) -> str:
        path = tmp_path / "prog.c"
        path.write_text(source)
        return str(path)

    def test_bisect_attributed_exit_zero(self, tmp_path, capsys):
        rc = cli_main(
            ["bisect", self._write(tmp_path, GUARD_SOURCE),
             "--impl-a", "gcc-O0", "--impl-b", "gcc-O2"]
        )
        assert rc == 0
        assert "exploit_ub" in capsys.readouterr().out

    def test_bisect_json(self, tmp_path, capsys):
        rc = cli_main(
            ["bisect", self._write(tmp_path, GUARD_SOURCE), "--json",
             "--impl-a", "gcc-O0", "--impl-b", "gcc-O2"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "attributed"
        assert payload["culprit"]["pass"] == "exploit_ub"

    def test_bisect_stable_exit_one(self, tmp_path, capsys):
        rc = cli_main(["bisect", self._write(tmp_path, STABLE_SOURCE)])
        assert rc == 1
        assert "no divergence" in capsys.readouterr().out


class TestEvaluationWiring:
    def test_juliet_bisections_recorded(self):
        from repro.evaluation import evaluate_juliet, render_bisections
        from repro.juliet import build_suite

        suite = build_suite(scale=0.002)
        evaluation = evaluate_juliet(
            suite,
            include_static=False,
            include_sanitizers=False,
            include_good_variants=False,
            include_bisection=True,
        )
        diverging = [
            uid for uid, vectors in evaluation.bug_vectors.items() if vectors
        ]
        assert set(evaluation.bisections) == set(diverging)
        report = render_bisections(evaluation)
        assert "Pass attribution" in report
