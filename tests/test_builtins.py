"""Runtime builtin (libc-analog) tests."""

from __future__ import annotations

from tests.conftest import run_source, stdout_of


def fmt(body: str, impl: str = "gcc-O0", input_bytes: bytes = b"") -> bytes:
    return stdout_of(f"int main(void) {{ {body} return 0; }}", impl, input_bytes)


class TestStringFunctions:
    def test_strlen(self):
        assert fmt('printf("%ld", strlen("hello"));') == b"5"

    def test_strlen_empty(self):
        assert fmt('printf("%ld", strlen(""));') == b"0"

    def test_strcpy(self):
        assert fmt('char d[8]; strcpy(d, "abc"); printf("%s", d);') == b"abc"

    def test_strcpy_returns_dst(self):
        assert fmt('char d[8]; printf("%s", strcpy(d, "zz"));') == b"zz"

    def test_strncpy_pads_with_nul(self):
        assert (
            fmt('char d[8]; d[5] = 77; strncpy(d, "ab", 6); printf("%d", d[5]);') == b"0"
        )

    def test_strncpy_no_terminator_when_truncated(self):
        assert fmt('char d[4]; strncpy(d, "abcdef", 3); d[3] = 0; printf("%s", d);') == b"abc"

    def test_strcmp_orderings(self):
        assert fmt('printf("%d %d %d", strcmp("a", "b") < 0, strcmp("b", "a") > 0, strcmp("a", "a"));') == b"1 1 0"

    def test_strncmp_prefix(self):
        assert fmt('printf("%d", strncmp("abcX", "abcY", 3));') == b"0"

    def test_atoi_basic(self):
        assert fmt('printf("%d", atoi("123"));') == b"123"

    def test_atoi_negative_and_junk(self):
        assert fmt('printf("%d %d", atoi("-45x"), atoi("zz"));') == b"-45 0"


class TestMemoryFunctions:
    def test_memset(self):
        assert fmt("char b[4]; memset(b, 65, 3); b[3] = 0; printf(\"%s\", b);") == b"AAA"

    def test_memcpy_non_overlapping(self):
        assert fmt('char a[4] = "xy"; char b[4]; memcpy(b, a, 3); printf("%s", b);') == b"xy"

    def test_memcpy_overlap_direction_diverges(self):
        # Overlapping copy is UB: forward (gcc) smears, backward (clang)
        # shifts cleanly — the CWE-475 mechanism.
        body = (
            "char b[16]; int i;"
            " for (i = 0; i < 10; i++) { b[i] = 'a' + i; }"
            " b[10] = 0;"
            " memcpy(b + 2, b, 6);"
            ' printf("%s", b);'
        )
        gcc = fmt(body, "gcc-O0")
        clang = fmt(body, "clang-O0")
        assert gcc != clang

    def test_calloc_zeroes(self):
        assert fmt('char *p = calloc(4, 2); printf("%d", p[7]);') == b"0"

    def test_malloc_free_roundtrip(self):
        assert fmt("char *p = malloc(8); p[0] = 'k'; printf(\"%c\", p[0]); free(p);") == b"k"


class TestMathFunctions:
    def test_abs(self):
        assert fmt('printf("%d %d", abs(-5), abs(5));') == b"5 5"

    def test_labs(self):
        assert fmt('printf("%ld", labs(-5000000000l));') == b"5000000000"

    def test_sqrt(self):
        assert fmt('printf("%.1f", sqrt(9.0));') == b"3.0"

    def test_fabs(self):
        assert fmt('printf("%.1f", fabs(-2.5));') == b"2.5"

    def test_pow_integer_exponent(self):
        assert fmt('printf("%.0f", pow(3.0, 4.0));') == b"81"

    def test_pow_vs_exp2_disagree_in_last_bits(self):
        # The clang-O3 pow(2,x)->exp2(x) substitution changes low bits.
        src = 'int main(void) { printf("%.17g", pow(2.0, 0.5)); return 0; }'
        o0 = stdout_of(src, "clang-O0")
        o3 = stdout_of(src, "clang-O3")
        assert o0 != o3


class TestInputChannel:
    def test_input_size(self):
        assert fmt('printf("%ld", input_size());', input_bytes=b"abc") == b"3"

    def test_input_byte_in_range(self):
        assert fmt('printf("%d", input_byte(1));', input_bytes=b"AB") == b"66"

    def test_input_byte_out_of_range(self):
        assert fmt('printf("%d", input_byte(99));', input_bytes=b"AB") == b"-1"

    def test_read_input_copies(self):
        body = 'char b[8]; long n = read_input(b, 8); b[n] = 0; printf("%ld:%s", n, b);'
        assert fmt(body, input_bytes=b"hey") == b"3:hey"

    def test_read_input_cursor_advances(self):
        body = (
            "char a[4]; char b[4];"
            " read_input(a, 2); read_input(b, 2);"
            " a[2] = 0; b[2] = 0;"
            ' printf("%s|%s", a, b);'
        )
        assert fmt(body, input_bytes=b"wxyz") == b"wx|yz"

    def test_read_input_truncates_at_available(self):
        body = 'char b[16]; printf("%ld", read_input(b, 16));'
        assert fmt(body, input_bytes=b"abc") == b"3"


class TestProcessControl:
    def test_exit_code(self):
        result = run_source('int main(void) { exit(7); printf("never"); return 0; }')
        assert result.exit_code == 7
        assert result.stdout == b""

    def test_abort_is_sigabrt(self):
        result = run_source("int main(void) { abort(); return 0; }")
        assert result.status.value == "crash"
        assert result.exit_code == 134


class TestExtendedLibc:
    def test_memmove_overlap_is_stable(self):
        # memmove is overlap-safe by spec: identical across implementations.
        body = (
            "char b[16]; int i;"
            " for (i = 0; i < 10; i++) { b[i] = 'a' + i; }"
            " b[10] = 0;"
            " memmove(b + 2, b, 6);"
            ' printf("%s", b);'
        )
        gcc = fmt(body, "gcc-O0")
        clang = fmt(body, "clang-O0")
        assert gcc == clang == b"ababcdefij"

    def test_memcmp(self):
        assert fmt('printf("%d %d", memcmp("abc", "abd", 3) < 0, memcmp("abc", "abc", 3));') == b"1 0"

    def test_memcmp_zero_length(self):
        assert fmt('printf("%d", memcmp("x", "y", 0));') == b"0"

    def test_strcat(self):
        assert fmt('char d[16] = "foo"; strcat(d, "bar"); printf("%s", d);') == b"foobar"

    def test_realloc_grows_and_preserves(self):
        body = (
            "char *p = malloc(4); strcpy(p, \"abc\");"
            " p = realloc(p, 64);"
            ' printf("%s", p);'
        )
        assert fmt(body) == b"abc"

    def test_realloc_null_acts_as_malloc(self):
        body = "char *p = realloc((char*)0, 8); p[0] = 'k'; printf(\"%c\", p[0]);"
        assert fmt(body) == b"k"

    def test_realloc_zero_frees(self):
        body = 'char *p = malloc(8); p = realloc(p, 0); printf("%d", p == (char*)0);'
        assert fmt(body) == b"1"

    def test_realloc_moves_block(self):
        body = (
            "char *p = malloc(8); char *q = realloc(p, 32);"
            ' printf("%d", p == q);'
        )
        assert fmt(body) == b"0"
