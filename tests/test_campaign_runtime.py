"""Sharded campaign runtime tests: byte-identity, recovery, quarantine.

The headline contract (docs/ROBUSTNESS.md): a campaign run under
``--shards N`` — with or without injected shard faults — produces a
merged corpus byte-identical to a fault-free serial run, minus only the
contributions of seeds a ``poison`` fault drives into the quarantine
ledger.  Plus the supervision paths themselves: hang watchdog, poison
quarantine, shard-range adoption, supervisor crash-resume, and the
deferred-SIGINT boundary flush the campaign loops share with the
fuzzer.
"""

from __future__ import annotations

import json
import os
import shutil
import signal

import pytest

from repro.campaigns.runtime import (
    QUARANTINE_FILE,
    RESULT_FILE,
    CampaignRuntime,
    GenerativeShardAdapter,
    SancheckShardAdapter,
    ShardPolicy,
    partition_range,
)
from repro.errors import CheckpointError, EngineConfigError
from repro.generative.bank import CorpusBank
from repro.generative.campaign import GenerativeCampaign, GenerativeOptions
from repro.parallel.faults import ShardFaultPlan
from repro.sanval.bank import FindingBank
from repro.sanval.campaign import SancheckCampaign, SancheckOptions

pytestmark = [pytest.mark.faults, pytest.mark.slow]

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "sanval")

#: Small deterministic campaign: 4 seeds, no reduction (seeds are a few
#: seconds each with reduction; the sharding contract is orthogonal).
BUDGET = 4

#: Snappy recovery for tests; the 30s deadline still dwarfs one seed.
FAST = ShardPolicy(seed_deadline=30.0, backoff_base=0.01, backoff_max=0.05)


def _options(**overrides) -> GenerativeOptions:
    base = dict(seed=0, budget=BUDGET, reduce=False, stabilize_budget=4)
    base.update(overrides)
    return GenerativeOptions(**base)


def _corpus_bytes(root) -> dict[str, bytes]:
    """Every file under *root* by relative path — the byte-identity probe."""
    out = {}
    for dirpath, _, files in os.walk(root):
        for name in files:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                out[os.path.relpath(path, root)] = handle.read()
    return out


def _gen_signature(result) -> tuple:
    return (
        result.generated,
        result.divergent,
        result.banked_new,
        result.duplicates,
        result.drifted,
        result.keys,
        result.corpus_size,
    )


@pytest.fixture(scope="module")
def serial(tmp_path_factory):
    """The fault-free serial reference run: (result, corpus bytes)."""
    root = tmp_path_factory.mktemp("serial-corpus")
    bank = CorpusBank(root)
    with GenerativeCampaign(_options(), bank) as campaign:
        result = campaign.run()
    assert result.banked_new > 0, "reference campaign must bank something"
    return result, _corpus_bytes(root)


def _run_sharded(tmp_path, shards=2, policy=FAST, fault_plan=None, options=None):
    runtime = CampaignRuntime(
        GenerativeShardAdapter(options or _options()),
        CorpusBank(tmp_path / "merged"),
        root=str(tmp_path / "campaign"),
        shards=shards,
        policy=policy,
        fault_plan=fault_plan,
    )
    result = runtime.run()
    return runtime, result, _corpus_bytes(tmp_path / "merged")


# --------------------------------------------------------------- units


def test_partition_range_is_contiguous_and_balanced():
    assert partition_range(10, 3) == [(0, 4), (4, 7), (7, 10)]
    assert partition_range(4, 2) == [(0, 2), (2, 4)]
    assert partition_range(2, 4) == [(0, 1), (1, 2), (2, 2), (2, 2)]
    blocks = partition_range(97, 7)
    assert blocks[0][0] == 0 and blocks[-1][1] == 97
    assert all(a[1] == b[0] for a, b in zip(blocks, blocks[1:]))
    with pytest.raises(EngineConfigError):
        partition_range(5, 0)


def test_shard_policy_validation():
    with pytest.raises(EngineConfigError):
        ShardPolicy(seed_deadline=0)
    with pytest.raises(EngineConfigError):
        ShardPolicy(max_seed_attempts=0)
    with pytest.raises(EngineConfigError):
        ShardPolicy(max_shard_restarts=-1)
    assert ShardPolicy().backoff(0) == ShardPolicy().backoff_base


def test_shard_fault_plan_is_pure_and_validates():
    plan = ShardFaultPlan(seed=3, crash=0.5, hang=0.25)
    decisions = [plan.decide(offset, 0) for offset in range(50)]
    assert decisions == [plan.decide(offset, 0) for offset in range(50)]
    assert all(plan.decide(offset, 1) is None for offset in range(50))
    once = ShardFaultPlan(once={4: "hang"})
    assert once.decide(4, 0) == "hang" and once.decide(4, 1) is None
    poison = ShardFaultPlan(poison={4: "crash"})
    assert all(poison.decide(4, attempt) == "crash" for attempt in range(5))
    with pytest.raises(ValueError):
        ShardFaultPlan(crash=0.9, hang=0.9)
    with pytest.raises(ValueError):
        ShardFaultPlan(once={1: "meteor"})


# ------------------------------------------------- byte-identity contract


def test_sharded_run_matches_serial_byte_for_byte(serial, tmp_path):
    serial_result, serial_bytes = serial
    runtime, merged, merged_bytes = _run_sharded(tmp_path)
    assert merged_bytes == serial_bytes
    assert _gen_signature(merged) == _gen_signature(serial_result)
    shards = runtime.stats.snapshot()["shards"]
    assert shards == {"restarts": 0, "adoptions": 0, "seeds_quarantined": 0}


def test_rerunning_a_finished_campaign_is_idempotent(serial, tmp_path):
    _, serial_bytes = serial
    _run_sharded(tmp_path)
    # Every shard already has a valid result record: the rerun must
    # launch nothing and still merge the same corpus into a fresh bank.
    rerun = CampaignRuntime(
        GenerativeShardAdapter(_options()),
        CorpusBank(tmp_path / "merged-again"),
        root=str(tmp_path / "campaign"),
        shards=2,
        policy=FAST,
    )
    result = rerun.run()
    assert _corpus_bytes(tmp_path / "merged-again") == serial_bytes
    assert result.banked_new > 0
    assert rerun.stats.snapshot()["shards"]["restarts"] == 0


def test_crash_and_corrupt_faults_converge_to_serial(serial, tmp_path):
    serial_result, serial_bytes = serial
    # Crash shard 0 at its second seed; corrupt shard 1's checkpoint at
    # its second seed (exercises the wipe-and-replay self-heal).
    plan = ShardFaultPlan(once={1: "crash", 3: "corrupt"})
    runtime, merged, merged_bytes = _run_sharded(tmp_path, fault_plan=plan)
    assert merged_bytes == serial_bytes
    assert _gen_signature(merged) == _gen_signature(serial_result)
    assert runtime.stats.snapshot()["shards"]["restarts"] == 2
    assert not runtime.quarantine


def test_hung_shard_is_killed_and_replayed(serial, tmp_path):
    serial_result, serial_bytes = serial
    # The injected hang sleeps HANG_SECONDS (600 s); keep the deadline
    # far above honest per-seed wall time on a loaded machine so only
    # the injected hang can trip the watchdog.
    plan = ShardFaultPlan(once={1: "hang"})
    policy = ShardPolicy(seed_deadline=30.0, backoff_base=0.01, backoff_max=0.05)
    runtime, merged, merged_bytes = _run_sharded(tmp_path, policy=policy, fault_plan=plan)
    assert merged_bytes == serial_bytes
    assert _gen_signature(merged) == _gen_signature(serial_result)
    assert runtime.stats.snapshot()["shards"]["restarts"] == 1


def test_exhausted_shard_range_is_adopted_in_process(serial, tmp_path):
    serial_result, serial_bytes = serial
    plan = ShardFaultPlan(once={0: "crash"})
    policy = ShardPolicy(
        seed_deadline=30.0, max_shard_restarts=0, backoff_base=0.01, backoff_max=0.05
    )
    runtime, merged, merged_bytes = _run_sharded(tmp_path, policy=policy, fault_plan=plan)
    assert merged_bytes == serial_bytes
    assert _gen_signature(merged) == _gen_signature(serial_result)
    shards = runtime.stats.snapshot()["shards"]
    assert shards["restarts"] == 1 and shards["adoptions"] == 1


# ----------------------------------------------------- poison quarantine


def test_poison_seed_lands_in_the_ledger_and_campaign_completes(serial, tmp_path):
    serial_result, serial_bytes = serial
    plan = ShardFaultPlan(poison={2: "crash"})
    policy = ShardPolicy(
        seed_deadline=30.0, max_seed_attempts=2, backoff_base=0.01, backoff_max=0.05
    )
    runtime, merged, merged_bytes = _run_sharded(tmp_path, policy=policy, fault_plan=plan)
    assert [(entry.seq, entry.label) for entry in runtime.quarantine] == [(2, "gen-ub-2")]
    assert runtime.stats.snapshot()["shards"]["seeds_quarantined"] == 1
    # The merged corpus is the serial corpus minus exactly the
    # quarantined seed's contribution.
    assert merged.generated == serial_result.generated - 1
    poisoned_key = serial_result.keys[2]
    assert merged.keys == [key for i, key in enumerate(serial_result.keys) if i != 2]
    assert all(
        path in serial_bytes
        for path in merged_bytes
        if "manifest" not in path
    )
    assert f"programs/{poisoned_key}.c" not in merged_bytes
    # The ledger is durable and reloadable.
    ledger = json.loads(
        open(os.path.join(tmp_path, "campaign", QUARANTINE_FILE)).read()
    )
    assert ledger["entries"][0]["offset"] == 2
    assert ledger["entries"][0]["label"] == "gen-ub-2"


# ------------------------------------------------------- crash recovery


def test_dead_supervisor_resumes_and_converges(serial, tmp_path):
    serial_result, serial_bytes = serial
    _run_sharded(tmp_path)
    # Simulate the supervisor dying before shard 1 finished: drop its
    # result record and half its progress (checkpoint + bank), keeping
    # shards.json — the resumed run must replay only what is missing.
    shard_dir = tmp_path / "campaign" / "shard-01"
    os.remove(shard_dir / RESULT_FILE)
    shutil.rmtree(shard_dir / "ckpt")
    shutil.rmtree(shard_dir / "bank")
    resumed = CampaignRuntime(
        GenerativeShardAdapter(_options()),
        CorpusBank(tmp_path / "merged-resumed"),
        root=str(tmp_path / "campaign"),
        shards=2,
        policy=FAST,
    )
    result = resumed.run()
    assert _corpus_bytes(tmp_path / "merged-resumed") == serial_bytes
    assert _gen_signature(result) == _gen_signature(serial_result)


def test_incompatible_shard_plan_is_refused(serial, tmp_path):
    _run_sharded(tmp_path)
    for bad_kwargs in ({"shards": 3}, {"options": _options(profile="plain")}):
        runtime = CampaignRuntime(
            GenerativeShardAdapter(bad_kwargs.get("options", _options())),
            CorpusBank(tmp_path / "merged-bad"),
            root=str(tmp_path / "campaign"),
            shards=bad_kwargs.get("shards", 2),
            policy=FAST,
        )
        with pytest.raises(CheckpointError, match="different campaign"):
            runtime.run()


# ------------------------------------------------------- sanval sharding


def _san_options(**overrides) -> SancheckOptions:
    base = dict(fixtures=FIXTURES, relocations=("outline",), reduce=False)
    base.update(overrides)
    return SancheckOptions(**base)


def test_sancheck_sharded_matches_serial(tmp_path):
    with SancheckCampaign(_san_options(), bank=FindingBank(tmp_path / "serial")) as c:
        serial_result = c.run()
    runtime = CampaignRuntime(
        SancheckShardAdapter(_san_options()),
        FindingBank(tmp_path / "merged"),
        root=str(tmp_path / "campaign"),
        shards=2,
        policy=FAST,
    )
    merged = runtime.run()
    assert _corpus_bytes(tmp_path / "merged") == _corpus_bytes(tmp_path / "serial")
    assert [v.to_json() for v in merged.verdicts] == [
        v.to_json() for v in serial_result.verdicts
    ]
    for attr in ("seeds", "variants", "dropped", "screened", "skipped",
                 "banked_new", "duplicates", "bank_size"):
        assert getattr(merged, attr) == getattr(serial_result, attr), attr


# --------------------------------------------------- SIGINT boundary flush


def test_generative_sigint_flushes_at_boundary_and_resumes(tmp_path):
    options = _options(budget=3, checkpoint_dir=str(tmp_path / "ckpt"))
    reference_bank = CorpusBank(tmp_path / "reference")
    with GenerativeCampaign(_options(budget=3), reference_bank) as campaign:
        reference = campaign.run()

    def fire_sigint(offset: int) -> None:
        if offset == 1:
            os.kill(os.getpid(), signal.SIGINT)

    bank = CorpusBank(tmp_path / "corpus")
    with GenerativeCampaign(options, bank, progress=fire_sigint) as campaign:
        with pytest.raises(KeyboardInterrupt, match="checkpoint flushed"):
            campaign.run()
    # The signal landed at offset 1's boundary but was deferred: seed 1
    # completed and the flushed checkpoint records it.
    from repro.generative.campaign import CHECKPOINT_FILE, MAGIC, GenerativeCheckpoint
    from repro.persist import read_record

    flushed = read_record(
        str(tmp_path / "ckpt" / CHECKPOINT_FILE), MAGIC, GenerativeCheckpoint
    )
    assert flushed.offset == 2
    with GenerativeCampaign(options, bank) as campaign:
        resumed = campaign.run()
    assert resumed.resumed_at == 2
    assert _gen_signature(resumed)[:6] == _gen_signature(reference)[:6]
    assert _corpus_bytes(tmp_path / "corpus") == _corpus_bytes(tmp_path / "reference")


def test_sancheck_sigint_flushes_at_boundary_and_resumes(tmp_path):
    with SancheckCampaign(_san_options(), bank=FindingBank(tmp_path / "reference")) as c:
        reference = c.run()

    def fire_sigint(offset: int) -> None:
        if offset == 1:
            os.kill(os.getpid(), signal.SIGINT)

    options = _san_options(checkpoint_dir=str(tmp_path / "ckpt"))
    bank = FindingBank(tmp_path / "bank")
    with SancheckCampaign(options, bank=bank, progress=fire_sigint) as campaign:
        with pytest.raises(KeyboardInterrupt, match="checkpoint flushed"):
            campaign.run()
    from repro.persist import read_record
    from repro.sanval.campaign import CHECKPOINT_FILE, MAGIC, SancheckCheckpoint

    flushed = read_record(
        str(tmp_path / "ckpt" / CHECKPOINT_FILE), MAGIC, SancheckCheckpoint
    )
    assert flushed.offset == 2
    with SancheckCampaign(options, bank=bank) as campaign:
        resumed = campaign.run()
    assert resumed.resumed_at == 2
    assert [v.to_json() for v in resumed.verdicts] == [
        v.to_json() for v in reference.verdicts
    ]
    assert _corpus_bytes(tmp_path / "bank") == _corpus_bytes(tmp_path / "reference")
