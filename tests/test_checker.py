"""Semantic-checker unit tests."""

from __future__ import annotations

import pytest

from repro.errors import CheckError
from repro.minic import ast, load
from repro.minic import types as ty


def expr_type(decl: str, text: str) -> ty.Type:
    program = load(f"int main(void) {{ {decl} return ({text}) != 0; }}")
    ret = program.function("main").body.body[-1]
    comparison = ret.value
    return comparison.lhs.ty


class TestResolution:
    def test_undefined_identifier_rejected(self):
        with pytest.raises(CheckError):
            load("int main(void) { return nope; }")

    def test_redefinition_rejected(self):
        with pytest.raises(CheckError):
            load("int main(void) { int a; int a; return 0; }")

    def test_shadowing_in_nested_block_allowed(self):
        program = load("int main(void) { int a = 1; { int a = 2; } return a; }")
        assert program is not None

    def test_global_visible_in_function(self):
        load("int g;\nint main(void) { return g; }")

    def test_builtin_resolved(self):
        program = load('int main(void) { printf("x"); return 0; }')
        call = program.function("main").body.body[0].expr
        assert call.func.symbol.kind == "builtin"

    def test_static_local_gets_mangled_name(self):
        program = load("int f(void) { static int c = 0; return c; }")
        decl = program.function("f").body.body[0]
        assert decl.symbol.mangled != ""

    def test_param_usable(self):
        load("int f(int a) { return a + 1; }")


class TestTyping:
    def test_int_literal_type(self):
        assert expr_type("", "1") == ty.INT

    def test_large_literal_promotes_to_long(self):
        assert expr_type("", "5000000000") == ty.LONG

    def test_unsigned_suffix(self):
        assert expr_type("", "1u") == ty.UINT

    def test_char_literal_is_int(self):
        assert expr_type("", "'a'") == ty.INT

    def test_string_literal_is_char_pointer(self):
        assert expr_type("", '"hi"') == ty.PointerType(ty.CHAR)

    def test_arithmetic_promotion(self):
        assert expr_type("char c = 1;", "c + c") == ty.INT

    def test_mixed_int_long(self):
        assert expr_type("long l = 1;", "l + 1") == ty.LONG

    def test_comparison_is_int(self):
        assert expr_type("", "(1 < 2)") == ty.INT

    def test_pointer_plus_int_is_pointer(self):
        assert expr_type("char buf[4]; char *p = buf;", "p + 1") == ty.PointerType(ty.CHAR)

    def test_pointer_difference_is_long(self):
        assert expr_type("char buf[4]; char *p = buf;", "p - p") == ty.LONG

    def test_deref_type(self):
        assert expr_type("int v; int *p = &v;", "*p") == ty.INT

    def test_addressof_type(self):
        assert expr_type("int v;", "&v != (int*)0") == ty.INT

    def test_array_index_type(self):
        assert expr_type("int arr[4];", "arr[0]") == ty.INT

    def test_sizeof_is_unsigned_long(self):
        assert expr_type("", "sizeof(int)") == ty.ULONG

    def test_division_of_floats(self):
        assert expr_type("double d = 1.0;", "d / 2") == ty.DOUBLE


class TestStructChecking:
    SRC = """
    struct Pair { int a; int b; };
    int main(void) {
        struct Pair p;
        struct Pair *q = &p;
        p.a = 1;
        q->b = 2;
        return p.a + q->b;
    }
    """

    def test_member_access(self):
        load(self.SRC)

    def test_unknown_field_rejected(self):
        with pytest.raises(CheckError):
            load(
                "struct S { int a; };\n"
                "int main(void) { struct S s; return s.nope; }"
            )

    def test_member_on_non_struct_rejected(self):
        with pytest.raises(CheckError):
            load("int main(void) { int x; return x.a; }")

    def test_arrow_on_non_pointer_rejected(self):
        with pytest.raises(CheckError):
            load("struct S { int a; };\nint main(void) { struct S s; return s->a; }")


class TestErrors:
    def test_deref_non_pointer_rejected(self):
        with pytest.raises(CheckError):
            load("int main(void) { int x; return *x; }")

    def test_assign_to_rvalue_rejected(self):
        with pytest.raises(CheckError):
            load("int main(void) { 1 = 2; return 0; }")

    def test_assign_to_array_rejected(self):
        with pytest.raises(CheckError):
            load('int main(void) { char b[4]; b = "x"; return 0; }')

    def test_address_of_rvalue_rejected(self):
        with pytest.raises(CheckError):
            load("int main(void) { int *p = &42; return 0; }")

    def test_subscript_non_pointer_rejected(self):
        with pytest.raises(CheckError):
            load("int main(void) { int x; return x[0]; }")

    def test_modulo_on_float_rejected(self):
        with pytest.raises(CheckError):
            load("int main(void) { double d = 1.0; d = d % 2.0; return 0; }")

    def test_void_variable_rejected(self):
        with pytest.raises(CheckError):
            load("int main(void) { void v; return 0; }")

    def test_call_non_function_rejected(self):
        with pytest.raises(CheckError):
            load("int main(void) { int x = 1; return x(); }")

    def test_too_few_builtin_args_rejected(self):
        with pytest.raises(CheckError):
            load("int main(void) { memcpy(); return 0; }")


class TestUBPermissiveness:
    """Buggy-but-compilable code must pass the checker (UB is runtime)."""

    def test_missing_user_function_args_allowed(self):
        load("int f(int a, int b) { return a + b; }\nint main(void) { return f(1); }")

    def test_loose_pointer_casts_allowed(self):
        load(
            "struct S { int a; long b; };\n"
            "int main(void) { int v = 1; struct S *p = (struct S*)&v; return p->a; }"
        )

    def test_null_assignment_to_typed_pointer_allowed(self):
        load("int main(void) { int *p = NULL; return p == NULL; }")

    def test_cross_object_pointer_comparison_allowed(self):
        load("int a;\nint b;\nint main(void) { return &a < &b; }")
