"""Checkpoint/resume round-trip and integrity tests (ISSUE 3 layer 2).

The headline property: a campaign checkpointed at *any* iteration
boundary and resumed in a fresh process produces a result byte-identical
to a never-interrupted campaign — same diffs, same checksums, same
corpus, same engine counters.  Plus the failure-path contracts: torn or
corrupted records, cross-program resumes, and option drift are all
refused with :class:`~repro.errors.CheckpointError` instead of silently
resuming from garbage.
"""

from __future__ import annotations

import os
import pickle
import random
import signal
import struct
import tempfile
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CheckpointError
from repro.fuzzing import CompDiffFuzzer, FuzzerOptions, load_checkpoint, save_checkpoint
from repro.fuzzing.checkpoint import (
    MAGIC,
    CampaignCheckpoint,
    checkpoint_path,
)
from repro.targets import build_all_targets

pytestmark = pytest.mark.faults

TOTAL_EXECUTIONS = 300
RNG_SEED = 7


@pytest.fixture(scope="module")
def target():
    return build_all_targets()[0]


def _options(**overrides) -> FuzzerOptions:
    base = dict(
        rng_seed=RNG_SEED,
        max_executions=TOTAL_EXECUTIONS,
        compdiff_stride=2,
        fuel=200_000,
    )
    base.update(overrides)
    return FuzzerOptions(**base)


def _signature(result):
    """Everything a campaign consumer can observe, in comparable form."""
    return (
        result.executions,
        result.oracle_executions,
        result.diffs_found,
        result.crashes_found,
        result.edges_covered,
        result.queue_size,
        [
            (d.input, d.checksums, d.observations, d.divergent, d.groups(), d.dropped)
            for d in result.diffs
        ],
        sorted(result.sites_reached),
        sorted(result.sites_diverged),
        result.sites_by_input,
        result.signatures(),
    )


def _run_campaign(target, options, resume_from=None):
    with CompDiffFuzzer(target.source, target.seeds, options, name=target.name) as fuzzer:
        result = fuzzer.run(resume_from=resume_from)
        stats = fuzzer.oracle_stats
        return result, (stats.exec_counts, stats.inputs_checked)


@pytest.fixture(scope="module")
def uninterrupted(target):
    """The fault-free reference campaign (no checkpointing at all)."""
    result, stats = _run_campaign(target, _options())
    return _signature(result), stats


@settings(max_examples=3, deadline=None)
@given(split=st.integers(min_value=1, max_value=TOTAL_EXECUTIONS - 1))
def test_round_trip_resume_property(target, uninterrupted, split):
    """Property: for any split point, campaign-to-split + resume-to-end
    equals one uninterrupted campaign, verdicts and engine counters."""
    expected_signature, expected_stats = uninterrupted
    with tempfile.TemporaryDirectory() as ckdir:
        _run_campaign(
            target,
            _options(max_executions=split, checkpoint_dir=ckdir, checkpoint_every=97),
        )
        resumed, stats = _run_campaign(
            target,
            _options(checkpoint_dir=ckdir, checkpoint_every=97),
            resume_from=ckdir,
        )
    assert _signature(resumed) == expected_signature
    assert stats == expected_stats


def test_sigint_flushes_consistent_checkpoint(target, uninterrupted):
    """Ctrl-C mid-campaign: SIGINT is deferred to the iteration boundary,
    a final checkpoint is flushed, KeyboardInterrupt propagates — and the
    resumed campaign still matches the uninterrupted one exactly."""
    expected_signature, _ = uninterrupted
    with tempfile.TemporaryDirectory() as ckdir:
        options = _options(checkpoint_dir=ckdir, checkpoint_every=50)
        with CompDiffFuzzer(target.source, target.seeds, options, name=target.name) as fuzzer:
            original_run = fuzzer.fuzz_server.run
            calls = {"n": 0}

            def interrupting_run(data, **kwargs):
                calls["n"] += 1
                if calls["n"] == TOTAL_EXECUTIONS // 2:
                    signal.raise_signal(signal.SIGINT)
                return original_run(data, **kwargs)

            fuzzer.fuzz_server.run = interrupting_run
            with pytest.raises(KeyboardInterrupt):
                fuzzer.run()
        flushed = load_checkpoint(ckdir)
        assert 0 < flushed.result.executions < TOTAL_EXECUTIONS
        resumed, _ = _run_campaign(
            target, _options(checkpoint_dir=ckdir), resume_from=ckdir
        )
    assert _signature(resumed) == expected_signature
    # The fuzzer restored the previous SIGINT disposition on exit.
    assert signal.getsignal(signal.SIGINT) is signal.default_int_handler


# ----------------------------------------------------------- format integrity


def _minimal_checkpoint() -> CampaignCheckpoint:
    return CampaignCheckpoint(
        program_fingerprint="fp",
        options_digest="digest",
        generated=0,
        rng_state=random.Random(0).getstate(),
        result=None,
    )


def test_save_is_atomic_and_leaves_no_temp_files():
    with tempfile.TemporaryDirectory() as ckdir:
        path = save_checkpoint(ckdir, _minimal_checkpoint())
        assert path == checkpoint_path(ckdir)
        assert sorted(os.listdir(ckdir)) == [os.path.basename(path)]
        # Overwrite is just as atomic.
        save_checkpoint(ckdir, _minimal_checkpoint())
        assert load_checkpoint(ckdir).options_digest == "digest"


def test_missing_checkpoint_is_rejected():
    with tempfile.TemporaryDirectory() as ckdir:
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(ckdir)


def test_bit_flip_fails_the_integrity_check():
    with tempfile.TemporaryDirectory() as ckdir:
        path = save_checkpoint(ckdir, _minimal_checkpoint())
        with open(path, "rb") as handle:
            record = bytearray(handle.read())
        record[-3] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(record)
        with pytest.raises(CheckpointError, match="integrity"):
            load_checkpoint(ckdir)


def test_truncated_record_is_rejected():
    with tempfile.TemporaryDirectory() as ckdir:
        path = save_checkpoint(ckdir, _minimal_checkpoint())
        with open(path, "rb") as handle:
            record = handle.read()
        for cut in (0, len(MAGIC) - 2, len(MAGIC) + 2, len(record) - 5):
            with open(path, "wb") as handle:
                handle.write(record[:cut])
            with pytest.raises(CheckpointError):
                load_checkpoint(ckdir)


def test_foreign_magic_and_foreign_payload_are_rejected():
    with tempfile.TemporaryDirectory() as ckdir:
        path = checkpoint_path(ckdir)
        with open(path, "wb") as handle:
            handle.write(b"NOTCKPT0" + b"\x00" * 16)
        with pytest.raises(CheckpointError, match="bad magic"):
            load_checkpoint(ckdir)
        payload = pickle.dumps({"not": "a checkpoint"})
        with open(path, "wb") as handle:
            handle.write(MAGIC + struct.pack(">I", zlib.crc32(payload)) + payload)
        with pytest.raises(CheckpointError, match="not a CampaignCheckpoint"):
            load_checkpoint(ckdir)


# --------------------------------------------------------- compatibility gates


def test_cross_program_resume_is_refused(target):
    with tempfile.TemporaryDirectory() as ckdir:
        _run_campaign(
            target, _options(max_executions=30, checkpoint_dir=ckdir, checkpoint_every=10)
        )
        other = build_all_targets()[1]
        options = _options(checkpoint_dir=ckdir)
        with CompDiffFuzzer(other.source, other.seeds, options, name=other.name) as fuzzer:
            with pytest.raises(CheckpointError, match="different program"):
                fuzzer.run(resume_from=ckdir)


def test_option_drift_is_refused_but_budget_extension_is_not(target):
    with tempfile.TemporaryDirectory() as ckdir:
        _run_campaign(
            target, _options(max_executions=30, checkpoint_dir=ckdir, checkpoint_every=10)
        )
        drifted = _options(rng_seed=RNG_SEED + 1, checkpoint_dir=ckdir)
        with CompDiffFuzzer(target.source, target.seeds, drifted, name=target.name) as fuzzer:
            with pytest.raises(CheckpointError, match="different"):
                fuzzer.run(resume_from=ckdir)
        # max_executions is a budget, not a behavior: extending it resumes.
        extended = _options(max_executions=60, checkpoint_dir=ckdir, checkpoint_every=10)
        result, _ = _run_campaign(target, extended, resume_from=ckdir)
        assert result.executions >= 60
