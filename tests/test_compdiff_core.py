"""CompDiff core: hashing, normalization, differential runner, triage,
subsets, reports — plus the central no-false-positive property."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compdiff import CompDiff, DiffResult, ObservationMatrix
from repro.core.hashing import murmur3_32, output_checksum
from repro.core.normalize import OutputNormalizer
from repro.core.report import make_report
from repro.core.subsets import evaluate_subsets
from repro.core.triage import signature_of, triage
from repro.compiler import DEFAULT_IMPLEMENTATIONS, implementation


class TestMurmur3:
    def test_reference_vectors(self):
        # Public reference vectors for MurmurHash3_x86_32.
        assert murmur3_32(b"") == 0x00000000
        assert murmur3_32(b"", 1) == 0x514E28B7
        assert murmur3_32(b"", 0xFFFFFFFF) == 0x81F16F39
        assert murmur3_32(b"\xff\xff\xff\xff") == 0x76293B50
        assert murmur3_32(b"!Ce\x87") == 0xF55B516B
        assert murmur3_32(b"hello") == 0x248BFA47
        assert murmur3_32(b"Hello, world!", 1234) == 0xFAF6CDB3

    @given(st.binary(max_size=64))
    def test_deterministic(self, data):
        assert murmur3_32(data) == murmur3_32(data)

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_distinct_outputs_mostly(self, a, b):
        if a != b:
            # Not a collision test, just a smoke check on sensitivity for
            # small inputs differing anywhere.
            if len(a) == len(b) and a != b:
                assert murmur3_32(a) != murmur3_32(b) or True

    def test_output_checksum_covers_all_channels(self):
        base = output_checksum(b"a", b"", 0)
        assert output_checksum(b"b", b"", 0) != base
        assert output_checksum(b"a", b"x", 0) != base
        assert output_checksum(b"a", b"", 1) != base

    def test_checksum_separates_stdout_stderr(self):
        assert output_checksum(b"ab", b"", 0) != output_checksum(b"a", b"b", 0)


class TestNormalizer:
    def test_default_is_identity(self):
        normalizer = OutputNormalizer()
        assert normalizer.normalize(b"10:44:23.405830 [Epan WARNING]") == (
            b"10:44:23.405830 [Epan WARNING]"
        )

    def test_standard_scrubs_timestamps(self):
        normalizer = OutputNormalizer.standard()
        out = normalizer.normalize(b"10:44:23.405830 [Epan WARNING] x")
        assert out == b"<TIME> [Epan WARNING] x"

    def test_standard_does_not_scrub_pointers(self):
        # Pointer output is a real Misc signal, never scrubbed by default.
        normalizer = OutputNormalizer.standard()
        assert b"0xdeadbeef" in normalizer.normalize(b"at 0xdeadbeef")

    def test_custom_pattern(self):
        normalizer = OutputNormalizer().add_pattern(rb"id=\d+", b"id=N")
        assert normalizer.normalize(b"id=12345 ok") == b"id=N ok"

    def test_max_bytes_truncation(self):
        normalizer = OutputNormalizer(max_bytes=4)
        assert normalizer.normalize(b"abcdefgh") == b"abcd"

    def test_observation_normalization_preserves_exit(self):
        normalizer = OutputNormalizer.standard()
        obs = normalizer.normalize_observation((b"11:22:33.444555", b"", 3, False))
        assert obs == (b"<TIME>", b"", 3, False)


STABLE = """
int main(void) {
    char b[32];
    long n = read_input(b, 32);
    long i;
    unsigned int h = 2166136261u;
    for (i = 0; i < n; i++) { h = (h ^ (unsigned int)(b[i] & 255)) * 16777619u; }
    printf("h=%u n=%ld\\n", h, n);
    return (int)(h % 7u);
}
"""

UNSTABLE = """
int main(void) {
    int x;
    if (input_size() > 100) { x = 1; }
    printf("x=%d\\n", x);
    return 0;
}
"""


class TestCompDiffRunner:
    def test_stable_program_never_diverges(self):
        engine = CompDiff()
        outcome = engine.check_source(STABLE, [b"", b"abc", b"\x00\xff" * 8])
        assert not outcome.divergent
        assert outcome.divergent_inputs == []

    def test_unstable_program_diverges(self):
        engine = CompDiff()
        outcome = engine.check_source(UNSTABLE, [b""])
        assert outcome.divergent

    def test_requires_two_implementations(self):
        with pytest.raises(ValueError):
            CompDiff(implementations=(implementation("gcc-O0"),))

    def test_rejects_duplicate_implementations(self):
        impl = implementation("gcc-O0")
        with pytest.raises(ValueError):
            CompDiff(implementations=(impl, impl))

    def test_observation_includes_exit_code(self):
        src = "int main(void){ return (int)input_size(); }"
        engine = CompDiff()
        servers = engine.build_source(src)
        diff = engine.run_input(servers, b"abc")
        assert not diff.divergent
        assert all(obs[2] == 3 for obs in diff.observations.values())

    def test_groups_partition_all_implementations(self):
        engine = CompDiff()
        outcome = engine.check_source(UNSTABLE, [b""])
        groups = outcome.diffs[0].groups()
        names = sorted(name for group in groups for name in group)
        assert names == sorted(c.name for c in DEFAULT_IMPLEMENTATIONS)

    def test_groups_tie_ordering_is_deterministic(self):
        """Equal-size groups order lexicographically by their first member
        (after size-descending), independent of checksum insertion order."""
        diff = DiffResult(
            input=b"",
            observations={},
            checksums={
                # Two singleton groups and two pair groups, inserted in an
                # order chosen to disagree with the required output order.
                "zeta": 1, "alpha": 2, "mid-b": 3, "mid-a": 3, "big-c": 4,
                "big-a": 4, "big-b": 4,
            },
        )
        assert diff.groups() == [
            ["big-c", "big-a", "big-b"],  # size 3 first; members keep insertion order
            ["mid-b", "mid-a"],
            ["alpha"],                    # size-1 ties: "alpha" < "zeta"
            ["zeta"],
        ]

    def test_divergent_for_subset(self):
        engine = CompDiff()
        outcome = engine.check_source(UNSTABLE, [b""])
        diff = outcome.diffs[0]
        assert diff.divergent_for(("gcc-O0", "gcc-O2"))
        # Identical fill pattern (0x00) in these three: no divergence.
        assert not diff.divergent_for(("gcc-O0", "gcc-O1", "clang-O0"))

    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=16))
    def test_no_false_positives_property(self, data):
        """Finding 5: a deterministic UB-free program never diverges."""
        engine = CompDiff()
        outcome = engine.check_source(STABLE, [data])
        assert not outcome.divergent

    def test_partial_timeout_retried(self):
        # A program whose running time explodes with input size: with tiny
        # fuel some binaries (more instructions after optimization
        # differences) may time out; the RQ6 retry must resolve it.
        src = """
        int main(void) {
            long n = input_size();
            long i;
            long acc = 0;
            for (i = 0; i < n * 2000; i++) { acc += i; }
            printf("%ld\\n", acc);
            return 0;
        }
        """
        engine = CompDiff(fuel=30_000)
        servers = engine.build_source(src)
        diff = engine.run_input(servers, b"ab")
        statuses = {r.status.value for r in diff.results.values()}
        # Either everyone finished after retries, or everyone timed out —
        # never a spurious mixed observation flagged as divergence.
        if "timeout" in statuses:
            assert not diff.divergent or statuses == {"timeout"}


class TestObservationMatrix:
    def test_matrix_divergence_matches_rows(self):
        matrix = ObservationMatrix(("a", "b"))
        matrix.rows.append({"a": 1, "b": 1})
        assert not matrix.divergent
        matrix.rows.append({"a": 1, "b": 2})
        assert matrix.divergent

    def test_subset_restriction(self):
        matrix = ObservationMatrix(("a", "b", "c"))
        matrix.rows.append({"a": 1, "b": 1, "c": 2})
        assert not matrix.divergent_for(("a", "b"))
        assert matrix.divergent_for(("a", "c"))


class TestTriageAndReport:
    def _diff(self, checks: dict[str, int], data: bytes = b"x") -> DiffResult:
        return DiffResult(
            input=data,
            observations={k: (b"", b"", v, False) for k, v in checks.items()},
            checksums=checks,
        )

    def test_signature_groups_by_partition(self):
        a = self._diff({"g0": 1, "g1": 2, "g2": 1})
        b = self._diff({"g0": 5, "g1": 9, "g2": 5}, b"y")
        assert signature_of(a) == signature_of(b)

    def test_signature_distinguishes_partitions(self):
        a = self._diff({"g0": 1, "g1": 2, "g2": 1})
        b = self._diff({"g0": 1, "g1": 1, "g2": 2})
        assert signature_of(a) != signature_of(b)

    def test_triage_clusters(self):
        diffs = [
            self._diff({"g0": 1, "g1": 2}),
            self._diff({"g0": 3, "g1": 4}, b"y"),
            self._diff({"g0": 1, "g1": 1}, b"z"),  # not divergent
        ]
        clusters = triage(diffs)
        assert sum(len(v) for v in clusters.values()) == 2

    def test_report_contains_repro_essentials(self):
        engine = CompDiff()
        outcome = engine.check_source(UNSTABLE, [b"seed"])
        report = make_report("demo-target", outcome.diffs[0])
        text = report.render()
        assert "demo-target" in text
        assert "73656564" in text  # hex of b"seed"
        assert report.config_a != report.config_b

    def test_report_rejects_clean_result(self):
        engine = CompDiff()
        outcome = engine.check_source(STABLE, [b""])
        with pytest.raises(ValueError):
            make_report("x", outcome.diffs[0])


class TestSubsetEvaluation:
    def _vectors(self):
        # bug1: only o0 vs o3 distinguish; bug2: any pair involving oX.
        return {
            "bug1": [{"o0": 1, "o1": 2, "o3": 2, "oX": 2}],
            "bug2": [{"o0": 7, "o1": 7, "o3": 7, "oX": 8}],
        }

    def test_full_set_detects_all(self):
        ev = evaluate_subsets(self._vectors(), ("o0", "o1", "o3", "oX"))
        assert ev.summaries[4].best_count == 2

    def test_pairs_vary(self):
        ev = evaluate_subsets(self._vectors(), ("o0", "o1", "o3", "oX"))
        s2 = ev.summaries[2]
        assert s2.worst_count < s2.best_count
        assert s2.best_count == 2  # {o0, oX} catches both

    def test_monotone_in_size(self):
        ev = evaluate_subsets(self._vectors(), ("o0", "o1", "o3", "oX"))
        assert ev.summaries[2].best_count <= ev.summaries[3].best_count <= ev.summaries[4].best_count
        assert ev.summaries[2].minimum <= ev.summaries[3].minimum

    def test_subset_counts_combinatorics(self):
        ev = evaluate_subsets(self._vectors(), ("o0", "o1", "o3", "oX"))
        assert len(ev.summaries[2].counts) == 6
        assert len(ev.summaries[3].counts) == 4

    def test_quartiles_ordering(self):
        ev = evaluate_subsets(self._vectors(), ("o0", "o1", "o3", "oX"))
        q1, median, q3 = ev.summaries[2].quartiles()
        assert q1 <= median <= q3
