"""Compile-cache behavior: accounting, key stability, eviction, isolation."""

from __future__ import annotations

import pytest

from repro.compiler import implementation
from repro.compiler.implementations import CompilerConfig
from repro.core.compdiff import CompDiff
from repro.minic import load
from repro.parallel import CompileCache, cache_key, config_fingerprint, program_fingerprint
from repro.vm import ForkServer

SOURCE = """
int counter;
int main(void) {
    counter = counter + 1;
    printf("count=%d\\n", counter);
    return 0;
}
"""

OTHER_SOURCE = "int main(void) { printf(\"other\\n\"); return 0; }"


# ----------------------------------------------------------- hit/miss counts


def test_cache_hit_and_miss_accounting():
    cache = CompileCache()
    program = load(SOURCE)
    gcc = implementation("gcc-O2")
    first = cache.compile(program, gcc)
    assert (cache.stats.hits, cache.stats.misses) == (0, 1)
    second = cache.compile(program, gcc)
    assert (cache.stats.hits, cache.stats.misses) == (1, 1)
    assert second is first
    # A different implementation is a different artifact.
    cache.compile(program, implementation("clang-O2"))
    assert (cache.stats.hits, cache.stats.misses) == (1, 2)
    assert cache.stats.hit_rate == pytest.approx(1 / 3)


def test_build_options_are_part_of_the_key():
    cache = CompileCache()
    program = load(SOURCE)
    gcc = implementation("gcc-O0")
    plain = cache.compile(program, gcc)
    instrumented = cache.compile(program, gcc, instrument_coverage=True)
    sanitized = cache.compile(program, gcc, sanitizer="asan")
    assert plain is not instrumented and plain is not sanitized
    assert cache.stats.misses == 3
    assert cache.compile(program, gcc, instrument_coverage=True) is instrumented


# ------------------------------------------------------------- key stability


def test_key_stable_under_ast_reload():
    """Two load() calls on identical source yield distinct AST objects with
    distinct checker symbol uids — but the same content-addressed key."""
    gcc = implementation("gcc-O1")
    first, second = load(SOURCE), load(SOURCE)
    assert first is not second
    assert program_fingerprint(first) == program_fingerprint(second)
    assert cache_key(first, gcc) == cache_key(second, gcc)


def test_key_distinguishes_programs_and_knobs():
    gcc = implementation("gcc-O1")
    assert program_fingerprint(load(SOURCE)) != program_fingerprint(load(OTHER_SOURCE))
    # Same name, one knob flipped: the fingerprint must not trust the name.
    tweaked = CompilerConfig(**{**gcc.__dict__, "stack_gap": gcc.stack_gap + 4, "extra": {}})
    assert tweaked.name == gcc.name
    assert config_fingerprint(tweaked) != config_fingerprint(gcc)


def test_source_and_reload_hits_through_cache():
    """Reloading identical source and compiling again is a cache hit."""
    cache = CompileCache()
    gcc = implementation("gcc-O3")
    cache.compile(load(SOURCE), gcc)
    again = cache.compile(load(SOURCE), gcc)
    assert cache.stats.hits == 1
    assert again.config is gcc


# ----------------------------------------------------------------- eviction


def test_lru_eviction_at_size_cap():
    cache = CompileCache(max_entries=2)
    program = load(SOURCE)
    o0, o1, o2 = (implementation(name) for name in ("gcc-O0", "gcc-O1", "gcc-O2"))
    cache.compile(program, o0)
    cache.compile(program, o1)
    # Touch O0 so O1 becomes least recently used.
    cache.compile(program, o0)
    assert cache.stats.hits == 1
    cache.compile(program, o2)
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    # O1 was evicted: compiling it again is a miss, and its reinsertion
    # pushes out O0 (least recently used once O2 arrived).
    misses_before = cache.stats.misses
    cache.compile(program, o1)
    assert cache.stats.misses == misses_before + 1
    assert cache.stats.evictions == 2


# --------------------------------------------------------- state isolation


def test_cached_binary_never_leaks_state_between_runs():
    """A cached binary is shared between fork servers, but every run gets a
    fresh memory image: the global counter restarts at zero each run."""
    cache = CompileCache()
    program = load(SOURCE)
    binary = cache.compile(program, implementation("gcc-O2"))
    server = ForkServer(binary)
    runs = [server.run(b"") for _ in range(3)]
    assert [r.stdout for r in runs] == [b"count=1\n"] * 3
    # A second server over the very same cached binary starts fresh too.
    other = ForkServer(cache.compile(program, implementation("gcc-O2")))
    assert other.run(b"").stdout == b"count=1\n"


def test_compdiff_verdicts_identical_with_and_without_cache():
    inputs = [b"", b"x"]
    cold = CompDiff().check_source(SOURCE, inputs)
    cache = CompileCache()
    warm_engine = CompDiff(compile_cache=cache)
    warm1 = warm_engine.check_source(SOURCE, inputs)
    warm2 = warm_engine.check_source(SOURCE, inputs)  # all compiles cached
    for diff_cold, diff_w1, diff_w2 in zip(cold.diffs, warm1.diffs, warm2.diffs):
        assert diff_cold.checksums == diff_w1.checksums == diff_w2.checksums
        assert diff_cold.observations == diff_w1.observations == diff_w2.observations
    assert warm_engine.stats.cache_hits > 0
    assert warm_engine.stats.cache_hit_rate == 0.5


def test_engine_stats_attribute_shared_cache_activity():
    """Two engines sharing one cache each see only their own hit/miss deltas."""
    cache = CompileCache()
    first = CompDiff(compile_cache=cache)
    second = CompDiff(compile_cache=cache)
    first.check_source(SOURCE, [b""])
    second.check_source(SOURCE, [b""])
    assert first.stats.cache_misses == len(first.implementations)
    assert first.stats.cache_hits == 0
    assert second.stats.cache_hits == len(second.implementations)
    assert second.stats.cache_misses == 0
