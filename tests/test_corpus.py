"""Corpus minimization and campaign-stats tests."""

from __future__ import annotations

from repro.fuzzing import CompDiffFuzzer, FuzzerOptions, minimize_corpus, render_stats
from repro.targets import build_target

BRANCHY = """
int main(void) {
    char b[16];
    long n = read_input(b, 16);
    if (n < 1) { printf("empty\\n"); return 0; }
    if (b[0] == 'a') { printf("path-a\\n"); }
    else if (b[0] == 'b') { printf("path-b\\n"); }
    else { printf("path-other\\n"); }
    if (n > 4) { printf("long\\n"); }
    return 0;
}
"""


class TestCorpusMinimization:
    def test_redundant_seeds_dropped(self):
        seeds = [b"a", b"a1", b"a22", b"a333", b"b", b"zz", b"zzzzzz"]
        result = minimize_corpus(BRANCHY, seeds)
        assert result.dropped > 0
        assert len(result.kept) < len(seeds)

    def test_coverage_preserved(self):
        seeds = [b"a", b"a1", b"b", b"zz", b"zzzzzz", b""]
        full = minimize_corpus(BRANCHY, seeds)
        again = minimize_corpus(BRANCHY, full.kept)
        assert again.edges == full.edges
        assert again.dropped == 0

    def test_distinct_paths_all_kept(self):
        seeds = [b"a", b"b", b"z"]
        result = minimize_corpus(BRANCHY, seeds)
        assert len(result.kept) == 3

    def test_smallest_representative_preferred(self):
        seeds = [b"aaaaaa", b"a"]
        result = minimize_corpus(BRANCHY, seeds)
        assert b"a" in result.kept

    def test_duplicates_collapsed(self):
        result = minimize_corpus(BRANCHY, [b"a", b"a", b"a"])
        assert result.original_size == 1

    def test_works_on_generated_target(self):
        target = build_target("libzip")
        # Pad the corpus with junk that adds no coverage beyond bad-magic.
        seeds = target.seeds + [b"junk1", b"junk22", b"junk333"]
        result = minimize_corpus(target.source, seeds)
        assert result.dropped >= 2


class TestCampaignStats:
    def test_render_contains_key_counters(self):
        options = FuzzerOptions(max_executions=400, compdiff_stride=5, rng_seed=2)
        fuzzer = CompDiffFuzzer(BRANCHY, [b"a"], options)
        result = fuzzer.run()
        text = render_stats(result, name="branchy")
        assert "# branchy" in text
        assert "execs_done        : 400" in text
        assert "edges_found" in text
        assert "diff_clusters" in text
