"""Unit tests for the IR dataflow framework: dominators and the worklist solver."""

from __future__ import annotations

import pytest

from repro.ir.builder import FunctionBuilder
from repro.ir.dataflow import (
    DataflowAnalysis,
    dominates,
    dominators,
    immediate_dominators,
    loop_headers,
    solve,
)
from repro.ir.instructions import Const
from repro.minic import load
from repro.minic.types import INT

pytestmark = pytest.mark.analysis


def _diamond():
    """entry -> {left, right} -> join."""
    b = FunctionBuilder("diamond", [], INT)
    cond = b.new_reg()
    b.emit(Const(cond, 1, INT))
    left, right, join = b.new_block("left"), b.new_block("right"), b.new_block("join")
    b.branch(cond, left, right)
    b.switch_to(left)
    b.jump(join)
    b.switch_to(right)
    b.jump(join)
    b.switch_to(join)
    b.ret()
    return b.finish(), left, right, join


def _loop():
    """entry -> header; header -> {body, exit}; body -> header."""
    b = FunctionBuilder("loop", [], INT)
    cond = b.new_reg()
    b.emit(Const(cond, 1, INT))
    header, body, exit_ = b.new_block("header"), b.new_block("body"), b.new_block("exit")
    b.jump(header)
    b.switch_to(header)
    b.branch(cond, body, exit_)
    b.switch_to(body)
    b.jump(header)
    b.switch_to(exit_)
    b.ret()
    return b.finish(), header, body, exit_


class TestDominators:
    def test_diamond(self):
        func, left, right, join = _diamond()
        doms = dominators(func)
        assert doms[join] == {"entry", join}
        assert doms[left] == {"entry", left}
        assert dominates(doms, "entry", join)
        assert not dominates(doms, left, join)
        assert not dominates(doms, right, join)

    def test_diamond_immediate(self):
        func, left, right, join = _diamond()
        idom = immediate_dominators(func)
        assert idom["entry"] is None
        assert idom[left] == "entry"
        assert idom[right] == "entry"
        assert idom[join] == "entry"

    def test_loop(self):
        func, header, body, exit_ = _loop()
        doms = dominators(func)
        assert dominates(doms, header, body)
        assert dominates(doms, header, exit_)
        assert not dominates(doms, body, exit_)
        idom = immediate_dominators(func)
        assert idom[body] == header
        assert idom[exit_] == header

    def test_loop_headers(self):
        func, header, _, _ = _loop()
        assert loop_headers(func) == {header}
        diamond_func, *_ = _diamond()
        assert loop_headers(diamond_func) == set()


class _ReachedVia(DataflowAnalysis):
    """Toy forward analysis: the set of blocks on some path to this point."""

    direction = "forward"

    def boundary(self, func):
        return frozenset()

    def top(self, func):
        return frozenset()

    def join(self, states):
        out = frozenset()
        for state in states:
            out |= state
        return out

    def transfer_block(self, func, label, state):
        return state | {label}


class TestWorklistSolver:
    def test_fixpoint_on_diamond(self):
        func, left, right, join = _diamond()
        result = solve(func, _ReachedVia())
        assert result.converged
        assert result.block_in[join] == {"entry", left, right}
        assert result.block_out[join] == {"entry", left, right, join}

    def test_fixpoint_on_loop(self):
        func, header, body, exit_ = _loop()
        result = solve(func, _ReachedVia())
        assert result.converged
        # The back edge feeds body's contribution into the header.
        assert result.block_in[header] == {"entry", header, body}
        assert result.block_in[exit_] == {"entry", header, body}

    def test_deterministic(self):
        func, *_ = _loop()
        first = solve(func, _ReachedVia())
        second = solve(func, _ReachedVia())
        assert first.block_in == second.block_in
        assert first.iterations == second.iterations

    def test_visit_cap_reports_nonconvergence(self):
        class Diverging(DataflowAnalysis):
            """Strictly-increasing counter: no fixpoint without widening."""

            def boundary(self, func):
                return 0

            def top(self, func):
                return 0

            def join(self, states):
                return max(states)

            def transfer_block(self, func, label, state):
                return state + 1

        func, *_ = _loop()
        result = solve(func, Diverging(), max_visits_per_block=8)
        assert not result.converged

    def test_widening_restores_convergence(self):
        class Widened(DataflowAnalysis):
            CAP = 1 << 10

            def boundary(self, func):
                return 0

            def top(self, func):
                return 0

            def join(self, states):
                return max(states)

            def transfer_block(self, func, label, state):
                return min(state + 1, self.CAP)

            def widen(self, label, old, new, visits):
                return self.CAP if visits > 3 and new > old else new

        func, *_ = _loop()
        result = solve(func, Widened())
        assert result.converged


class TestConvergenceOnRealModules:
    """The acceptance bar: every analysis reaches fixpoint on real programs."""

    def test_oracle_converges_on_targets(self):
        from repro.static_analysis import UBOracle
        from repro.targets import build_target

        oracle = UBOracle()
        for name in ("tcpdump", "readelf", "exiv2", "MuJS", "libxml2"):
            report = oracle.report(load(build_target(name).source), name=name)
            assert report.converged, f"{name}: {report.nonconverged}"

    def test_oracle_converges_on_juliet_sample(self):
        from repro.juliet import build_suite
        from repro.static_analysis import UBOracle

        oracle = UBOracle()
        for case in build_suite(scale=0.003).cases:
            report = oracle.report(load(case.bad_source), name=case.uid)
            assert report.converged, f"{case.uid}: {report.nonconverged}"
