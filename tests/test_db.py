"""The shared corpus database: sidecar identity, dedupe, bank bridge.

:class:`repro.db.CorpusDB` is the cross-campaign substrate under the
per-campaign banks.  Its contracts, pinned here:

* identity — a ``.meta`` magic+CRC sidecar is written on first commit
  and verified on every later open; a missing, corrupt, or
  wrong-schema sidecar refuses the open (docs/ROBUSTNESS.md idiom);
* content addressing — programs key by ``program_fingerprint`` and the
  first write wins;
* ``register_class`` — the cross-shard dedupe primitive: exactly one
  claim per (kind, key) succeeds;
* the bank bridge — a bank imported into the DB exports back
  byte-identically, and :func:`verify_bank_against_db` refuses a bank
  whose manifest references classes the DB has never seen.
"""

from __future__ import annotations

import pytest

from repro.core.compdiff import CompDiff
from repro.db import (
    CLASS_GENERATIVE,
    CLASS_SANCHECK,
    DB_MAGIC,
    DB_SCHEMA_VERSION,
    CorpusDB,
    open_db,
    verify_bank_against_db,
)
from repro.errors import ReproError
from repro.generative.bank import BankedRepro, CorpusBank
from repro.parallel.cache import program_fingerprint
from repro.persist import write_record
from repro.sanval.bank import BankedFinding, FindingBank

SRC_A = "int main(void) { return 1; }"
SRC_B = "int main(void) { return 2; }"


def make_repro(key: str = "cafe0001", source: str = SRC_A) -> BankedRepro:
    return BankedRepro(
        key=key,
        seed=7,
        profile="ub",
        generator_version=1,
        ub_shapes=("uninit",),
        source=source,
        good_source=source.replace("return", "return 0 +"),
        inputs=[b"", b"\x01"],
        checkers=("uninit-read",),
        fingerprints=("deadbeef01",),
        group="uninit",
        partition=(("gcc-O0",), ("gcc-O2",)),
        impl_ref="gcc-O0",
        impl_target="gcc-O2",
    )


def make_finding(key: str = "feed0001", source: str = SRC_B) -> BankedFinding:
    return BankedFinding(
        key=key,
        sanitizer="asan",
        outcome="FN",
        seed="fixture/oob",
        variant="outline",
        kinds=("heap-buffer-overflow",),
        checkers=("oob-write",),
        oracle_fingerprints=("beefcafe02",),
        partition=(("gcc-O0", "gcc-O2"),),
        impl_ref="gcc-O0",
        impl_target="gcc-O2",
        source=source,
        inputs=[b""],
    )


class TestIdentitySidecar:
    def test_sidecar_written_on_close(self, tmp_path):
        db = CorpusDB(tmp_path / "corpus.db")
        db.add_program(SRC_A)
        db.close()
        assert (tmp_path / "corpus.db.meta").exists()
        with open_db(tmp_path / "corpus.db") as reopened:
            assert reopened.stats()["programs"] == 1

    def test_missing_sidecar_refused(self, tmp_path):
        with CorpusDB(tmp_path / "corpus.db") as db:
            db.add_program(SRC_A)
        (tmp_path / "corpus.db.meta").unlink()
        with pytest.raises(ReproError, match="no .meta sidecar"):
            CorpusDB(tmp_path / "corpus.db")

    def test_corrupt_sidecar_refused(self, tmp_path):
        with CorpusDB(tmp_path / "corpus.db"):
            pass
        meta = tmp_path / "corpus.db.meta"
        meta.write_bytes(meta.read_bytes()[:-1] + b"\xff")
        with pytest.raises(ReproError, match="sidecar rejected"):
            CorpusDB(tmp_path / "corpus.db")

    def test_wrong_schema_version_refused(self, tmp_path):
        with CorpusDB(tmp_path / "corpus.db"):
            pass
        write_record(
            str(tmp_path / "corpus.db.meta"),
            DB_MAGIC,
            {"schema_version": DB_SCHEMA_VERSION + 1, "database": "corpus.db"},
        )
        with pytest.raises(ReproError, match="schema version"):
            CorpusDB(tmp_path / "corpus.db")


class TestContentAddressing:
    def test_program_fingerprint_roundtrip(self, tmp_path):
        with CorpusDB(tmp_path / "c.db") as db:
            fp = db.add_program(SRC_A, name="first")
            assert fp == program_fingerprint(SRC_A)
            assert db.has_program(fp)
            assert db.get_source(fp) == SRC_A
            # First write wins: re-adding under a new name is a no-op.
            assert db.add_program(SRC_A, name="second") == fp
            assert db.stats()["programs"] == 1

    def test_verdict_roundtrip(self, tmp_path):
        (diff,) = CompDiff().check_source(SRC_A, [b"\x02"]).diffs
        with CorpusDB(tmp_path / "c.db") as db:
            fp = db.add_program(SRC_A)
            db.record_verdict(fp, diff)
            (stored,) = db.verdicts_for(fp)
        assert stored["input"] == b"\x02"
        assert stored["divergent"] == diff.divergent
        assert stored["checksums"] == {
            name: checksum for name, checksum in diff.checksums.items()
        }

    def test_diagnostics_roundtrip(self, tmp_path):
        with CorpusDB(tmp_path / "c.db") as db:
            fp = db.add_program(SRC_A)
            db.add_diagnostic(fp, "uninit-read", "aa01")
            db.add_diagnostic(fp, "oob-write", "bb02")
            db.add_diagnostic(fp, "uninit-read", "aa01")  # idempotent
            assert db.diagnostics_for(fp) == [
                ("uninit-read", "aa01"),
                ("oob-write", "bb02"),
            ]


class TestRegisterClass:
    def test_first_claim_wins(self, tmp_path):
        with CorpusDB(tmp_path / "c.db") as db:
            fp = db.add_program(SRC_A)
            assert db.register_class(CLASS_GENERATIVE, "k1", fp, {"key": "k1"})
            assert not db.register_class(CLASS_GENERATIVE, "k1", fp, {"key": "k1"})
            # Kinds are separate namespaces.
            assert db.register_class(CLASS_SANCHECK, "k1", fp, {"key": "k1"})
            assert db.class_keys(CLASS_GENERATIVE) == {"k1"}
            assert db.class_record(CLASS_GENERATIVE, "k1") == {"key": "k1"}

    def test_unknown_kind_rejected(self, tmp_path):
        with CorpusDB(tmp_path / "c.db") as db:
            with pytest.raises(ReproError, match="unknown class kind"):
                db.register_class("bogus", "k", "fp", {})


class TestBankBridge:
    def test_corpus_bank_round_trip(self, tmp_path):
        bank = CorpusBank(tmp_path / "bankA")
        original = make_repro()
        assert bank.add(original)
        with CorpusDB(tmp_path / "c.db") as db:
            assert db.import_corpus_bank(bank) == 1
            assert db.import_corpus_bank(bank) == 0  # idempotent
            out = CorpusBank(tmp_path / "bankB")
            assert db.export_corpus_bank(out) == 1
        (restored,) = list(CorpusBank(tmp_path / "bankB"))
        assert restored == original

    def test_finding_bank_round_trip(self, tmp_path):
        bank = FindingBank(tmp_path / "bankA")
        original = make_finding()
        assert bank.add(original)
        with CorpusDB(tmp_path / "c.db") as db:
            assert db.import_finding_bank(bank) == 1
            out = FindingBank(tmp_path / "bankB")
            assert db.export_finding_bank(out) == 1
        (restored,) = list(FindingBank(tmp_path / "bankB"))
        assert restored == original

    def test_verify_bank_against_db(self, tmp_path):
        bank = CorpusBank(tmp_path / "bank")
        bank.add(make_repro())
        with CorpusDB(tmp_path / "c.db") as db:
            with pytest.raises(ReproError, match="does not contain"):
                verify_bank_against_db(tmp_path / "bank", "auto", db)
            db.import_corpus_bank(bank)
            assert verify_bank_against_db(tmp_path / "bank", "auto", db) == 1
            # A missing manifest is an empty bank, not an error.
            assert verify_bank_against_db(tmp_path / "nosuch", "auto", db) == 0


class TestMergeDedupe:
    """The campaign-merge claim helpers behind ``--shards ... --db``."""

    def test_generative_claim_then_skip(self, tmp_path):
        from repro.campaigns.runtime import _db_claim_generative

        repro = make_repro()
        with CorpusDB(tmp_path / "c.db") as db:
            assert _db_claim_generative(db, repro)
            # Another campaign (or shard merge) loses the claim race.
            assert not _db_claim_generative(db, repro)
            fp = program_fingerprint(repro.source)
            assert db.has_program(fp)
            assert db.diagnostics_for(fp) == [("uninit-read", "deadbeef01")]
            record = db.class_record(CLASS_GENERATIVE, repro.key)
            assert record["_source"] == repro.source

    def test_sancheck_claim_then_skip(self, tmp_path):
        from repro.campaigns.runtime import _db_claim_sancheck

        finding = make_finding()
        with CorpusDB(tmp_path / "c.db") as db:
            assert _db_claim_sancheck(db, finding)
            assert not _db_claim_sancheck(db, finding)
            assert db.class_keys(CLASS_SANCHECK) == {finding.key}
