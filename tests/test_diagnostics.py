"""Unified diagnostics, baseline suppression, SARIF export, CLI schema."""

from __future__ import annotations

import json

import pytest

from repro.minic import load
from repro.static_analysis import (
    Baseline,
    Diagnostic,
    UBOracle,
    all_tool_diagnostics,
    diagnostic_sort_key,
    to_diagnostics,
    to_sarif,
    validate_sarif,
)
from repro.static_analysis.base import StaticFinding
from repro.static_analysis.diagnostics import ANALYZE_SCHEMA_VERSION
from repro.static_analysis.sarif import SARIF_VERSION

pytestmark = pytest.mark.analysis

UNINIT = """
int main(void) {
    int x;
    printf("%d\\n", x);
    return 0;
}
"""


def _diag(**overrides) -> Diagnostic:
    fields = dict(
        tool="ub-oracle",
        checker="uninit_read",
        category="UninitMem",
        severity="error",
        line=4,
        function="main",
        message="read of x before any write",
        trace=(),
    )
    fields.update(overrides)
    return Diagnostic(**fields)


class TestUnification:
    def test_ub_finding_conversion(self):
        findings = UBOracle(mode="intra").analyze_source(UNINIT)
        diagnostics = to_diagnostics(findings)
        assert diagnostics
        d = diagnostics[0]
        assert d.tool == "ub-oracle"
        assert d.severity in ("error", "warning")
        assert d.category  # every checker maps to a Table 5 category
        assert len(d.fingerprint) == 16

    def test_static_finding_conversion(self):
        finding = StaticFinding(
            tool="bounds-tool", checker="stack_bounds", line=3, message="m"
        )
        (d,) = to_diagnostics([finding])
        assert d.category == "MemError"
        assert d.severity == "warning"

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            to_diagnostics([object()])

    def test_sort_is_deterministic(self):
        diags = [
            _diag(checker="shift_ub", line=9),
            _diag(checker="uninit_read", line=2),
            _diag(checker="shift_ub", line=3),
        ]
        ordered = sorted(diags, key=diagnostic_sort_key)
        assert [(d.checker, d.line) for d in ordered] == [
            ("shift_ub", 3),
            ("shift_ub", 9),
            ("uninit_read", 2),
        ]

    def test_all_tools_over_program(self):
        diagnostics = all_tool_diagnostics(load(UNINIT))
        assert any(d.tool == "ub-oracle" for d in diagnostics)
        assert diagnostics == sorted(diagnostics, key=diagnostic_sort_key)


class TestFingerprint:
    def test_line_shift_preserves_fingerprint(self):
        # The suppression key survives edits above the finding.
        assert _diag(line=4).fingerprint == _diag(line=40).fingerprint

    def test_distinct_messages_distinct_fingerprints(self):
        assert _diag().fingerprint != _diag(message="other").fingerprint


class TestBaseline:
    def test_round_trip_and_filtering(self, tmp_path):
        known, fresh = _diag(), _diag(checker="null_deref", message="null arg")
        baseline = Baseline.from_diagnostics([known])
        path = tmp_path / "baseline.json"
        baseline.save(path)

        loaded = Baseline.load(path)
        assert known in loaded and fresh not in loaded
        assert loaded.filter([known, fresh]) == [fresh]
        assert loaded.suppressed([known, fresh]) == [known]

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 999, "suppressions": {}}))
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_entries_carry_review_context(self):
        baseline = Baseline.from_diagnostics([_diag()])
        (entry,) = baseline.suppressions.values()
        assert entry["checker"] == "uninit_read"
        assert entry["message"]


class TestSarif:
    def test_export_validates(self):
        diags = [_diag(), _diag(checker="null_deref", trace=("chain:3", "deref:2"))]
        document = to_sarif(diags, artifact_uri="case.c")
        assert document["version"] == SARIF_VERSION
        assert validate_sarif(document) == []

    def test_one_run_per_tool_with_rules(self):
        diags = [_diag(), _diag(tool="bounds-tool", checker="stack_bounds")]
        document = to_sarif(diags, artifact_uri="case.c")
        names = sorted(run["tool"]["driver"]["name"] for run in document["runs"])
        assert names == ["bounds-tool", "ub-oracle"]
        for run in document["runs"]:
            for result in run["results"]:
                rules = run["tool"]["driver"]["rules"]
                assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_trace_becomes_code_flow(self):
        (diag,) = [_diag(trace=("chain:3", "readit:2"))]
        document = to_sarif([diag], artifact_uri="case.c")
        (result,) = document["runs"][0]["results"]
        locations = result["codeFlows"][0]["threadFlows"][0]["locations"]
        # Finding site plus one frame per trace entry.
        assert len(locations) == 3

    def test_validator_rejects_broken_documents(self):
        good = to_sarif([_diag()], artifact_uri="case.c")

        bad_version = json.loads(json.dumps(good))
        bad_version["version"] = "1.0.0"
        assert validate_sarif(bad_version)

        bad_level = json.loads(json.dumps(good))
        bad_level["runs"][0]["results"][0]["level"] = "fatal"
        assert validate_sarif(bad_level)

        bad_index = json.loads(json.dumps(good))
        bad_index["runs"][0]["results"][0]["ruleIndex"] = 7
        assert validate_sarif(bad_index)

        bad_region = json.loads(json.dumps(good))
        location = bad_region["runs"][0]["results"][0]["locations"][0]
        location["physicalLocation"]["region"]["startLine"] = 0
        assert validate_sarif(bad_region)


class TestAnalyzeJsonSchema:
    def test_cli_payload_is_versioned_and_sorted(self, tmp_path, capsys):
        from repro.cli import main

        case = tmp_path / "case.c"
        case.write_text(UNINIT)
        code = main(["analyze", str(case), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == ANALYZE_SCHEMA_VERSION
        assert payload["mode"] == "intra"
        checkers = [f["checker"] for f in payload["findings"]]
        assert checkers == sorted(checkers)
        for finding in payload["findings"]:
            assert set(finding) >= {
                "checker",
                "category",
                "severity",
                "line",
                "function",
                "message",
                "trace",
                "fingerprint",
            }
        assert code in (0, 1)

    def test_cli_sarif_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        case = tmp_path / "case.c"
        case.write_text(UNINIT)
        out = tmp_path / "case.sarif"
        main(["analyze", str(case), "--interproc", "--sarif", str(out)])
        document = json.loads(out.read_text())
        assert validate_sarif(document) == []
