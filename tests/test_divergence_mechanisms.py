"""The paper's unstable-code mechanisms, end to end.

Each test reproduces one of the concrete examples from §1-§2 and §4.3 and
asserts the *structure* of the divergence: which implementation groups
disagree, and in which direction.
"""

from __future__ import annotations

from tests.conftest import outputs_across_impls


def groups_of(out: dict[str, tuple]) -> dict[tuple, list[str]]:
    groups: dict[tuple, list[str]] = {}
    for name, obs in out.items():
        groups.setdefault(obs, []).append(name)
    return groups


class TestListing1SignedOverflowGuard:
    SRC = """
    int dump_data(int offset, int len) {
        if (offset + len < offset) { return -1; }
        printf("dump offset=%d len=%d\\n", offset, len);
        return 0;
    }
    int main(void) {
        int r = dump_data(2147483647 - 100, 101);
        printf("r=%d\\n", r);
        return 0;
    }
    """

    def test_unoptimized_keep_guard_optimized_drop_it(self):
        out = outputs_across_impls(self.SRC)
        assert out["gcc-O0"][0] == b"r=-1\n"
        assert out["clang-O0"][0] == b"r=-1\n"
        for name in ("gcc-O2", "clang-O3", "gcc-Os"):
            assert b"dump offset=" in out[name][0]

    def test_exactly_two_groups(self):
        assert len(groups_of(outputs_across_impls(self.SRC))) == 2


class TestListing2PointerComparison:
    SRC = """
    char section_a[8];
    char section_b[64];
    int main(void) {
        char *saved_start = section_a;
        char *look_for = section_b;
        if (look_for <= saved_start) { printf("before\\n"); }
        else { printf("after\\n"); }
        return 0;
    }
    """

    def test_comparison_depends_on_global_order_policy(self):
        out = outputs_across_impls(self.SRC)
        answers = {obs[0] for obs in out.values()}
        assert answers == {b"before\n", b"after\n"}

    def test_size_sorting_reverses_declaration_order(self):
        out = outputs_across_impls(self.SRC)
        assert out["gcc-O0"][0] != out["gcc-O2"][0]


class TestListing3EvaluationOrder:
    SRC = """
    char *get_str(int v) {
        static char buffer[8];
        buffer[0] = 'A' + v;
        buffer[1] = 0;
        return buffer;
    }
    int main(void) {
        printf("who-is %s tell %s\\n", get_str(1), get_str(2));
        return 0;
    }
    """

    def test_families_disagree(self):
        out = outputs_across_impls(self.SRC)
        # gcc evaluates right-to-left: the first call wins the buffer.
        for name, obs in out.items():
            expected = b"who-is B tell B\n" if name.startswith("gcc") else b"who-is C tell C\n"
            assert obs[0] == expected, name


class TestListing4Uninitialized:
    SRC = """
    int main(void) {
        int l;
        if (input_size() > 0) { l = 42; }
        printf("l=%d\\n", l);
        return 0;
    }
    """

    def test_empty_input_reads_impl_garbage(self):
        out = outputs_across_impls(self.SRC)
        values = {obs[0] for obs in out.values()}
        assert len(values) >= 3  # several distinct fill patterns

    def test_initialized_path_is_stable(self):
        out = outputs_across_impls(self.SRC, input_bytes=b"x")
        assert {obs[0] for obs in out.values()} == {b"l=42\n"}


class TestIntErrorWidening:
    SRC = """
    int main(void) {
        int a = 100000 + (int)input_size();
        int b = 100000;
        long total = a * b;
        printf("total=%ld\\n", total);
        return 0;
    }
    """

    def test_clang_o1_widens_gcc_wraps(self):
        out = outputs_across_impls(self.SRC)
        assert out["gcc-O2"][0] == b"total=1410065408\n"  # wrapped at 32 bits
        assert out["clang-O1"][0] == b"total=10000000000\n"  # widened
        assert out["clang-O0"][0] == out["gcc-O0"][0]  # -O0 agrees: wrap


class TestLineMacro:
    SRC = (
        "int report(int line) { printf(\"line=%d\\n\", line); return 0; }\n"
        "int main(void) {\n"
        "    int rc =\n"
        "        report(__LINE__);\n"
        "    return rc;\n"
        "}\n"
    )

    def test_interpretations_differ_by_family(self):
        out = outputs_across_impls(self.SRC)
        assert out["gcc-O0"][0] == b"line=4\n"  # token line
        assert out["clang-O0"][0] == b"line=3\n"  # statement line


class TestMemErrorLayout:
    SRC = """
    int main(void) {
        char data[16];
        char mark[8] = "SAFE";
        int len = 17 + (int)input_size();
        int i;
        for (i = 0; i < len; i++) { data[i] = 'X'; }
        printf("mark=%s\\n", mark);
        return 0;
    }
    """

    def test_gap_layouts_absorb_small_overflow(self):
        out = outputs_across_impls(self.SRC)
        assert out["gcc-O0"][0] == b"mark=SAFE\n"
        assert out["gcc-O2"][0] != b"mark=SAFE\n"


class TestUseAfterFreeReuse:
    SRC = """
    int main(void) {
        char *p = malloc(16);
        strcpy(p, "OLD");
        free(p);
        char *q = malloc(16);
        strcpy(q, "NEW");
        printf("p=%s\\n", p);
        return 0;
    }
    """

    def test_reusing_allocators_alias(self):
        out = outputs_across_impls(self.SRC)
        assert out["gcc-O0"][0] == b"p=OLD\n"  # bump allocator: stale data
        assert out["gcc-O1"][0] == b"p=NEW\n"  # free-list reuse: aliased


class TestPointerSubtraction:
    SRC = """
    int main(void) {
        char *a = malloc(24);
        char *b = malloc(24);
        printf("delta=%ld\\n", b - a);
        return 0;
    }
    """

    def test_heap_spacing_differs(self):
        out = outputs_across_impls(self.SRC)
        assert len({obs[0] for obs in out.values()}) >= 2


class TestMiscompilations:
    def test_mujs_patterns_fire_only_in_seeded_impls(self):
        src = (
            "int main(void){ unsigned int x = (unsigned int)(input_size() + 100) << 25;"
            ' printf("%u\\n", (x << 1) >> 1); return 0; }'
        )
        out = outputs_across_impls(src)
        buggy = {n for n, o in out.items() if o != out["gcc-O0"]}
        assert buggy == {"gcc-O2", "gcc-O3"}


class TestFloatImprecision:
    def test_pow_exp2_divergence_limited_to_clang_o3(self):
        src = 'int main(void){ printf("%.17g\\n", pow(2.0, 1.5 + input_size())); return 0; }'
        out = outputs_across_impls(src)
        buggy = {n for n, o in out.items() if o != out["gcc-O0"]}
        assert buggy == {"clang-O3"}

    def test_f32_extended_intermediate_divergence(self):
        src = (
            "int main(void){ float acc = 1.5f; int i;"
            " for (i = 0; i < 9; i++) { acc = acc * 1.1f + 0.3f; }"
            ' printf("%.9g\\n", acc); return 0; }'
        )
        out = outputs_across_impls(src)
        assert out["gcc-O3"] != out["gcc-O2"]  # extended vs per-op rounding


class TestStability:
    """Defined programs must be bit-identical across all ten builds."""

    def test_quicksort_is_stable(self):
        src = """
        void sort(int *a, int n) {
            int i; int j;
            for (i = 0; i < n; i++) {
                for (j = i + 1; j < n; j++) {
                    if (a[j] < a[i]) { int t = a[i]; a[i] = a[j]; a[j] = t; }
                }
            }
        }
        int main(void) {
            int data[8] = {5, 2, 8, 1, 9, 3, 7, 4};
            sort(data, 8);
            int i;
            for (i = 0; i < 8; i++) { printf("%d ", data[i]); }
            printf("\\n");
            return data[0];
        }
        """
        out = outputs_across_impls(src)
        assert len(groups_of(out)) == 1
        assert out["gcc-O0"][0] == b"1 2 3 4 5 7 8 9 \n"

    def test_string_processing_is_stable(self):
        src = """
        int main(void) {
            char buf[64];
            long n = read_input(buf, 63);
            buf[n] = 0;
            long i;
            int vowels = 0;
            for (i = 0; i < n; i++) {
                char c = buf[i];
                if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') { vowels++; }
            }
            printf("%ld bytes, %d vowels, len %ld\\n", n, vowels, strlen(buf));
            return 0;
        }
        """
        out = outputs_across_impls(src, input_bytes=b"differential testing")
        assert len(groups_of(out)) == 1

    def test_struct_heap_program_is_stable(self):
        src = """
        struct Node { int value; struct Node *next; };
        int main(void) {
            struct Node *head = NULL;
            int i;
            for (i = 0; i < 5; i++) {
                struct Node *n = (struct Node*)malloc(16);
                n->value = i * i;
                n->next = head;
                head = n;
            }
            int sum = 0;
            while (head != NULL) { sum += head->value; head = head->next; }
            printf("sum=%d\\n", sum);
            return 0;
        }
        """
        out = outputs_across_impls(src)
        assert len(groups_of(out)) == 1
        assert out["gcc-O0"][0] == b"sum=30\n"
