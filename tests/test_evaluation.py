"""Evaluation-driver tests (small-scale versions of the paper experiments)."""

from __future__ import annotations

import pytest

from repro.evaluation import (
    evaluate_juliet,
    evaluate_realworld,
    figure_from_vectors,
    render_figure,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
)
from repro.juliet import build_suite
from repro.targets import build_target


@pytest.fixture(scope="module")
def tiny_juliet():
    suite = build_suite(scale=0.003)
    return suite, evaluate_juliet(suite, fuel=150_000)


@pytest.fixture(scope="module")
def tiny_realworld():
    targets = [build_target("tcpdump"), build_target("readelf"), build_target("exiv2")]
    return evaluate_realworld(
        targets, max_executions=3000, compdiff_stride=3, rng_seed=7
    )


class TestJulietEvaluation:
    def test_compdiff_has_zero_false_positives(self, tiny_juliet):
        _, evaluation = tiny_juliet
        assert evaluation.compdiff_false_positives == 0

    def test_all_groups_present(self, tiny_juliet):
        _, evaluation = tiny_juliet
        assert len(evaluation.per_group) == 10

    def test_detection_rates_within_bounds(self, tiny_juliet):
        _, evaluation = tiny_juliet
        for group, tools in evaluation.per_group.items():
            for tool, counts in tools.items():
                assert 0 <= counts.detection_rate <= 1, (group, tool)
                assert 0 <= counts.fp_rate <= 1

    def test_unique_bugs_exist(self, tiny_juliet):
        _, evaluation = tiny_juliet
        assert sum(evaluation.unique_vs_sanitizers.values()) > 0

    def test_ptr_sub_is_compdiff_exclusive(self, tiny_juliet):
        _, evaluation = tiny_juliet
        row = evaluation.per_group["ptr_sub"]
        assert row["compdiff"].detection_rate == 1.0
        assert row["sanitizers_total"].detection_rate == 0.0

    def test_bug_vectors_only_for_detected(self, tiny_juliet):
        _, evaluation = tiny_juliet
        detected_total = sum(
            tools["compdiff"].detected for tools in evaluation.per_group.values()
        )
        assert len(evaluation.bug_vectors) == detected_total

    def test_render_table2(self, tiny_juliet):
        suite, _ = tiny_juliet
        table = render_table2(suite)
        assert "CWE-590" in table

    def test_render_table3(self, tiny_juliet):
        _, evaluation = tiny_juliet
        table = render_table3(evaluation)
        assert "CompDiff" in table and "Memory error" in table
        assert "Finding 5" in table


class TestSubsetEvaluation:
    def test_figure1_structure(self, tiny_juliet):
        _, evaluation = tiny_juliet
        figure = figure_from_vectors(evaluation.bug_vectors, evaluation.implementations)
        sizes = sorted(figure.summaries)
        assert sizes == list(range(2, 11))
        # Monotone best-count in subset size (§4.2).
        bests = [figure.summaries[s].best_count for s in sizes]
        assert bests == sorted(bests)
        # Full set detects everything that was detected.
        assert figure.summaries[10].best_count == len(evaluation.bug_vectors)

    def test_best_pair_is_cross_family(self, tiny_juliet):
        _, evaluation = tiny_juliet
        figure = figure_from_vectors(evaluation.bug_vectors, evaluation.implementations)
        best = figure.summaries[2].best_subset
        families = {name.split("-")[0] for name in best}
        assert families == {"gcc", "clang"}

    def test_worst_pair_is_a_similar_configuration(self, tiny_juliet):
        # At tiny suite scale the exact worst pair varies, but it is always
        # a "similar implementations" pair: same family, or both
        # unoptimizing (§4.2's explanation for poor subsets).
        _, evaluation = tiny_juliet
        figure = figure_from_vectors(evaluation.bug_vectors, evaluation.implementations)
        worst = figure.summaries[2].worst_subset
        families = {name.split("-")[0] for name in worst}
        levels = {name.split("-")[1] for name in worst}
        assert len(families) == 1 or levels == {"O0"} or len(levels) == 1

    def test_render(self, tiny_juliet):
        _, evaluation = tiny_juliet
        figure = figure_from_vectors(evaluation.bug_vectors, evaluation.implementations)
        text = render_figure(figure, "Figure 1")
        assert "best  size-2 subset" in text


class TestRealWorldEvaluation:
    def test_finds_most_seeded_bugs(self, tiny_realworld):
        found = tiny_realworld.found_bugs()
        total = tiny_realworld.all_bugs()
        assert len(found) >= len(total) - 2

    def test_eval_order_bugs_not_sanitizer_visible(self, tiny_realworld):
        for tool in ("asan", "ubsan", "msan"):
            sites = tiny_realworld.sanitizer_found_sites(tool)
            eval_order = [b for b in tiny_realworld.all_bugs() if b.category == "EvalOrder"]
            assert all(b.site not in sites for b in eval_order)

    def test_bug_vectors_map_to_seeded_sites(self, tiny_realworld):
        vectors = tiny_realworld.bug_vectors()
        seeded = {b.site for b in tiny_realworld.all_bugs()}
        assert set(vectors) <= seeded

    def test_render_table5(self, tiny_realworld):
        table = render_table5(tiny_realworld)
        assert "EvalOrder" in table and "Found" in table

    def test_render_table6(self, tiny_realworld):
        table = render_table6(tiny_realworld)
        assert "MemError" in table and "Total" in table

    def test_render_table4(self):
        table = render_table4([build_target("tcpdump")])
        assert "tcpdump" in table and "4.99.1" in table
