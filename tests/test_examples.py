"""The example scripts must run end to end."""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", [], capsys)
    assert "unstable code detected: True" in out
    assert "Output discrepancy" in out


def test_gallery(capsys):
    out = run_example("unstable_code_gallery.py", [], capsys)
    assert out.count("unstable: True") == 6
    assert "Listing 3" in out


def test_fuzz_tcpdump(capsys):
    out = run_example("fuzz_tcpdump_sim.py", ["2500"], capsys)
    assert "diff inputs saved:" in out
    assert "FOUND" in out


def test_subset_selection(capsys):
    out = run_example("subset_selection.py", ["0.003"], capsys)
    assert "recommendation at a 2x budget" in out
    assert "avoid similar configurations" in out


def test_triage_workflow(capsys):
    out = run_example("triage_workflow.py", [], capsys)
    assert "discrepancy clusters" in out
    assert "minimized:" in out
    assert "trace alignment" in out
    assert "Output discrepancy" in out


@pytest.mark.slow
def test_juliet_campaign(capsys):
    out = run_example("juliet_campaign.py", ["0.003"], capsys)
    assert "CompDiff" in out
    assert "best  size-2 subset" in out
