"""Tests for the §5 future-work extensions: trace-alignment localization,
divergence-guided feedback, and the command-line interface."""

from __future__ import annotations

import pathlib

import pytest

from repro.cli import main as cli_main
from repro.core.localize import Localization, align_traces, localize
from repro.fuzzing import CompDiffFuzzer, FuzzerOptions

GUARD = """
int dump_data(int offset, int len) {
    if (offset + len < offset) { return -1; }
    printf("dump offset=%d len=%d\\n", offset, len);
    return 0;
}
int main(void) {
    printf("rc=%d\\n", dump_data(2147483647 - 100, 101));
    return 0;
}
"""


class TestAlignTraces:
    def test_identical_traces_do_not_diverge(self):
        outcome = align_traces((1, 2, 3), (1, 2, 3), "a", "b")
        assert not outcome.diverged
        assert outcome.common_prefix_length == 3
        assert outcome.last_common_line == 3

    def test_divergence_point_found(self):
        outcome = align_traces((1, 2, 3, 4), (1, 2, 9), "a", "b")
        assert outcome.diverged
        assert outcome.last_common_line == 2
        assert outcome.next_line_a == 3
        assert outcome.next_line_b == 9

    def test_prefix_of_other_counts_as_divergence(self):
        outcome = align_traces((1, 2), (1, 2, 3), "a", "b")
        assert outcome.diverged
        assert outcome.next_line_a is None
        assert outcome.next_line_b == 3

    def test_divergence_at_entry(self):
        outcome = align_traces((5,), (6,), "a", "b")
        assert outcome.last_common_line == 0
        assert outcome.common_prefix_length == 0


class TestLocalize:
    def test_guard_fold_localized_to_guard_line(self):
        outcome = localize(GUARD, b"", "gcc-O0", "clang-O3")
        assert outcome.diverged
        # The last common line is the function head; -O0 proceeds *into*
        # the guard body while -O3 skips straight to the dump.
        assert outcome.next_line_a in (2, 3)
        assert outcome.next_line_b in (3, 4)
        assert outcome.next_line_a != outcome.next_line_b

    def test_stable_program_does_not_diverge_observably(self):
        stable = 'int main(void){ int i; int s = 0; for (i = 0; i < 4; i++) { s += i; } printf("%d", s); return 0; }'
        outcome = localize(stable, b"", "gcc-O0", "gcc-O1")
        # Traces may differ in *length* due to optimization, but the
        # render must not crash and traces must share a prefix.
        assert outcome.common_prefix_length >= 1

    def test_render_includes_source_lines(self):
        outcome = localize(GUARD, b"", "gcc-O0", "clang-O3")
        text = outcome.render(GUARD)
        assert "trace alignment" in text
        # Each reported line is echoed with its source text: -O0 steps
        # into dump_data while -O3 (guard folded away) goes straight to
        # the dump printf.
        assert "int dump_data(int offset, int len) {" in text
        assert "dump offset=%d len=%d" in text

    def test_localization_is_dataclass_frozen(self):
        outcome = localize(GUARD, b"", "gcc-O0", "gcc-O2")
        with pytest.raises(Exception):
            outcome.impl_a = "x"  # type: ignore[misc]


DIVERGENCE_TARGET = """
int main(void) {
    char buf[32];
    long n = read_input(buf, 32);
    if (n < 4) { printf("short\\n"); return 1; }
    if ((buf[0] & 255) != 90) { printf("nope\\n"); return 1; }
    int x;
    if (buf[1] == 3) { x = 5; }
    printf("x=%d\\n", x);
    return 0;
}
"""


class TestDivergenceFeedback:
    def test_divergent_inputs_join_the_pool(self):
        options = FuzzerOptions(
            max_executions=1500,
            compdiff_stride=2,
            rng_seed=4,
            divergence_feedback=True,
        )
        fuzzer = CompDiffFuzzer(DIVERGENCE_TARGET, [b"Z\x00ab"], options)
        result = fuzzer.run()
        assert result.diffs_found > 0
        pool_inputs = {seed.data for seed in fuzzer.pool.seeds}
        divergent_inputs = {diff.input for diff in result.diffs}
        assert pool_inputs & divergent_inputs

    def test_disabled_by_default(self):
        options = FuzzerOptions(max_executions=300, compdiff_stride=2, rng_seed=4)
        fuzzer = CompDiffFuzzer(DIVERGENCE_TARGET, [b"Z\x00ab"], options)
        fuzzer.run()
        assert fuzzer._seen_signatures == set()


class TestCli:
    @pytest.fixture()
    def guard_file(self, tmp_path: pathlib.Path) -> str:
        path = tmp_path / "guard.c"
        path.write_text(GUARD)
        return str(path)

    def test_check_divergent_exits_1(self, guard_file, capsys):
        code = cli_main(["check", guard_file])
        assert code == 1
        assert "Output discrepancy" in capsys.readouterr().out

    def test_check_stable_exits_0(self, tmp_path, capsys):
        path = tmp_path / "ok.c"
        path.write_text("int main(void){ printf(\"hi\\n\"); return 0; }")
        assert cli_main(["check", str(path)]) == 0
        assert "stable" in capsys.readouterr().out

    def test_check_with_subset(self, guard_file, capsys):
        code = cli_main(["check", guard_file, "--impls", "gcc-O0,clang-O3"])
        assert code == 1

    def test_run_prints_program_output(self, guard_file, capsys):
        code = cli_main(["run", guard_file, "--impl", "gcc-O0"])
        out = capsys.readouterr().out
        assert "rc=-1" in out
        assert code == 0

    def test_run_optimized_differs(self, guard_file, capsys):
        cli_main(["run", guard_file, "--impl", "clang-O2"])
        assert "dump offset" in capsys.readouterr().out

    def test_localize_command(self, guard_file, capsys):
        code = cli_main(
            ["localize", guard_file, "--impl-a", "gcc-O0", "--impl-b", "clang-O3"]
        )
        assert code == 0
        assert "trace alignment" in capsys.readouterr().out

    def test_fuzz_command(self, tmp_path, capsys):
        path = tmp_path / "t.c"
        path.write_text(DIVERGENCE_TARGET)
        code = cli_main(["fuzz", str(path), "--execs", "1200", "--input", "Z\x00ab"])
        out = capsys.readouterr().out
        assert "execs_done        : 1200" in out
        assert code in (0, 1)

    def test_impls_command(self, capsys):
        assert cli_main(["impls"]) == 0
        out = capsys.readouterr().out
        assert "gcc-O0" in out and "clang-Os" in out

    def test_targets_command(self, capsys):
        assert cli_main(["targets"]) == 0
        assert "tcpdump" in capsys.readouterr().out

    def test_input_hex(self, tmp_path, capsys):
        path = tmp_path / "echo.c"
        path.write_text(
            'int main(void){ printf("%d", input_byte(0)); return 0; }'
        )
        cli_main(["run", str(path), "--input-hex", "41"])
        assert capsys.readouterr().out.startswith("65")


class TestIrCli:
    def test_ir_dump(self, tmp_path, capsys):
        path = tmp_path / "p.c"
        path.write_text("int main(void){ return 1 + 2; }")
        assert cli_main(["ir", str(path), "--impl", "gcc-O2"]) == 0
        out = capsys.readouterr().out
        assert "func @main" in out
        assert "ret" in out

    def test_ir_dump_shows_optimization_difference(self, tmp_path, capsys):
        path = tmp_path / "p.c"
        path.write_text('int main(void){ int x = 3 * 4; printf("%d", x); return 0; }')
        cli_main(["ir", str(path), "--impl", "gcc-O0"])
        unoptimized = capsys.readouterr().out
        cli_main(["ir", str(path), "--impl", "gcc-O2"])
        optimized = capsys.readouterr().out
        assert "mul" in unoptimized
        assert "mul" not in optimized
