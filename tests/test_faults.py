"""Fault-injection suite: worker recovery must never change verdicts.

Drives the supervised pool (`repro.parallel.supervisor`) through seeded
crash/hang/corrupt schedules (`repro.parallel.faults`) and pins the ISSUE 3
recovery invariants:

* transient faults (crash, hang, corrupted reply) are retried and the
  final verdicts are byte-identical to a fault-free serial run;
* recovery accounting (restarts, retries) is deterministic for a given
  plan — no dependence on worker interleaving;
* poison tasks are quarantined and degrade the affected program's
  cross-check to the surviving k-1 implementations, flagged in the
  ``DiffResult`` rather than aborting the batch;
* wall-clock deadline expiry (``Status.DEADLINE``) is distinguished from
  fuel exhaustion (``Status.TIMEOUT``), so the RQ6 fuel-escalation retry
  never re-runs a hung task.
"""

from __future__ import annotations

import pytest

from repro.core.compdiff import CompDiff
from repro.errors import EngineConfigError, ReproError
from repro.juliet import build_suite
from repro.parallel import FaultPlan, ParallelEngine, SupervisorPolicy
from repro.parallel.engine import _split_evenly
from repro.parallel.faults import CORRUPT, CRASH, HANG
from repro.vm.execution import deadline_result

pytestmark = [pytest.mark.parallel, pytest.mark.faults]

#: Small recovery knobs so injected hangs/crashes resolve in well under a
#: second per recovery round instead of the production 30s deadline.
FAST_POLICY = SupervisorPolicy(
    max_attempts=3,
    task_deadline=0.6,
    backoff_base=0.01,
    backoff_max=0.05,
    poll_interval=0.002,
)

#: With 3 jobs and 2 workers the engine scatters exactly one task per job
#: (seqs 0..2).  Seed 3 at rate 0.5 faults seqs 1 and 2 on their first
#: attempt for every fault kind — verified by test_fault_plan_is_pure.
PLAN_SEED = 3
FAULTED_SEQS = {1, 2}


def _corpus() -> list[tuple[str, list[bytes], str]]:
    suite = build_suite(scale=0.002)
    return [
        (case.bad_source, list(case.inputs), case.uid) for case in suite.cases[:3]
    ]


def _outcome_signature(outcome):
    """Everything a verdict consumer can observe, in comparable form."""
    return [
        (
            diff.input,
            diff.checksums,
            diff.observations,
            diff.divergent,
            diff.groups(),
            diff.dropped,
        )
        for diff in outcome.diffs
    ]


@pytest.fixture(scope="module")
def corpus():
    return _corpus()


@pytest.fixture(scope="module")
def serial_signatures(corpus):
    engine = CompDiff()
    return [_outcome_signature(o) for o in engine.check_batch(corpus)]


def _run_with_plan(corpus, plan, policy=FAST_POLICY):
    with CompDiff(workers=2, policy=policy, fault_plan=plan) as engine:
        outcomes = engine.check_batch(corpus)
        return [_outcome_signature(o) for o in outcomes], engine.stats


def test_fault_plan_is_pure():
    """Decisions depend only on (seed, seq, attempt) — and the module's
    pinned schedule for seed 3 actually faults seqs 1 and 2."""
    for kind, rates in ((CRASH, dict(crash=0.5)), (HANG, dict(hang=0.5)),
                        (CORRUPT, dict(corrupt=0.5))):
        plan = FaultPlan(seed=PLAN_SEED, **rates)
        decisions = {seq: plan.decide(seq, 0) for seq in range(3)}
        assert {seq for seq, d in decisions.items() if d is not None} == FAULTED_SEQS
        assert all(d == kind for d in decisions.values() if d is not None)
        # Pure: re-evaluation never drifts; later attempts are fault-free.
        assert decisions == {seq: plan.decide(seq, 0) for seq in range(3)}
        assert all(plan.decide(seq, 1) is None for seq in range(3))


def test_crash_recovery_preserves_verdicts(corpus, serial_signatures):
    """Workers killed mid-task (os._exit) are restarted and their tasks
    re-dispatched; verdicts match a fault-free serial run exactly."""
    plan = FaultPlan(seed=PLAN_SEED, crash=0.5)
    signatures, stats = _run_with_plan(corpus, plan)
    assert signatures == serial_signatures
    assert stats.worker_restarts >= 1, "crash faults must have fired"
    assert stats.task_retries >= len(FAULTED_SEQS)
    assert stats.quarantined == 0


def test_hang_recovery_preserves_verdicts(corpus, serial_signatures):
    """Hung workers trip the wall-clock stall deadline, the pool is torn
    down to reclaim them, and the re-dispatch reproduces serial verdicts."""
    plan = FaultPlan(seed=PLAN_SEED, hang=0.5)
    signatures, stats = _run_with_plan(corpus, plan)
    assert signatures == serial_signatures
    assert stats.worker_restarts >= 1, "hang faults must have tripped the deadline"
    assert stats.task_retries >= len(FAULTED_SEQS)
    assert stats.quarantined == 0


def test_corrupt_reply_detected_and_retried(corpus, serial_signatures):
    """A reply whose checksum does not match its payload is treated like a
    lost task: re-dispatched, never folded into the verdicts."""
    plan = FaultPlan(seed=PLAN_SEED, corrupt=0.5)
    signatures, stats = _run_with_plan(corpus, plan)
    assert signatures == serial_signatures
    assert stats.task_retries >= len(FAULTED_SEQS), "corrupt faults must have fired"
    assert stats.quarantined == 0


def test_recovery_accounting_is_deterministic(corpus):
    """The same plan over the same corpus yields the same verdicts AND the
    same recovery counters — schedules are seeded, never time-dependent."""
    plan = FaultPlan(seed=PLAN_SEED, crash=0.3, corrupt=0.2)
    first_sigs, first_stats = _run_with_plan(corpus, plan)
    second_sigs, second_stats = _run_with_plan(corpus, plan)
    assert first_sigs == second_sigs
    assert first_stats.worker_restarts == second_stats.worker_restarts
    assert first_stats.task_retries == second_stats.task_retries
    assert first_stats.quarantined == second_stats.quarantined


def test_poison_task_quarantined_with_k1_degradation(corpus, serial_signatures):
    """A task that faults on *every* attempt is quarantined; its chunk of
    implementations is dropped from the cross-check (flagged, k-1) and the
    surviving implementations' verdicts still match the serial run."""
    # One job with 2 workers scatters two impl-chunks: seq 0 covers the
    # first half of the implementations, seq 1 the second.
    policy = SupervisorPolicy(
        max_attempts=2, task_deadline=0.6, backoff_base=0.01,
        backoff_max=0.05, poll_interval=0.002,
    )
    plan = FaultPlan(seed=0, poison={0: CRASH})
    with CompDiff(workers=2, policy=policy, fault_plan=plan) as engine:
        outcome = engine.check_batch(corpus[:1])[0]
        stats = engine.stats
        dropped_expected = tuple(
            config.name for config in engine.implementations[:5]
        )
        quarantine_log = list(engine._engine.quarantine_log)
    assert stats.quarantined == 1
    assert len(quarantine_log) == 1
    assert quarantine_log[0].attempts == policy.max_attempts
    for name in dropped_expected:
        assert stats.degraded.get(name, 0) >= 1
    for diff, serial in zip(outcome.diffs, serial_signatures[0]):
        assert diff.dropped == dropped_expected
        assert diff.degraded
        # Surviving implementations reproduce the serial checksums exactly.
        serial_checksums = serial[1]
        assert set(diff.checksums) == set(serial_checksums) - set(dropped_expected)
        for name, checksum in diff.checksums.items():
            assert checksum == serial_checksums[name]


def test_deadline_cells_are_never_refueled(corpus):
    """Satellite: Status.DEADLINE (wall-clock) is not Status.TIMEOUT
    (fuel), so quarantined cells never trigger RQ6 fuel-escalation."""
    placeholder = deadline_result("gcc-O0", "worker hung")
    assert placeholder.deadline_expired
    assert not placeholder.timed_out  # fuel-only predicate
    assert placeholder.stderr == b"worker hung"
    policy = SupervisorPolicy(
        max_attempts=1, task_deadline=0.6, backoff_base=0.01,
        poll_interval=0.002,
    )
    plan = FaultPlan(seed=0, poison={0: HANG})
    with CompDiff(workers=2, policy=policy, fault_plan=plan) as engine:
        engine.check_batch(corpus[:1])
        # The dropped half produced only DEADLINE placeholders; none may
        # have entered the fuel-retry schedule.
        assert engine.stats.timeout_retries == 0
        assert engine.stats.quarantined == 1


def test_all_implementations_quarantined_is_fatal(corpus):
    """Degradation stops at k-1: losing every implementation for a job is
    a hard error, not a silent 'no divergence' verdict."""
    policy = SupervisorPolicy(
        max_attempts=1, task_deadline=0.6, backoff_base=0.01,
        poll_interval=0.002,
    )
    plan = FaultPlan(seed=0, poison={0: CRASH, 1: CRASH})
    with CompDiff(workers=2, policy=policy, fault_plan=plan) as engine:
        with pytest.raises(ReproError, match="fewer than two"):
            engine.check_batch(corpus[:1])


# ------------------------------------------------------- validation satellites


def test_supervisor_policy_validation():
    with pytest.raises(EngineConfigError):
        SupervisorPolicy(max_attempts=0)
    with pytest.raises(EngineConfigError):
        SupervisorPolicy(task_deadline=0.0)
    policy = SupervisorPolicy(backoff_base=0.5, backoff_factor=2.0, backoff_max=1.5)
    assert policy.backoff(0) == 0.5
    assert policy.backoff(1) == 1.0
    assert policy.backoff(10) == 1.5  # capped


def test_fault_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan(crash=0.7, hang=0.7)  # rates must sum to <= 1
    with pytest.raises(ValueError):
        FaultPlan(poison={0: "segfault"})  # unknown fault kind


def test_engine_config_validation(corpus):
    implementations = CompDiff().implementations
    with pytest.raises(EngineConfigError):
        ParallelEngine(implementations, fuel=1000, workers=1)
    with pytest.raises(EngineConfigError):
        ParallelEngine((), fuel=1000, workers=2)
    # EngineConfigError doubles as ValueError for backward compatibility.
    assert issubclass(EngineConfigError, ValueError)
    assert issubclass(EngineConfigError, ReproError)
    with ParallelEngine(implementations, fuel=1000, workers=2) as engine:
        with pytest.raises(EngineConfigError):
            engine.run_batch(None)
        assert engine.run_batch([]) == []


def test_split_evenly_validation():
    implementations = CompDiff().implementations
    with pytest.raises(EngineConfigError):
        _split_evenly(implementations, 0)
    with pytest.raises(EngineConfigError):
        _split_evenly((), 2)
    chunks = _split_evenly(implementations, 3)
    assert sum(len(chunk) for chunk in chunks) == len(implementations)
    assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1


def test_job_with_no_inputs_is_a_no_op(corpus):
    src, _inputs, name = corpus[0]
    with CompDiff(workers=2) as engine:
        outcome = engine.check_batch([(src, [], name)])[0]
    assert outcome.diffs == []
    assert not outcome.divergent
