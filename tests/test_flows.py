"""Juliet flow-variant scaffolding tests."""

from __future__ import annotations

import pytest

from repro.juliet.flows import FLOWS, assemble, flow_int
from repro.minic import load

from tests.conftest import stdout_of

BODY = """int main(void) {
    {flow}
    printf("%d\\n", idx);
    return 0;
}"""


class TestFlowVariants:
    @pytest.mark.parametrize("flow", FLOWS)
    def test_every_flow_delivers_the_value(self, flow):
        source = assemble(flow_int(flow, "idx", "37", "t1"), BODY)
        load(source)  # must compile
        assert stdout_of(source) == b"37\n"

    @pytest.mark.parametrize("flow", FLOWS)
    def test_flows_are_semantics_preserving_across_impls(self, flow):
        source = assemble(flow_int(flow, "idx", "21", "t2"), BODY)
        assert stdout_of(source, "clang-O3") == b"21\n"

    def test_loop_flow_accumulates(self):
        source = assemble(flow_int("loop", "idx", "5", "t3"), BODY)
        assert "for (" in source
        assert stdout_of(source) == b"5\n"

    def test_func_flow_defines_helper(self):
        parts = flow_int("func", "idx", "9", "t4")
        assert "source_t4" in parts.helpers
        assert stdout_of(assemble(parts, BODY)) == b"9\n"

    def test_global_flag_flow_defines_global(self):
        parts = flow_int("global_flag", "idx", "9", "t5")
        assert "g_flag_t5" in parts.globals

    def test_ptr_alias_flow_uses_deref(self):
        parts = flow_int("ptr_alias", "idx", "9", "t6")
        assert "*alias_t6" in parts.stmts

    def test_unknown_flow_rejected(self):
        with pytest.raises(ValueError):
            flow_int("teleport", "idx", "9", "t7")

    def test_assemble_orders_sections(self):
        parts = flow_int("global_flag", "idx", "3", "t8")
        source = assemble(parts, BODY, extra_globals="int other;", extra_helpers="int h(void){return 0;}")
        assert source.index("int other;") < source.index("g_flag_t8")
        assert source.index("int h(void)") < source.index("int main")

    def test_uids_keep_flows_independent(self):
        a = flow_int("func", "x", "1", "aa")
        b = flow_int("func", "y", "2", "bb")
        combined_body = """int main(void) {
    {flow}
    printf("%d\\n", x + y);
    return 0;
}"""
        source = (
            a.helpers + "\n\n" + b.helpers + "\n\n"
            + combined_body.replace("{flow}", a.stmts + "\n    " + b.stmts)
        )
        assert stdout_of(source) == b"3\n"
