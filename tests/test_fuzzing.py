"""Fuzzer component and campaign tests."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzzing import CompDiffFuzzer, CoverageMap, FuzzerOptions, MutationEngine, SeedPool
from repro.fuzzing.mutators import MAX_INPUT_SIZE, build_dictionary


class TestCoverageMap:
    def test_new_edge_detected_once(self):
        cov = CoverageMap()
        cov.reset_trace()
        cov.record_edge(1, 2)
        assert cov.has_new_bits()
        cov.reset_trace()
        cov.record_edge(1, 2)
        assert not cov.has_new_bits()

    def test_hit_count_bucketing(self):
        cov = CoverageMap()
        cov.reset_trace()
        cov.record_edge(1, 2)
        cov.has_new_bits()
        cov.reset_trace()
        for _ in range(5):  # bucket 4-7 is new relative to bucket 1
            cov.record_edge(1, 2)
        assert cov.has_new_bits()

    def test_bucket_values(self):
        assert CoverageMap.bucket(1) == 1
        assert CoverageMap.bucket(3) == 2
        assert CoverageMap.bucket(5) == 4
        assert CoverageMap.bucket(200) == 128

    def test_edges_covered_counts_unique(self):
        cov = CoverageMap()
        cov.reset_trace()
        cov.record_edge(100, 2)
        cov.record_edge(7, 900)
        cov.has_new_bits()
        assert cov.edges_covered == 2

    def test_edge_is_direction_sensitive(self):
        cov = CoverageMap()
        cov.reset_trace()
        cov.record_edge(10, 20)
        cov.record_edge(20, 10)
        assert len(cov.trace) == 2


class TestMutators:
    def engine(self, dictionary=None) -> MutationEngine:
        return MutationEngine(random.Random(42), dictionary)

    def test_mutate_changes_input_usually(self):
        engine = self.engine()
        seed = b"hello world, this is a seed"
        changed = sum(engine.mutate(seed) != seed for _ in range(50))
        assert changed > 40

    def test_mutate_never_returns_empty(self):
        engine = self.engine()
        assert engine.mutate(b"") != b""

    @given(st.binary(max_size=128), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_mutate_respects_size_bound(self, seed, rng_seed):
        engine = MutationEngine(random.Random(rng_seed))
        assert len(engine.mutate(seed)) <= MAX_INPUT_SIZE

    @given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_splice_respects_size_bound(self, a, b):
        engine = self.engine()
        assert len(engine.splice(a, b)) <= MAX_INPUT_SIZE

    def test_dictionary_tokens_appear(self):
        engine = self.engine([b"MAGIC"])
        hits = sum(b"MAGIC" in engine.mutate(b"xxxxxxxx") for _ in range(300))
        assert hits > 0

    def test_build_dictionary_widths_and_orders(self):
        tokens = build_dictionary([0x4142], [b"HDR"])
        assert b"BA" in tokens and b"AB" in tokens
        assert b"HDR" in tokens

    def test_build_dictionary_skips_empty_and_dedupes(self):
        tokens = build_dictionary([65, 65], [b"", b"x"])
        assert tokens.count(b"A") == 1
        assert b"" not in tokens


class TestSeedPool:
    def test_dedupes(self):
        pool = SeedPool(random.Random(1))
        assert pool.add(b"a") is not None
        assert pool.add(b"a") is None
        assert len(pool) == 1

    def test_select_prefers_fresh_small_seeds(self):
        pool = SeedPool(random.Random(1))
        pool.add(b"a")
        big = pool.add(b"b" * 400)
        big.fuzzed = 500
        picks = [pool.select().data for _ in range(200)]
        assert picks.count(b"a") > picks.count(b"b" * 400)

    def test_select_updates_fuzzed_counter(self):
        pool = SeedPool(random.Random(1))
        seed = pool.add(b"a")
        pool.select()
        assert seed.fuzzed == 1

    def test_pick_other(self):
        pool = SeedPool(random.Random(1))
        first = pool.add(b"a")
        pool.add(b"b")
        other = pool.pick_other(first)
        assert other is not None and other.data == b"b"

    def test_pick_other_single_seed(self):
        pool = SeedPool(random.Random(1))
        only = pool.add(b"a")
        assert pool.pick_other(only) is None

    def test_select_empty_raises(self):
        pool = SeedPool(random.Random(1))
        with pytest.raises(IndexError):
            pool.select()


GATED_TARGET = """
int main(void) {
    char buf[32];
    long n = read_input(buf, 32);
    if (n < 4) { printf("short\\n"); return 1; }
    if ((buf[0] & 255) != 77) { printf("nope\\n"); return 1; }
    if (buf[1] == 9) {
        __bugsite(5);
        int x;
        if (n > 30) { x = 1; }
        printf("x=%d\\n", x);
        return 0;
    }
    printf("ok %d\\n", buf[1]);
    return 0;
}
"""


class TestCampaign:
    def test_finds_gated_unstable_code(self):
        options = FuzzerOptions(max_executions=4000, compdiff_stride=4, rng_seed=11)
        fuzzer = CompDiffFuzzer(GATED_TARGET, [b"M\x00xxxx"], options)
        result = fuzzer.run()
        assert 5 in result.sites_reached
        assert 5 in result.sites_diverged
        assert result.diffs_found > 0

    def test_coverage_grows_from_seed(self):
        options = FuzzerOptions(max_executions=1000, compdiff_stride=10, rng_seed=3)
        fuzzer = CompDiffFuzzer(GATED_TARGET, [b"M\x00xxxx"], options)
        result = fuzzer.run()
        assert result.edges_covered > 4
        assert result.queue_size >= 1

    def test_oracle_stride(self):
        options = FuzzerOptions(max_executions=600, compdiff_stride=5, rng_seed=3)
        fuzzer = CompDiffFuzzer(GATED_TARGET, [b"M\x00xxxx"], options)
        result = fuzzer.run()
        assert result.oracle_executions <= result.executions // 5 + 2

    def test_compdiff_disabled(self):
        options = FuzzerOptions(max_executions=300, enable_compdiff=False, rng_seed=3)
        fuzzer = CompDiffFuzzer(GATED_TARGET, [b"M\x00xxxx"], options)
        result = fuzzer.run()
        assert result.oracle_executions == 0
        assert result.diffs_found == 0

    def test_crash_collection(self):
        crashing = """
        int main(void) {
            char b[16];
            long n = read_input(b, 16);
            if (n > 2 && b[0] == 'D') {
                int d = (int)(n - n);
                printf("%d", 1 / d);
            }
            printf("fine\\n");
            return 0;
        }
        """
        options = FuzzerOptions(max_executions=2500, enable_compdiff=False, rng_seed=5)
        fuzzer = CompDiffFuzzer(crashing, [b"Dxx"], options)
        result = fuzzer.run()
        assert result.crashes_found > 0
        data, execution = result.crashes[0]
        assert execution.crashed

    def test_sanitizer_composes_with_fuzzing(self):
        overflowing = """
        int main(void) {
            char b[16];
            long n = read_input(b, 16);
            char small[4];
            if (n > 1 && b[0] == 'O') {
                small[(b[1] & 15)] = 1;
            }
            printf("done\\n");
            return (int)small[0];
        }
        """
        options = FuzzerOptions(
            max_executions=2500, enable_compdiff=False, sanitizer="asan", rng_seed=5
        )
        fuzzer = CompDiffFuzzer(overflowing, [b"O\x00"], options)
        result = fuzzer.run()
        assert result.crashes_found > 0
        _, execution = result.crashes[0]
        assert execution.sanitizer_report is not None

    def test_signatures_cluster_diffs(self):
        options = FuzzerOptions(max_executions=2500, compdiff_stride=4, rng_seed=11)
        fuzzer = CompDiffFuzzer(GATED_TARGET, [b"M\x09xxxx"], options)
        result = fuzzer.run()
        signatures = result.signatures()
        assert signatures
        assert sum(signatures.values()) == len(result.diffs)

    def test_dictionary_extracted_from_magic(self):
        options = FuzzerOptions(max_executions=10, enable_compdiff=False)
        fuzzer = CompDiffFuzzer(GATED_TARGET, [b"M"], options)
        assert any(token == bytes([77]) for token in fuzzer.mutator.dictionary)

    def test_deterministic_given_seed(self):
        options = FuzzerOptions(max_executions=800, compdiff_stride=6, rng_seed=99)
        first = CompDiffFuzzer(GATED_TARGET, [b"M\x00xxxx"], options).run()
        second = CompDiffFuzzer(GATED_TARGET, [b"M\x00xxxx"], options).run()
        assert first.diffs_found == second.diffs_found
        assert first.edges_covered == second.edges_covered
