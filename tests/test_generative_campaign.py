"""Campaign and corpus-bank suite: deterministic, crash-safe banking.

The end-to-end invariants (generate→diff→reduce→bank on real engines):

* two clean runs over the same seed range bank byte-identical corpora;
* a campaign on the supervised pool with injected worker crashes banks
  the *same* corpus as the fault-free run (faults are verdict- and
  therefore corpus-transparent);
* a campaign killed between checkpoints and resumed converges on the
  uninterrupted corpus without losing or double-banking repros;
* banked repros carry both pass attributions (original and reduced)
  with the drift flag consistent between them;
* the banked corpus plugs into the precision scoreboard: every
  classified repro scores a TP for a checker it fired, and stabilized
  good twins contribute zero false positives.
"""

from __future__ import annotations

import pytest

from repro.core.compdiff import CompDiff
from repro.errors import CheckpointError
from repro.evaluation.precision_eval import evaluate_precision, precision_corpus
from repro.generative import CorpusBank, GenerativeCampaign, GenerativeOptions
from repro.generative.bank import (
    BASELINE_CULPRIT,
    BankedRepro,
    classify_group,
    corpus_key,
)
from repro.parallel import FaultPlan, SupervisorPolicy

pytestmark = [pytest.mark.generative, pytest.mark.slow]

#: Two seeds keep the end-to-end suite under a couple of minutes while
#: still exercising reduction, attribution, stabilization, and banking.
BUDGET = 2

FAST_POLICY = SupervisorPolicy(
    max_attempts=3,
    task_deadline=0.6,
    backoff_base=0.01,
    backoff_max=0.05,
    poll_interval=0.002,
)


def _options(**overrides) -> GenerativeOptions:
    base = dict(seed=0, budget=BUDGET, profile="ub")
    base.update(overrides)
    return GenerativeOptions(**base)


def _corpus_bytes(bank: CorpusBank) -> dict[str, tuple[str, str]]:
    return {r.key: (r.source, r.good_source) for r in bank}


@pytest.fixture(scope="module")
def clean_corpus(tmp_path_factory):
    """One clean serial campaign; the reference corpus for every test."""
    bank = CorpusBank(tmp_path_factory.mktemp("clean"))
    with GenerativeCampaign(_options(), bank) as campaign:
        result = campaign.run()
    assert result.banked_new >= 1
    return bank, result


# ------------------------------------------------------------- unit: bank


def test_corpus_key_is_deterministic_and_discriminating():
    partition = (("clang-O0",), ("gcc-O0", "gcc-O2"))
    key = corpus_key({"signed_overflow"}, "exploit_ub", partition)
    assert key == corpus_key({"signed_overflow"}, "exploit_ub", partition)
    assert len(key) == 16
    assert key != corpus_key({"uninit_read"}, "exploit_ub", partition)
    assert key != corpus_key({"signed_overflow"}, BASELINE_CULPRIT, partition)
    assert key != corpus_key({"signed_overflow"}, "exploit_ub", (("gcc-O0",),))


def test_classify_group_priority():
    assert classify_group({"UninitMem", "IntError"}) == "uninit"
    assert classify_group({"IntError", "Misc"}) == "integer_error"
    assert classify_group({"EvalOrder"}) == "eval_order"
    assert classify_group(set()) == "unclassified"


def _dummy_repro(key: str = "k" * 16) -> BankedRepro:
    return BankedRepro(
        key=key,
        seed=1,
        profile="ub",
        generator_version=1,
        ub_shapes=("overflow_guard",),
        source="int main(void) {\n    return 1;\n}\n",
        good_source="int main(void) {\n    return 0;\n}\n",
        inputs=[b"", b"\x01"],
        checkers=("signed_overflow",),
        fingerprints=("ab" * 8,),
        group="integer_error",
        partition=(("clang-O0",), ("gcc-O0",)),
        impl_ref="gcc-O0",
        impl_target="gcc-O3",
        culprit_original="exploit_ub",
        culprit_reduced="exploit_ub",
    )


def test_bank_dedupes_and_reloads(tmp_path):
    bank = CorpusBank(tmp_path / "bank")
    repro = _dummy_repro()
    assert bank.add(repro)
    assert not bank.add(_dummy_repro()), "same key must dedupe"
    assert len(bank) == 1

    reloaded = CorpusBank(tmp_path / "bank")
    assert reloaded.keys() == [repro.key]
    banked = reloaded.get(repro.key)
    assert banked.source == repro.source
    assert banked.good_source == repro.good_source
    assert banked.inputs == repro.inputs
    assert banked.partition == repro.partition


def test_banked_repro_as_precision_case():
    case = _dummy_repro().test_case()
    assert case.group == "integer_error"
    assert case.bad_source != case.good_source
    assert case.mech == "generative"
    assert case.inputs == [b"", b"\x01"]


# -------------------------------------------------------- e2e: determinism


def test_campaign_is_deterministic(clean_corpus, tmp_path):
    bank_a, result_a = clean_corpus
    bank_b = CorpusBank(tmp_path / "again")
    with GenerativeCampaign(_options(), bank_b) as campaign:
        result_b = campaign.run()
    assert _corpus_bytes(bank_a) == _corpus_bytes(bank_b)
    assert result_a.keys == result_b.keys
    assert result_a.banked_new == result_b.banked_new


def test_banked_attribution_metadata(clean_corpus):
    for repro in clean_corpus[0]:
        assert repro.culprit_original
        assert repro.culprit_reduced
        assert repro.culprit_drifted == (
            repro.culprit_original != repro.culprit_reduced
        )
        assert repro.reduced_nodes <= repro.original_nodes
        assert repro.reduction_steps > 0


# ------------------------------------------------- e2e: faults + resume


@pytest.mark.parallel
@pytest.mark.faults
def test_campaign_survives_worker_crashes(clean_corpus, tmp_path):
    """Injected worker crashes on the supervised pool change nothing:
    the banked corpus is byte-identical to the fault-free serial run."""
    bank = CorpusBank(tmp_path / "faulted")
    plan = FaultPlan(seed=3, crash=0.2)
    with GenerativeCampaign(
        _options(workers=2), bank, policy=FAST_POLICY, fault_plan=plan
    ) as campaign:
        result = campaign.run()
        stats = campaign.engine.stats
    assert _corpus_bytes(bank) == _corpus_bytes(clean_corpus[0])
    assert result.banked_new == clean_corpus[1].banked_new
    assert stats.worker_restarts >= 1, "crash faults must have fired"


@pytest.mark.faults
def test_campaign_checkpoint_resume_converges(clean_corpus, tmp_path):
    """A campaign killed at a seed boundary resumes into the same corpus
    — nothing lost, nothing double-banked."""
    bank = CorpusBank(tmp_path / "resumed")
    checkpoint_dir = str(tmp_path / "ckpt")
    with GenerativeCampaign(
        _options(budget=1, checkpoint_dir=checkpoint_dir, checkpoint_every=1),
        bank,
    ) as campaign:
        partial = campaign.run()
    assert partial.generated == 1

    with GenerativeCampaign(
        _options(checkpoint_dir=checkpoint_dir, checkpoint_every=1), bank
    ) as campaign:
        result = campaign.run()
    assert result.resumed_at == 1
    assert _corpus_bytes(bank) == _corpus_bytes(clean_corpus[0])
    assert result.generated == clean_corpus[1].generated
    assert result.banked_new == clean_corpus[1].banked_new
    assert result.keys == clean_corpus[1].keys
    assert len(bank.keys()) == len(set(bank.keys()))


@pytest.mark.faults
def test_checkpoint_refuses_option_drift(tmp_path):
    bank = CorpusBank(tmp_path / "drift")
    checkpoint_dir = str(tmp_path / "ckpt")
    with GenerativeCampaign(
        _options(budget=0, checkpoint_dir=checkpoint_dir), bank
    ) as campaign:
        campaign.run()
    with pytest.raises(CheckpointError):
        with GenerativeCampaign(
            _options(budget=0, profile="interproc", checkpoint_dir=checkpoint_dir),
            bank,
        ) as campaign:
            campaign.run()


# ----------------------------------------------- precision integration


@pytest.mark.interproc
def test_banked_corpus_scores_on_precision_scoreboard(clean_corpus):
    """Every classified banked repro is a confirmed TP for at least one
    checker it fired, and the stabilized twins are FP-free."""
    bank, _ = clean_corpus
    cases = bank.test_cases()
    assert cases
    report = evaluate_precision(cases, modes=("interproc",))
    assert report.cases == len(cases)
    assert report.divergent == len(cases), "banked repros must still diverge"
    scores = report.scores["interproc"]
    for score in scores.values():
        assert score.fp == 0, f"{score.checker}: stabilized twin flagged"
    for repro in bank:
        if repro.group == "unclassified":
            continue
        assert any(
            scores[checker].tp >= 1 for checker in repro.checkers if checker in scores
        ), f"{repro.key} produced no TP"


@pytest.mark.interproc
def test_precision_corpus_accepts_bank(clean_corpus):
    bank, _ = clean_corpus
    base = precision_corpus(scale=0.001, per_shape=1)
    merged = precision_corpus(scale=0.001, per_shape=1, corpus=bank)
    assert len(merged) == len(base) + len(bank)
    assert precision_corpus(scale=0.001, per_shape=1, corpus=str(bank.root))[-1].uid \
        == merged[-1].uid
