"""Property suite for the grammar-driven MiniC program generator.

Every generated program must be a *valid campaign subject*: it parses,
passes the semantic checker, regenerates byte-identically from its seed
(campaign resume depends on this), and terminates within the default
fuel on the reference implementation — the generator's bounded
loops/recursion make non-termination structurally impossible, and this
suite pins that over 200+ seeds across all profiles.
"""

from __future__ import annotations

import pytest

from repro.compiler import compile_source, implementation
from repro.core.compdiff import CompDiff
from repro.generative import PROFILES, generate_program
from repro.generative.generator import GENERATOR_VERSION
from repro.minic import load
from repro.vm import run_binary
from repro.vm.execution import Status
from repro.vm.machine import DEFAULT_FUEL

pytestmark = pytest.mark.generative

#: Seeds per profile for the property sweep (3 profiles -> 201 programs).
SEEDS_PER_PROFILE = 67

#: UB-adjacent shapes that only exist in call-boundary form.
INTERPROC_SHAPES = {"call_uninit", "call_overflow"}


def _sweep():
    for profile in sorted(PROFILES):
        for seed in range(SEEDS_PER_PROFILE):
            yield profile, seed


def test_generated_programs_parse_and_check():
    """Every program is well-typed and checker-clean."""
    for profile, seed in _sweep():
        program = generate_program(seed, profile)
        load(program.source)  # raises on parse or check failure
        assert program.seed == seed
        assert program.profile == profile
        assert program.generator_version == GENERATOR_VERSION


def test_generation_is_deterministic():
    """The same (seed, profile) regenerates byte-identical source."""
    for profile, seed in _sweep():
        first = generate_program(seed, profile)
        second = generate_program(seed, profile)
        assert first.source == second.source, (profile, seed)
        assert first.ub_shapes == second.ub_shapes, (profile, seed)


def test_generated_programs_terminate_within_fuel():
    """Bounded loops/recursion: no generated program exhausts the fuel.

    A CRASH is legitimate termination — the dead-division shape plants a
    trap that only unoptimized implementations execute.  TIMEOUT (fuel
    exhaustion) is the failure this property forbids.
    """
    config = implementation("gcc-O0")
    for profile, seed in _sweep():
        program = generate_program(seed, profile)
        binary = compile_source(program.source, config, name=f"{profile}-{seed}")
        result = run_binary(binary, b"", fuel=DEFAULT_FUEL)
        assert result.status in (Status.OK, Status.CRASH), (
            profile,
            seed,
            result.status,
        )


def test_profiles_bias_shapes():
    """The ub/interproc profiles actually splice UB-adjacent shapes, and
    the interproc profile reaches call-boundary shapes."""
    ub_shapes: set[str] = set()
    interproc_shapes: set[str] = set()
    for seed in range(SEEDS_PER_PROFILE):
        ub_shapes.update(generate_program(seed, "ub").ub_shapes)
        interproc_shapes.update(generate_program(seed, "interproc").ub_shapes)
    assert len(ub_shapes) >= 5, ub_shapes
    assert interproc_shapes & INTERPROC_SHAPES, interproc_shapes


def test_ub_profile_yields_divergence():
    """The point of the bias: a seeded ub-profile program diverges."""
    engine = CompDiff()
    program = generate_program(0, "ub")
    assert engine.check_source(program.source, [b""], name="yield0").divergent


def test_unknown_profile_rejected():
    with pytest.raises(KeyError):
        generate_program(0, "no-such-profile")
