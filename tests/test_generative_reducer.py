"""Reducer correctness suite: monotone, idempotent, and actually small.

The committed fixtures are multi-function divergent programs (generator
output, checked in as stable bytes).  The invariants pinned here:

* **monotone** — every accepted step's snapshot still satisfies the
  interestingness predicate (re-verified from the recorded trace, not
  trusted from the engine);
* **idempotent at fixpoint** — re-reducing a fixpoint accepts nothing
  and returns the same bytes;
* **effective** — the planted multi-function divergences reduce to at
  most 25 % of the original AST node count;
* **budgeted** — ``step_budget`` caps accepted steps and reports the
  reduction as not-at-fixpoint.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.compdiff import CompDiff
from repro.errors import ReproError
from repro.generative import Reducer, SameFingerprint, StillDiverges
from repro.generative.reducer import single_step_variants
from repro.minic import count_nodes, load

pytestmark = [pytest.mark.generative, pytest.mark.slow]

FIXTURES = Path(__file__).parent / "fixtures" / "generative"

#: Satellite bound: planted divergences reduce to <= 25% of the nodes.
MAX_REDUCTION_RATIO = 0.25


@pytest.fixture(scope="module")
def engine():
    return CompDiff()


@pytest.fixture(scope="module", params=["planted_overflow_chain.c",
                                        "planted_interproc_uninit.c"])
def reduced(request, engine):
    """Reduce one committed fixture once; tests share the result."""
    source = (FIXTURES / request.param).read_text()
    assert len(load(source).functions()) >= 3, "fixture must be multi-function"
    predicate = StillDiverges(engine, [b""], name=request.param)
    assert predicate(source), "fixture must diverge as committed"
    result = Reducer(predicate).reduce(source)
    return predicate, result


def test_reduction_reaches_fixpoint_and_bound(reduced):
    predicate, result = reduced
    assert result.reached_fixpoint
    assert result.steps, "a planted divergence must admit some reduction"
    assert predicate(result.reduced_source)
    assert result.reduced_nodes <= MAX_REDUCTION_RATIO * result.original_nodes, (
        f"only reduced {result.original_nodes} -> {result.reduced_nodes} nodes"
    )


def test_reduction_is_monotone(reduced):
    """Every accepted snapshot independently satisfies the predicate,
    and node counts never increase along the trace."""
    predicate, result = reduced
    nodes = result.original_nodes
    for step in result.steps:
        assert step.nodes_after <= step.nodes_before <= nodes
        nodes = step.nodes_after
        assert predicate(step.source), f"non-monotone step: {step.description}"
    assert result.steps[-1].source == result.reduced_source


def test_reduction_is_idempotent_at_fixpoint(reduced):
    predicate, result = reduced
    again = Reducer(predicate).reduce(result.reduced_source)
    assert again.steps == []
    assert again.reached_fixpoint
    assert again.reduced_source == result.reduced_source


def test_step_budget_bounds_accepted_steps(engine):
    source = (FIXTURES / "planted_overflow_chain.c").read_text()
    predicate = StillDiverges(engine, [b""], name="budget")
    result = Reducer(predicate, step_budget=2).reduce(source)
    assert len(result.steps) == 2
    assert not result.reached_fixpoint
    assert predicate(result.reduced_source)


def test_uninteresting_start_is_rejected(engine):
    predicate = StillDiverges(engine, [b""], name="stable")
    with pytest.raises(ReproError):
        Reducer(predicate).reduce("int main(void) { return 0; }\n")


def test_single_step_variants_are_valid_programs():
    """Every candidate the reducer can propose re-parses and re-checks."""
    source = (FIXTURES / "planted_overflow_chain.c").read_text()
    count = 0
    for candidate in single_step_variants(source):
        load(candidate)
        count += 1
        if count >= 40:
            break
    assert count >= 10, "fixture must admit a rich candidate set"


def test_same_fingerprint_mode_validated():
    with pytest.raises(ValueError):
        SameFingerprint(set(), mode="most")
