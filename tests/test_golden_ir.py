"""Behavior-preservation gates for the pass-manager refactor.

Two committed golden-digest files pin the compiler's output over the
example + Juliet seed corpus for all ten implementations:

* ``tests/golden/ir_digests_tworound.json`` — captured from the
  **pre-refactor** pipeline (hardcoded two-round loop).  The refactored
  manager must reproduce it byte-for-byte when the fixpoint bound is
  pinned to 2 (``pipeline_for(config, max_fixpoint_rounds=2)``): the
  declarative machinery itself is an exact refactor.
* ``tests/golden/ir_digests.json`` — the standard (change-driven,
  converging) pipeline.  The only intentional semantic change is the
  round bound; the idempotence and observation-equivalence tests below
  show the extra rounds are pure additional optimization.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import sys

import pytest

from repro.compiler import compile_source
from repro.compiler.implementations import DEFAULT_IMPLEMENTATIONS
from repro.compiler.lowering import lower_program
from repro.compiler.passes import optimize
from repro.compiler.passes.manager import PassBudget, pipeline_for, run_pipeline
from repro.ir.printer import format_module
from repro.juliet import build_suite
from repro.minic import load

pytestmark = pytest.mark.passes

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def _load_examples():
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        from unstable_code_gallery import EXAMPLES
        from quickstart import LISTING_1
    finally:
        sys.path.pop(0)
    corpus = {
        f"gallery/{i:02d}": src
        for i, (_, src) in enumerate(sorted(EXAMPLES.items()))
    }
    corpus["quickstart/listing1"] = LISTING_1
    return corpus


def _digest(module) -> str:
    return hashlib.sha256(format_module(module).encode("utf-8")).hexdigest()[:16]


@pytest.fixture(scope="module")
def corpus():
    golden = json.loads((GOLDEN_DIR / "ir_digests.json").read_text())
    programs = _load_examples()
    suite = build_suite(scale=golden["juliet_scale"], seed=golden["juliet_seed"])
    for case in suite.cases:
        programs[f"juliet/{case.uid}/bad"] = case.bad_source
        programs[f"juliet/{case.uid}/good"] = case.good_source
    return programs


class TestGoldenDigests:
    def test_standard_pipeline_matches_committed_digests(self, corpus):
        golden = json.loads((GOLDEN_DIR / "ir_digests.json").read_text())["digests"]
        assert set(golden) == set(corpus)
        mismatches = []
        for key, source in corpus.items():
            for config in DEFAULT_IMPLEMENTATIONS:
                got = _digest(compile_source(source, config, name=key).module)
                if golden[key][config.name] != got:
                    mismatches.append((key, config.name))
        assert not mismatches, f"{len(mismatches)} drifted: {mismatches[:10]}"

    def test_two_round_pipeline_matches_prerefactor_digests(self, corpus):
        # Byte-identity with the pre-refactor compiler: same prelude, same
        # pass order, same two-round truncation, captured before the
        # manager existed.
        golden = json.loads(
            (GOLDEN_DIR / "ir_digests_tworound.json").read_text()
        )["digests"]
        assert set(golden) == set(corpus)
        mismatches = []
        for key, source in corpus.items():
            program = load(source)
            for config in DEFAULT_IMPLEMENTATIONS:
                budget = PassBudget()
                module = lower_program(program, config, name=key, budget=budget)
                run_pipeline(
                    module, config, budget=budget,
                    pipeline=pipeline_for(config, max_fixpoint_rounds=2),
                )
                if golden[key][config.name] != _digest(module):
                    mismatches.append((key, config.name))
        assert not mismatches, f"{len(mismatches)} drifted: {mismatches[:10]}"


class TestIdempotence:
    def test_optimize_twice_is_identity_on_examples(self):
        # Property: the standard pipeline converges, so a second optimize()
        # pass over its own output changes nothing — for every config over
        # every example program.
        for key, source in _load_examples().items():
            for config in DEFAULT_IMPLEMENTATIONS:
                binary = compile_source(source, config, name=key)
                once = format_module(binary.module)
                optimize(binary.module, config)
                twice = format_module(binary.module)
                assert once == twice, f"{key} not idempotent under {config.name}"


class TestObservationEquivalence:
    def test_convergence_beyond_two_rounds_preserves_output(self):
        # The converged build may differ in IR from the legacy two-round
        # build; it must never differ in observable behavior.
        from repro.compiler.binary import CompiledBinary
        from repro.vm import run_binary

        for key, source in _load_examples().items():
            program = load(source)
            for config in DEFAULT_IMPLEMENTATIONS:
                budget = PassBudget()
                module = lower_program(program, config, name=key, budget=budget)
                run_pipeline(
                    module, config, budget=budget,
                    pipeline=pipeline_for(config, max_fixpoint_rounds=2),
                )
                legacy = run_binary(
                    CompiledBinary(module=module, config=config), b""
                )
                converged = run_binary(compile_source(source, config, name=key), b"")
                assert (
                    legacy.stdout, legacy.exit_code, legacy.status.value
                ) == (
                    converged.stdout, converged.exit_code, converged.status.value
                ), f"{key} behavior changed under {config.name}"
