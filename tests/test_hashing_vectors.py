"""Known-answer tests for the MurmurHash3_x86_32 port.

The whole differential oracle keys on :func:`repro.core.hashing.murmur3_32`
(AFL++'s output checksum, paper §3.2), so the port is pinned against the
public-domain reference implementation's verification vectors: empty
input under multiple seeds, every sub-4-byte tail length, 4-byte blocks,
multi-block inputs, and non-ASCII bytes.
"""

from __future__ import annotations

import pytest

from repro.core.hashing import murmur3_32, output_checksum

#: (data, seed, MurmurHash3_x86_32 reference digest).
REFERENCE_VECTORS = [
    # Empty input: the seed passes straight into finalization.
    (b"", 0x00000000, 0x00000000),
    (b"", 0x00000001, 0x514E28B7),
    (b"", 0xFFFFFFFF, 0x81F16F39),
    # A full zero block still mixes (k*c1 rotl k*c2 over zeros is zero,
    # but the length xor is not).
    (b"\x00\x00\x00\x00", 0x00000000, 0x2362F9DE),
    # Tail handling: 1-, 2-, and 3-byte remainders.
    (b"a", 0x9747B28C, 0x7FA09EA6),
    (b"aa", 0x9747B28C, 0x5D211726),
    (b"aaa", 0x9747B28C, 0x283E0130),
    (b"aaaa", 0x9747B28C, 0x5A97808A),
    (b"ab", 0x9747B28C, 0x74875592),
    (b"abc", 0x9747B28C, 0xC84A62DD),
    (b"abcd", 0x9747B28C, 0xF0478627),
    # Block + tail combinations with seed 0.
    (b"abc", 0x00000000, 0xB3DD93FA),
    (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq", 0x00000000, 0xEE925B90),
    # Longer mixed-content inputs.
    (b"test", 0x9747B28C, 0x704B81DC),
    (b"Hello, world!", 0x9747B28C, 0x24884CBA),
    (b"The quick brown fox jumps over the lazy dog", 0x9747B28C, 0x2FA826CD),
    # Non-ASCII bytes exercise the unsigned byte handling in the tail.
    ("ππππππππ".encode("utf-8"), 0x9747B28C, 0xD58063C1),
    # 64 full blocks, no tail.
    (b"a" * 256, 0x9747B28C, 0x37405BDC),
]


@pytest.mark.parametrize("data,seed,expected", REFERENCE_VECTORS)
def test_murmur3_reference_vector(data, seed, expected):
    assert murmur3_32(data, seed) == expected


def test_murmur3_result_is_32_bit():
    for data, seed, _ in REFERENCE_VECTORS:
        assert 0 <= murmur3_32(data, seed) <= 0xFFFFFFFF


def test_output_checksum_framing_matches_murmur():
    """output_checksum is murmur3 over the documented framed blob."""
    stdout, stderr, exit_code = b"out", b"err", 3
    blob = stdout + b"\x00--stderr--\x00" + stderr + exit_code.to_bytes(4, "little", signed=True)
    assert output_checksum(stdout, stderr, exit_code) == murmur3_32(blob, seed=0xA5B35705)


def test_output_checksum_distinguishes_channels():
    """Moving bytes between stdout and stderr must change the checksum —
    the separator frame exists precisely so ab| != a|b."""
    assert output_checksum(b"ab", b"", 0) != output_checksum(b"a", b"b", 0)
    assert output_checksum(b"", b"ab", 0) != output_checksum(b"ab", b"", 0)


def test_output_checksum_sees_exit_code():
    assert output_checksum(b"x", b"", 0) != output_checksum(b"x", b"", 1)
    assert output_checksum(b"x", b"", -1) != output_checksum(b"x", b"", 255)
