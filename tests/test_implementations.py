"""Invariants of the ten compiler-implementation configurations."""

from __future__ import annotations

from repro.compiler import (
    DEFAULT_IMPLEMENTATIONS,
    FUZZ_CONFIG,
    SANITIZER_CONFIG,
    implementation,
    implementation_names,
)

import pytest


class TestRoster:
    def test_ten_implementations(self):
        assert len(DEFAULT_IMPLEMENTATIONS) == 10

    def test_two_families_five_levels(self):
        families = {c.family for c in DEFAULT_IMPLEMENTATIONS}
        assert families == {"gcc", "clang"}
        for family in families:
            levels = [c.opt_level for c in DEFAULT_IMPLEMENTATIONS if c.family == family]
            assert levels == ["O0", "O1", "O2", "O3", "Os"]

    def test_names_unique_and_resolvable(self):
        names = implementation_names()
        assert len(set(names)) == 10
        for name in names:
            assert implementation(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            implementation("tcc-O2")


class TestPipelineShape:
    def test_o0_runs_no_passes(self):
        for name in ("gcc-O0", "clang-O0"):
            config = implementation(name)
            assert not config.const_fold
            assert not config.exploit_ub
            assert not config.dce
            assert not config.inline_small

    def test_o1_and_up_exploit_ub(self):
        for config in DEFAULT_IMPLEMENTATIONS:
            if config.opt_level != "O0":
                assert config.exploit_ub, config.name
                assert config.const_fold and config.dce

    def test_inlining_only_at_o2_o3(self):
        for config in DEFAULT_IMPLEMENTATIONS:
            expected = config.opt_level in ("O2", "O3")
            assert config.inline_small == expected, config.name

    def test_widen_mul_is_clang_o1_plus(self):
        for config in DEFAULT_IMPLEMENTATIONS:
            expected = config.family == "clang" and config.opt_level != "O0"
            assert config.widen_int_mul == expected, config.name

    def test_miscompiles_match_rq2(self):
        seeded = {
            config.name: set(config.miscompile_patterns)
            for config in DEFAULT_IMPLEMENTATIONS
            if config.miscompile_patterns
        }
        assert seeded == {
            "gcc-O2": {"ushl_ushr_elide"},
            "gcc-O3": {"ushl_ushr_elide", "sext_shift_pair"},
            "clang-O1": {"srem_to_mask"},
        }
        # Two gcc bugs + one clang bug, as in the paper's RQ2.
        gcc_bugs = {p for n, ps in seeded.items() if n.startswith("gcc") for p in ps}
        clang_bugs = {p for n, ps in seeded.items() if n.startswith("clang") for p in ps}
        assert len(gcc_bugs) == 2 and len(clang_bugs) == 1


class TestDivergenceKnobs:
    def test_families_differ_in_arg_order(self):
        gcc = implementation("gcc-O0")
        clang = implementation("clang-O0")
        assert gcc.args_left_to_right != clang.args_left_to_right

    def test_families_differ_in_line_policy(self):
        assert (
            implementation("gcc-O0").line_macro_statement_based
            != implementation("clang-O0").line_macro_statement_based
        )

    def test_families_differ_in_memcpy_direction(self):
        assert (
            implementation("gcc-O0").memcpy_backward
            != implementation("clang-O0").memcpy_backward
        )

    def test_families_differ_in_segment_bases(self):
        gcc = implementation("gcc-O0")
        clang = implementation("clang-O0")
        assert gcc.stack_base != clang.stack_base
        assert gcc.global_base != clang.global_base
        assert gcc.heap_base != clang.heap_base

    def test_missing_arg_junk_differs_by_family(self):
        assert (
            implementation("gcc-O0").missing_arg_value
            != implementation("clang-O0").missing_arg_value
        )

    def test_unoptimized_trio_shares_zero_fill(self):
        # gcc-O0/gcc-O1/clang-O0 deliberately share 0x00 stack garbage —
        # the Figure 1 subset effect for uninitialized reads.
        zero_fill = {c.name for c in DEFAULT_IMPLEMENTATIONS if c.uninit_fill == 0}
        assert zero_fill == {"gcc-O0", "gcc-O1", "clang-O0"}

    def test_optimized_fills_pairwise_distinct_by_family(self):
        gcc_o2 = implementation("gcc-O2").uninit_fill
        clang_o2 = implementation("clang-O2").uninit_fill
        assert gcc_o2 != clang_o2


class TestSpecialConfigs:
    def test_fuzz_config_is_plain(self):
        assert not FUZZ_CONFIG.exploit_ub
        assert FUZZ_CONFIG.miscompile_patterns == ()
        assert FUZZ_CONFIG.name not in implementation_names()

    def test_sanitizer_config_has_no_optimization(self):
        assert not SANITIZER_CONFIG.const_fold
        assert not SANITIZER_CONFIG.exploit_ub
        assert SANITIZER_CONFIG.miscompile_patterns == ()

    def test_configs_are_frozen(self):
        with pytest.raises(Exception):
            implementation("gcc-O0").stack_gap = 99  # type: ignore[misc]
