"""Interprocedural summary construction and the upgraded checkers."""

from __future__ import annotations

import pytest

from repro.compiler.binary import compile_module
from repro.compiler.implementations import implementation
from repro.minic import load
from repro.static_analysis import UBOracle
from repro.static_analysis.interproc import (
    bottom_up_order,
    build_call_graph,
    summarize_module,
    tarjan_sccs,
)

pytestmark = pytest.mark.interproc


def _module(source: str, name: str = "t"):
    return compile_module(load(source), implementation("gcc-O0"), name=name)


@pytest.fixture(scope="module")
def oracle():
    return UBOracle(mode="interproc")


@pytest.fixture(scope="module")
def intra():
    return UBOracle(mode="intra")


def _by_checker(findings, checker):
    return [f for f in findings if f.checker == checker]


# ----------------------------------------------------------- graph machinery


class TestCallGraph:
    def test_sccs_reverse_topological(self):
        module = _module(
            """
            static int c(void) { return 1; }
            static int b(void) { return c(); }
            static int a(void) { return b() + c(); }
            int main(void) { return a(); }
            """
        )
        graph = build_call_graph(module)
        sccs = tarjan_sccs(graph, list(module.functions))
        position = {name: i for i, scc in enumerate(sccs) for name in scc}
        # Callees come strictly before callers.
        assert position["c"] < position["b"] < position["a"] < position["main"]

    def test_mutual_recursion_one_scc(self):
        module = _module(
            """
            static int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
            static int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
            int main(void) { return even(4); }
            """
        )
        sccs = tarjan_sccs(build_call_graph(module), list(module.functions))
        (cycle,) = [scc for scc in sccs if len(scc) > 1]
        assert set(cycle) == {"even", "odd"}

    def test_dead_functions_excluded_from_bottom_up_order(self):
        module = _module(
            """
            static int unused(void) { return 9; }
            static int used(void) { return 1; }
            int main(void) { return used(); }
            """
        )
        _, order = bottom_up_order(build_call_graph(module))
        assert "used" in order and "main" in order
        assert "unused" not in order

    def test_external_callee_widens_not_crashes(self):
        # A call to a function with no body in the module must degrade
        # to an opaque (absent) summary, not raise.
        module = _module(
            """
            int main(void) {
                int x = 3;
                printf("%d\\n", x);
                return 0;
            }
            """
        )
        ctx = summarize_module(module)
        assert ctx.summary("printf") is None
        assert ctx.summary("not_a_function") is None


class TestRecursionFixpoint:
    def test_direct_recursion_converges(self, oracle):
        findings = oracle.analyze_source(
            """
            static int fact(int n) {
                if (n <= 1) { return 1; }
                return n * fact(n - 1);
            }
            int main(void) {
                printf("%d\\n", fact(5));
                return 0;
            }
            """
        )
        assert not _by_checker(findings, "uninit_read")

    def test_mutual_recursion_converges(self, oracle):
        findings = oracle.analyze_source(
            """
            static int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
            static int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
            int main(void) {
                printf("%d\\n", even(6));
                return 0;
            }
            """
        )
        assert not findings

    def test_recursive_summary_still_usable(self):
        module = _module(
            """
            static int down(int n) {
                if (n <= 0) { return 0; }
                return down(n - 1);
            }
            int main(void) { return down(3); }
            """
        )
        ctx = summarize_module(module)
        summary = ctx.summary("down")
        # The SCC fixpoint either converges to a concrete summary or
        # widens; a widened summary must read as opaque (None).
        assert summary is None or summary.name == "down"


# ------------------------------------------------------- upgraded checkers


class TestInterprocCheckers:
    CHAIN = """
    static int readit(int *p) { return *p; }
    static int chain(int *p) { return readit(p); }
    int main(void) {
        int value;
        printf("v=%d\\n", chain(&value));
        return 0;
    }
    """

    def test_uninit_escape_through_chain(self, oracle, intra):
        findings = _by_checker(oracle.analyze_source(self.CHAIN), "uninit_read")
        (f,) = findings
        assert f.confidence == "confirmed"
        assert f.function == "main"
        assert any("readit" in frame for frame in f.trace)
        # The intraprocedural mode is structurally blind to this.
        assert not _by_checker(intra.analyze_source(self.CHAIN), "uninit_read")

    FILL = """
    static void put(int *p) { *p = 42; }
    static void fill(int *p) { put(p); }
    int main(void) {
        int value;
        fill(&value);
        printf("v=%d\\n", value);
        return 0;
    }
    """

    def test_must_write_summary_silences_fp(self, oracle, intra):
        # Intraprocedural analysis cannot see the write inside fill()
        # and reports the read; the must-write summary proves it safe.
        assert _by_checker(intra.analyze_source(self.FILL), "uninit_read")
        assert not _by_checker(oracle.analyze_source(self.FILL), "uninit_read")

    def test_shift_amount_through_param(self, oracle, intra):
        # The amount is routed through a local: the call site passes a
        # spill-slot load, which the intraprocedural constant-argument
        # hull cannot resolve, but the top-down parameter environment can.
        source = """
        static int shl(int amount) { return 1 << amount; }
        int main(void) {
            int sh = 40;
            printf("x=%d\\n", shl(sh));
            return 0;
        }
        """
        (f,) = _by_checker(oracle.analyze_source(source), "shift_ub")
        assert f.confidence == "confirmed"
        assert not _by_checker(intra.analyze_source(source), "shift_ub")

    def test_access_range_vs_object_size(self, oracle, intra):
        source = """
        static void blast(char *p) { memset(p, 'A', 16); }
        int main(void) {
            char data[12];
            blast(data);
            printf("d=%c\\n", data[0]);
            return 0;
        }
        """
        findings = _by_checker(oracle.analyze_source(source), "oob_access")
        assert findings and findings[0].function == "main"
        assert not _by_checker(intra.analyze_source(source), "oob_access")
        # A big-enough buffer must stay quiet.
        ok = source.replace("char data[12];", "char data[16];")
        assert not _by_checker(oracle.analyze_source(ok), "oob_access")

    def test_null_argument_to_dereferencing_callee(self, oracle):
        source = """
        static int deref(int *p) { return *p; }
        int main(void) {
            int box = 7;
            int *p = &box;
            int usenull = 1;
            if (usenull) { p = 0; }
            printf("x=%d\\n", deref(p));
            return 0;
        }
        """
        (f,) = _by_checker(oracle.analyze_source(source), "null_deref")
        assert f.confidence == "confirmed"
        good = source.replace("int usenull = 1;", "int usenull = 0;")
        assert not _by_checker(oracle.analyze_source(good), "null_deref")

    def test_intra_mode_unchanged_without_calls(self, oracle, intra):
        source = """
        int main(void) {
            int x;
            printf("%d\\n", x);
            return 0;
        }
        """
        a = [(f.checker, f.confidence, f.line) for f in intra.analyze_source(source)]
        b = [(f.checker, f.confidence, f.line) for f in oracle.analyze_source(source)]
        assert a == b
