"""IR container, builder, and CFG utility tests."""

from __future__ import annotations

from repro.ir import (
    BinOp,
    Branch,
    Const,
    FunctionBuilder,
    Jump,
    Module,
    Reg,
    Ret,
)
from repro.ir.cfg import block_order_rpo, predecessors, reachable_blocks, remove_unreachable
from repro.ir.instructions import Load, Move, Store
from repro.minic import types as ty


def diamond() -> FunctionBuilder:
    """entry -> (left|right) -> exit."""
    builder = FunctionBuilder("f", [], ty.INT)
    left = builder.new_block("left")
    right = builder.new_block("right")
    exit_label = builder.new_block("exit")
    cond = builder.new_reg()
    builder.emit(Const(cond, 1, ty.INT))
    builder.branch(cond, left, right)
    builder.switch_to(left)
    builder.jump(exit_label)
    builder.switch_to(right)
    builder.jump(exit_label)
    builder.switch_to(exit_label)
    builder.ret(0)
    return builder


class TestBuilder:
    def test_entry_block_exists(self):
        builder = FunctionBuilder("f", [], ty.INT)
        assert "entry" in builder.func.blocks

    def test_fresh_registers_unique(self):
        builder = FunctionBuilder("f", [], ty.INT)
        regs = {builder.new_reg() for _ in range(10)}
        assert len(regs) == 10

    def test_emit_after_terminator_goes_to_dead_block(self):
        builder = FunctionBuilder("f", [], ty.INT)
        builder.ret(0)
        builder.emit(Const(builder.new_reg(), 1, ty.INT))
        assert any(label.startswith("dead") for label in builder.func.blocks)

    def test_finish_terminates_open_blocks(self):
        builder = FunctionBuilder("f", [], ty.INT)
        open_label = builder.new_block("open")
        builder.jump(open_label)
        builder.switch_to(open_label)
        func = builder.finish()
        assert all(block.terminator is not None for block in func.blocks.values())

    def test_slot_indices_sequential(self):
        builder = FunctionBuilder("f", [], ty.INT)
        assert builder.add_slot("a", 4, 4) == 0
        assert builder.add_slot("b", 8, 8) == 1
        assert builder.func.frame_size() == 12

    def test_terminated_property(self):
        builder = FunctionBuilder("f", [], ty.INT)
        assert not builder.terminated
        builder.ret(None)
        assert builder.terminated


class TestInstructions:
    def test_uses_and_defines(self):
        instr = BinOp(Reg(3), "add", Reg(1), 5, ty.INT)
        assert instr.defines() == Reg(3)
        assert Reg(1) in instr.uses()

    def test_replace_uses(self):
        instr = BinOp(Reg(3), "add", Reg(1), Reg(2), ty.INT)
        instr.replace_uses({Reg(1): 7, Reg(2): Reg(9)})
        assert instr.lhs == 7
        assert instr.rhs == Reg(9)

    def test_store_has_no_def(self):
        assert Store(Reg(1), Reg(2), ty.INT).defines() is None

    def test_load_addr_is_use(self):
        instr = Load(Reg(1), Reg(2), ty.INT)
        assert instr.uses() == [Reg(2)]

    def test_move_repr_and_subst(self):
        instr = Move(Reg(1), Reg(0), ty.INT)
        instr.replace_uses({Reg(0): 42})
        assert instr.src == 42

    def test_branch_successors(self):
        builder = diamond()
        func = builder.finish()
        entry = func.blocks["entry"]
        assert len(entry.successors()) == 2

    def test_comparison_detection(self):
        assert BinOp(Reg(0), "slt", 1, 2, ty.INT).is_comparison
        assert not BinOp(Reg(0), "add", 1, 2, ty.INT).is_comparison


class TestCFG:
    def test_reachable_blocks(self):
        func = diamond().finish()
        assert reachable_blocks(func) == set(func.blocks)

    def test_unreachable_removed(self):
        builder = diamond()
        orphan = builder.new_block("orphan")
        builder.switch_to(orphan)
        builder.ret(1)
        func = builder.finish()
        removed = remove_unreachable(func)
        assert removed == 1
        assert not any("orphan" in label for label in func.blocks)

    def test_predecessors(self):
        func = diamond().finish()
        preds = predecessors(func)
        exit_label = next(label for label in func.blocks if label.startswith("exit"))
        assert len(preds[exit_label]) == 2
        assert preds["entry"] == set()

    def test_rpo_starts_at_entry(self):
        func = diamond().finish()
        order = block_order_rpo(func)
        assert order[0] == "entry"
        assert len(order) == len(func.blocks)


class TestModule:
    def test_instruction_count(self):
        func = diamond().finish()
        module = Module(name="m", functions={"f": func})
        assert module.instruction_count() == sum(
            len(b.instrs) for b in func.blocks.values()
        )

    def test_function_lookup(self):
        func = diamond().finish()
        module = Module(name="m", functions={"f": func})
        assert module.function("f") is func
