"""IR printer and verifier tests."""

from __future__ import annotations

import pytest

from repro.compiler import DEFAULT_IMPLEMENTATIONS, compile_source, implementation
from repro.ir.instructions import BinOp, Const, Jump, Reg
from repro.ir.module import BasicBlock
from repro.ir.printer import format_function, format_global, format_module
from repro.ir.verify import VerificationError, verify_function, verify_module
from repro.minic import types as ty

SRC = """
int square(int x) { return x * x; }
char banner[8] = "hi";
int main(void) {
    char buf[16];
    long n = read_input(buf, 16);
    printf("%d %s %ld\\n", square(3), banner, n);
    return 0;
}
"""


class TestPrinter:
    def test_module_listing_structure(self):
        binary = compile_source(SRC, implementation("gcc-O0"))
        listing = format_module(binary.module)
        assert "; module" in listing
        assert "func @main" in listing
        assert "func @square" in listing
        assert "@banner" in listing
        assert "entry:" in listing

    def test_global_formats(self):
        binary = compile_source(SRC, implementation("gcc-O0"))
        banner = format_global(binary.module.globals["banner"])
        assert banner.startswith("@banner: 8 bytes")
        assert "0x6869" in banner  # "hi"

    def test_frame_slots_listed(self):
        binary = compile_source(SRC, implementation("gcc-O0"))
        text = format_function(binary.module.functions["main"])
        assert "buf: 16 bytes" in text
        assert "buffer" in text

    def test_relocations_shown(self):
        src = 'char *m = "x";\nint main(void){ return 0; }'
        binary = compile_source(src, implementation("gcc-O0"))
        assert "reloc" in format_global(binary.module.globals["m"])


class TestVerifier:
    def _module(self, impl="gcc-O2"):
        return compile_source(SRC, implementation(impl)).module

    def test_compiled_modules_verify_for_all_impls(self):
        for config in DEFAULT_IMPLEMENTATIONS:
            verify_module(compile_source(SRC, config).module)

    def test_sanitizer_build_verifies(self):
        from repro.compiler import SANITIZER_CONFIG

        verify_module(compile_source(SRC, SANITIZER_CONFIG, sanitizer="asan").module)

    def test_detects_missing_terminator(self):
        module = self._module()
        func = module.functions["main"]
        broken = BasicBlock("broken", [Const(Reg(0), 1, ty.INT)])
        func.blocks["broken"] = broken
        problems = verify_function(func, module)
        assert any("terminator" in p for p in problems)

    def test_detects_jump_to_unknown_block(self):
        module = self._module()
        func = module.functions["main"]
        func.blocks["bad"] = BasicBlock("bad", [Jump("nowhere")])
        problems = verify_function(func, module)
        assert any("unknown block" in p for p in problems)

    def test_detects_out_of_range_register(self):
        module = self._module()
        func = module.functions["square"]
        func.blocks[func.entry].instrs.insert(
            0, BinOp(Reg(func.num_regs + 5), "add", Reg(0), 1, ty.INT)
        )
        problems = verify_function(func, module)
        assert any("out-of-range" in p or "out of range" in p for p in problems)

    def test_detects_unknown_opcode(self):
        module = self._module()
        func = module.functions["square"]
        func.blocks[func.entry].instrs.insert(0, BinOp(Reg(0), "frobnicate", 1, 2, ty.INT))
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_detects_bad_slot_index(self):
        from repro.ir.instructions import AddrSlot

        module = self._module()
        func = module.functions["main"]
        func.blocks[func.entry].instrs.insert(0, AddrSlot(func.new_reg(), 999))
        problems = verify_function(func, module)
        assert any("slot" in p for p in problems)

    def test_juliet_sample_verifies_across_impls(self):
        from repro.juliet import build_suite
        from repro.compiler import compile_program
        from repro.minic import load

        suite = build_suite(scale=0.002)
        for case in suite.cases[:20]:
            program = load(case.bad_source)
            for config in (implementation("gcc-O0"), implementation("clang-O3")):
                verify_module(compile_program(program, config).module)

    def test_targets_verify(self):
        from repro.compiler import compile_program
        from repro.minic import load
        from repro.targets import build_target

        for name in ("tcpdump", "MuJS", "gpac"):
            program = load(build_target(name).source)
            for config in DEFAULT_IMPLEMENTATIONS[:4]:
                verify_module(compile_program(program, config).module)

    def test_env_flag_enables_verification(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_IR", "1")
        compile_source(SRC, implementation("clang-O2"))  # must not raise
