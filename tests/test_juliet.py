"""Juliet-like suite tests: registry, generation, ground-truth behavior."""

from __future__ import annotations

import random

import pytest

from repro.core.compdiff import CompDiff
from repro.juliet import CWE_REGISTRY, GROUPS, build_suite, generate_cwe, group_of
from repro.juliet.cwe import total_paper_tests
from repro.juliet.generator import scaled_count
from repro.juliet.templates import TEMPLATES
from repro.minic import load
from repro.sanitizers import MemorySanitizer, UndefinedBehaviorSanitizer


class TestRegistry:
    def test_twenty_cwes(self):
        assert len(CWE_REGISTRY) == 20

    def test_paper_total_matches_table2(self):
        assert total_paper_tests() == 18142

    def test_groups_partition_registry(self):
        grouped = [cwe for cwes in GROUPS.values() for cwe in cwes]
        assert sorted(grouped) == sorted(CWE_REGISTRY)

    def test_group_lookup(self):
        assert group_of(121) == "memory_error"
        assert group_of(476) == "null_deref"
        assert group_of(469) == "ptr_sub"

    def test_every_cwe_has_a_template(self):
        assert set(TEMPLATES) == set(CWE_REGISTRY)

    def test_scaled_count_floor(self):
        assert scaled_count(475, 0.02) == 2  # 18 * 0.02 rounds below minimum


class TestGeneration:
    def test_deterministic_given_seed(self):
        a = build_suite(scale=0.01, seed=7)
        b = build_suite(scale=0.01, seed=7)
        assert [c.uid for c in a.cases] == [c.uid for c in b.cases]
        assert [c.bad_source for c in a.cases] == [c.bad_source for c in b.cases]

    def test_different_seed_different_programs(self):
        a = build_suite(scale=0.01, seed=1)
        b = build_suite(scale=0.01, seed=2)
        assert [c.bad_source for c in a.cases] != [c.bad_source for c in b.cases]

    def test_proportions_follow_table2(self):
        suite = build_suite(scale=0.02)
        by_cwe = suite.by_cwe
        assert len(by_cwe[122]) > len(by_cwe[416])  # 3575 vs 394 paper tests
        assert len(by_cwe[121]) > len(by_cwe[469])

    def test_all_sources_compile(self):
        suite = build_suite(scale=0.005)
        for case in suite.cases:
            load(case.bad_source)
            load(case.good_source)

    def test_bad_and_good_differ(self):
        suite = build_suite(scale=0.005)
        for case in suite.cases:
            assert case.bad_source != case.good_source

    def test_overview_render(self):
        suite = build_suite(scale=0.005)
        table = suite.render_overview()
        assert "CWE-121" in table
        assert "Total" in table

    def test_unknown_cwe_rejected(self):
        with pytest.raises(KeyError):
            generate_cwe(999, 1)


class TestGroundTruth:
    """Spot-check that bad variants really are bugs and good really fixed."""

    @pytest.fixture(scope="class")
    def engine(self):
        return CompDiff(fuel=200_000)

    def test_cwe469_bad_always_diverges_good_never(self, engine):
        rng = random.Random(3)
        for case in generate_cwe(469, 4, rng):
            assert engine.check(load(case.bad_source), case.inputs).divergent, case.uid
            assert not engine.check(load(case.good_source), case.inputs).divergent

    def test_cwe685_detected_by_compdiff_and_ubsan(self, engine):
        rng = random.Random(3)
        ubsan = UndefinedBehaviorSanitizer()
        for case in generate_cwe(685, 2, rng):
            assert engine.check(load(case.bad_source), case.inputs).divergent
            assert ubsan.check(load(case.bad_source), case.inputs) is not None
            assert ubsan.check(load(case.good_source), case.inputs) is None

    def test_cwe457_branch_mech_visible_to_msan(self, engine):
        rng = random.Random(0)
        msan = MemorySanitizer()
        cases = [c for c in generate_cwe(457, 60, rng) if c.mech == "branch_use"]
        assert cases, "expected at least one branch_use variant in 60 draws"
        for case in cases[:3]:
            assert msan.check(load(case.bad_source), case.inputs) is not None
            assert msan.check(load(case.good_source), case.inputs) is None

    def test_cwe457_print_mech_invisible_to_msan(self, engine):
        rng = random.Random(0)
        msan = MemorySanitizer()
        cases = [c for c in generate_cwe(457, 40, rng) if c.mech == "print_value"]
        for case in cases[:3]:
            assert msan.check(load(case.bad_source), case.inputs) is None

    def test_cwe369_unused_division_divergence(self, engine):
        rng = random.Random(1)
        cases = [c for c in generate_cwe(369, 60, rng) if c.mech == "int_unused"]
        assert cases
        case = cases[0]
        assert engine.check(load(case.bad_source), case.inputs).divergent

    def test_cwe369_used_division_not_divergent(self, engine):
        rng = random.Random(1)
        cases = [c for c in generate_cwe(369, 60, rng) if c.mech == "int_used"]
        assert cases
        case = cases[0]
        # Every binary traps identically: same observation, no divergence.
        assert not engine.check(load(case.bad_source), case.inputs).divergent

    def test_good_variants_never_diverge_sample(self, engine):
        suite = build_suite(scale=0.004)
        for case in suite.cases:
            outcome = engine.check(load(case.good_source), case.inputs)
            assert not outcome.divergent, case.uid
