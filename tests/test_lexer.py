"""Lexer unit tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import LexError
from repro.minic.lexer import Token, TokenKind, tokenize


def kinds(source: str) -> list[TokenKind]:
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def texts(source: str) -> list[str]:
    return [t.text for t in tokenize(source)][:-1]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_keywords_recognized(self):
        for kw in ("int", "char", "while", "return", "struct", "sizeof", "NULL"):
            (token,) = tokenize(kw)[:-1]
            assert token.kind is TokenKind.KEYWORD

    def test_identifier_with_underscore_and_digits(self):
        (token,) = tokenize("_foo_bar42")[:-1]
        assert token.kind is TokenKind.IDENT
        assert token.text == "_foo_bar42"

    def test_identifier_prefixed_by_keyword_is_ident(self):
        (token,) = tokenize("integer")[:-1]
        assert token.kind is TokenKind.IDENT

    def test_line_macro_token(self):
        (token,) = tokenize("__LINE__")[:-1]
        assert token.kind is TokenKind.KEYWORD
        assert token.text == "__LINE__"


class TestNumbers:
    def test_decimal_int(self):
        (token,) = tokenize("12345")[:-1]
        assert token.kind is TokenKind.INT
        assert token.value == 12345

    def test_hex_int(self):
        (token,) = tokenize("0xFF")[:-1]
        assert token.value == 255

    def test_suffixes_preserved_in_text(self):
        (token,) = tokenize("42ul")[:-1]
        assert token.kind is TokenKind.INT
        assert token.text == "42ul"
        assert token.value == 42

    def test_float_literal(self):
        (token,) = tokenize("3.25")[:-1]
        assert token.kind is TokenKind.FLOAT
        assert token.value == 3.25

    def test_float_with_exponent(self):
        (token,) = tokenize("9.2e18")[:-1]
        assert token.kind is TokenKind.FLOAT
        assert token.value == 9.2e18

    def test_exponent_without_dot(self):
        (token,) = tokenize("1e6")[:-1]
        assert token.kind is TokenKind.FLOAT
        assert token.value == 1e6

    def test_float_f_suffix(self):
        (token,) = tokenize("1.5f")[:-1]
        assert token.kind is TokenKind.FLOAT

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_any_decimal_roundtrips(self, value):
        (token,) = tokenize(str(value))[:-1]
        assert token.value == value

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_any_hex_roundtrips(self, value):
        (token,) = tokenize(hex(value))[:-1]
        assert token.value == value


class TestCharAndString:
    def test_simple_char(self):
        (token,) = tokenize("'a'")[:-1]
        assert token.kind is TokenKind.CHAR
        assert token.value == ord("a")

    def test_escaped_newline_char(self):
        (token,) = tokenize(r"'\n'")[:-1]
        assert token.value == 10

    def test_nul_char(self):
        (token,) = tokenize(r"'\0'")[:-1]
        assert token.value == 0

    def test_hex_escape_char(self):
        (token,) = tokenize(r"'\x41'")[:-1]
        assert token.value == 0x41

    def test_string_value_decoded(self):
        (token,) = tokenize(r'"a\tb\n"')[:-1]
        assert token.kind is TokenKind.STRING
        assert token.value == "a\tb\n"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_unterminated_char_raises(self):
        with pytest.raises(LexError):
            tokenize("'a")

    def test_unknown_escape_raises(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')


class TestOperatorsAndComments:
    def test_maximal_munch_shift_assign(self):
        assert texts("a <<= 2") == ["a", "<<=", "2"]

    def test_arrow_vs_minus(self):
        assert texts("p->x - 1") == ["p", "->", "x", "-", "1"]

    def test_increment_vs_plus(self):
        assert texts("a+++b") == ["a", "++", "+", "b"]

    def test_line_comment_skipped(self):
        assert texts("a // comment here\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\n y */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_ellipsis(self):
        assert texts("...") == ["..."]


class TestPositions:
    def test_line_tracking(self):
        tokens = tokenize("a\nb\n  c")
        assert (tokens[0].line, tokens[1].line, tokens[2].line) == (1, 2, 3)

    def test_column_tracking(self):
        tokens = tokenize("ab cd")
        assert tokens[0].col == 1
        assert tokens[1].col == 4

    def test_block_comment_advances_lines(self):
        tokens = tokenize("/* a\nb\nc */ x")
        assert tokens[0].line == 3

    def test_token_is_frozen(self):
        token = tokenize("x")[0]
        with pytest.raises(Exception):
            token.text = "y"  # type: ignore[misc]


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=60))
def test_lexer_never_hangs_or_crashes_unexpectedly(source):
    """Any printable input either tokenizes or raises LexError."""
    try:
        tokens = tokenize(source)
    except LexError:
        return
    assert tokens[-1].kind is TokenKind.EOF
