"""Byte-identity gates for the decode-once lockstep executor.

The lockstep fast path (``repro.vm.lockstep``) replaces the reference
:class:`~repro.vm.machine.Machine`'s per-instruction IR walk with flat
pre-decoded instruction tables.  Its contract is strict: for every
binary and input, the lockstep run must be indistinguishable from the
reference run in every observable field — outputs, exit status, trap
kind, sanitizer report, bug sites, and the executed-instruction count
(which the fuel/timeout semantics hang off).  These tests pin that
contract over the full golden compile corpus (385 programs × 10
implementations) and over every terminal status class, and exercise the
ForkServer routing (decode cache, coverage fallback, REPRO_NO_LOCKSTEP,
REPRO_VERIFY_LOCKSTEP) plus the executor's k-1 degrade hook.
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

from repro.compiler import compile_source
from repro.compiler.implementations import DEFAULT_IMPLEMENTATIONS, implementation
from repro.errors import ReproError
from repro.juliet import build_suite
from repro.parallel.stats import EngineStats
from repro.vm import DecodedProgram, ForkServer, LockstepExecutor, run_binary, run_lockstep
from repro.vm.execution import ExecutionResult, Status, deadline_result
from repro.vm.memory import ImageLayout

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

#: Every observable an oracle verdict can depend on.  ``line_trace`` is
#: excluded by design (tracing runs take the reference path) and
#: ``output_checksum`` is transport filled in by the engine, not the VM.
IDENTITY_FIELDS = (
    "stdout",
    "stderr",
    "exit_code",
    "status",
    "trap",
    "sanitizer_report",
    "bug_sites",
    "executed_instructions",
    "binary_name",
)


def assert_identical(lock: ExecutionResult, ref: ExecutionResult, context: str) -> None:
    for field in IDENTITY_FIELDS:
        got, want = getattr(lock, field), getattr(ref, field)
        assert got == want, f"{context}: {field} diverged: {got!r} != {want!r}"


def both_runs(binary, input_bytes: bytes = b"", fuel=None):
    """One reference run and one lockstep run of the same binary."""
    layout = ImageLayout(binary)
    kwargs = {} if fuel is None else {"fuel": fuel}
    ref = run_binary(binary, input_bytes=input_bytes, layout=layout, **kwargs)
    lock = run_lockstep(DecodedProgram(binary, layout), input_bytes=input_bytes, **kwargs)
    return lock, ref


def _load_examples():
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        from unstable_code_gallery import EXAMPLES
        from quickstart import LISTING_1
    finally:
        sys.path.pop(0)
    corpus = {
        f"gallery/{i:02d}": src
        for i, (_, src) in enumerate(sorted(EXAMPLES.items()))
    }
    corpus["quickstart/listing1"] = LISTING_1
    return corpus


@pytest.fixture(scope="module")
def corpus():
    golden = json.loads((GOLDEN_DIR / "ir_digests.json").read_text())
    programs = _load_examples()
    suite = build_suite(scale=golden["juliet_scale"], seed=golden["juliet_seed"])
    for case in suite.cases:
        programs[f"juliet/{case.uid}/bad"] = case.bad_source
        programs[f"juliet/{case.uid}/good"] = case.good_source
    return programs


class TestGoldenCorpusIdentity:
    def test_lockstep_matches_reference_over_golden_corpus(self, corpus):
        # The headline gate: 385 programs × 10 implementations, every
        # observable field byte-identical between the two interpreters.
        mismatches = []
        for key, source in corpus.items():
            for config in DEFAULT_IMPLEMENTATIONS:
                binary = compile_source(source, config, name=key)
                lock, ref = both_runs(binary)
                for field in IDENTITY_FIELDS:
                    if getattr(lock, field) != getattr(ref, field):
                        mismatches.append((key, config.name, field))
        assert not mismatches, f"{len(mismatches)} diverged: {mismatches[:10]}"

    def test_lockstep_matches_reference_with_inputs(self, corpus):
        # A smaller sweep with non-empty stdin, exercising the input
        # builtins through both interpreters.
        keys = sorted(corpus)[:25]
        for key in keys:
            for config in (implementation("gcc-O0"), implementation("clang-O3")):
                binary = compile_source(corpus[key], config, name=key)
                for payload in (b"", b"\x00", b"hello", bytes(range(64))):
                    lock, ref = both_runs(binary, input_bytes=payload)
                    assert_identical(lock, ref, f"{key}/{config.name}/{payload!r}")


CRASH_NULL = """
int main(void) {
  int *p = (int *)(long)input_size();
  printf("%d", *p);
  return 0;
}
"""

CRASH_SIGFPE = """
int main(void) {
  int d = (int)input_size();
  printf("%d", 1 / d);
  return 0;
}
"""

CRASH_ABORT = """
int main(void) {
  if (input_size() == 0u) { abort(); }
  return 0;
}
"""

SPIN = """
int main(void) {
  unsigned int i = 0u;
  while (i < 100000000u) { i = i + 1u; }
  printf("%u", i);
  return 0;
}
"""

OOB_WRITE = """
int main(void) {
  int buf[4];
  int i = (int)input_size() + 6;
  buf[i] = 1;
  printf("%d", buf[0]);
  return 0;
}
"""

SIGNED_OVERFLOW = """
int main(void) {
  int x = 2147483647;
  int y = (int)input_size() + 1;
  printf("%d", x + y);
  return 0;
}
"""

DEEP_RECURSION = """
int f(int n) { return f(n + 1); }
int main(void) { printf("%d", f((int)input_size())); return 0; }
"""


class TestStatusParity:
    """Every terminal status class agrees between the interpreters."""

    @pytest.mark.parametrize("impl", ["gcc-O0", "gcc-O2", "clang-O0", "clang-O3"])
    @pytest.mark.parametrize(
        "source", [CRASH_NULL, CRASH_SIGFPE, CRASH_ABORT, DEEP_RECURSION],
        ids=["null-deref", "sigfpe", "abort", "stack-exhaustion"],
    )
    def test_crash_parity(self, source, impl):
        binary = compile_source(source, implementation(impl))
        lock, ref = both_runs(binary)
        assert ref.status is Status.CRASH
        assert_identical(lock, ref, impl)

    @pytest.mark.parametrize("fuel", [1, 2, 3, 5, 10, 17, 100, 1000, 25_000])
    def test_fuel_timeout_parity(self, fuel):
        # The executed-instruction count decides exactly where the budget
        # runs out; any drift between the interpreters shows up here.
        binary = compile_source(SPIN, implementation("gcc-O0"))
        lock, ref = both_runs(binary, fuel=fuel)
        assert ref.status is Status.TIMEOUT
        assert_identical(lock, ref, f"fuel={fuel}")

    @pytest.mark.parametrize(
        "sanitizer,source",
        [("asan", OOB_WRITE), ("ubsan", SIGNED_OVERFLOW), ("msan", OOB_WRITE)],
    )
    def test_sanitizer_parity(self, sanitizer, source):
        # Sanitized binaries take the generic decode path; the report and
        # the ==SAN== stderr line must still match exactly.
        binary = compile_source(source, implementation("clang-O0"), sanitizer=sanitizer)
        lock, ref = both_runs(binary)
        assert_identical(lock, ref, sanitizer)

    def test_ok_with_output_parity(self):
        src = 'int main(void){ printf("out %d\\n", 42); eprintf("err\\n"); return 3; }'
        binary = compile_source(src, implementation("gcc-O1"))
        lock, ref = both_runs(binary)
        assert ref.status is Status.OK and ref.exit_code == 3
        assert_identical(lock, ref, "ok")


class TestForkServerRouting:
    SRC = 'int main(void){ printf("%u", input_size()); return 0; }'

    def test_decode_cache_hits_and_stats(self):
        stats = EngineStats()
        server = ForkServer(
            compile_source(self.SRC, implementation("gcc-O0")), stats=stats
        )
        for i, payload in enumerate([b"", b"a", b"ab"]):
            assert server.run(payload).stdout == str(i).encode()
        assert server.decode_misses == 1
        assert server.decode_hits == 2
        assert server.lockstep_runs == 3 and server.fallback_runs == 0
        snap = stats.snapshot()["executor"]
        assert snap["lockstep_runs"] == 3
        assert snap["decode_hits"] == 2 and snap["decode_misses"] == 1

    def test_coverage_forces_reference_fallback(self):
        server = ForkServer(compile_source(self.SRC, implementation("gcc-O0")))
        server.run(b"", coverage=set())
        assert server.fallback_runs == 1 and server.lockstep_runs == 0

    def test_no_lockstep_env_forces_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_LOCKSTEP", "1")
        server = ForkServer(compile_source(self.SRC, implementation("gcc-O0")))
        result = server.run(b"xyz")
        assert result.stdout == b"3"
        assert server.fallback_runs == 1 and server.lockstep_runs == 0

    def test_verify_mode_accepts_identical_runs(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_LOCKSTEP", "1")
        server = ForkServer(compile_source(self.SRC, implementation("clang-O2")))
        assert server.run(b"ab").stdout == b"2"

    def test_verify_mode_rejects_divergence(self, monkeypatch):
        import repro.vm.forkserver as forkserver_mod

        monkeypatch.setenv("REPRO_VERIFY_LOCKSTEP", "1")
        server = ForkServer(compile_source(self.SRC, implementation("gcc-O0")))

        def tampered(decoded, input_bytes, fuel):
            result = run_lockstep(decoded, input_bytes=input_bytes, fuel=fuel)
            result.stdout = result.stdout + b"!"
            return result

        monkeypatch.setattr(forkserver_mod, "run_lockstep", tampered)
        with pytest.raises(ReproError, match="lockstep divergence"):
            server.run(b"")


class TestLockstepExecutor:
    SRC = 'int main(void){ printf("%u", input_size() * 2u); return 0; }'

    def _servers(self):
        return {
            config.name: ForkServer(compile_source(self.SRC, config))
            for config in DEFAULT_IMPLEMENTATIONS
        }

    def test_runs_all_implementations(self):
        executor = LockstepExecutor(self._servers())
        assert executor.decode_all() > 0
        results = executor.run_input(b"abc")
        assert set(results) == {c.name for c in DEFAULT_IMPLEMENTATIONS}
        assert all(r.stdout == b"6" for r in results.values())

    def test_on_error_degrades_failing_implementation(self):
        servers = self._servers()

        def explode(input_bytes, fuel=None, coverage=None):
            raise ReproError("injected")

        servers["gcc-O2"].run = explode
        executor = LockstepExecutor(servers)
        with pytest.raises(ReproError, match="injected"):
            executor.run_input(b"")
        results = executor.run_input(
            b"", on_error=lambda name, exc: deadline_result(name, str(exc))
        )
        assert results["gcc-O2"].deadline_expired
        survivors = [n for n, r in results.items() if not r.deadline_expired]
        assert len(survivors) == len(DEFAULT_IMPLEMENTATIONS) - 1
