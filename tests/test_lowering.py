"""Lowering-specific tests: IR shape, config-dependent choices."""

from __future__ import annotations

import pytest

from repro.compiler.implementations import implementation
from repro.compiler.lowering import lower_program
from repro.errors import LoweringError
from repro.ir.instructions import BinOp, BugSite, Call, CallBuiltin, Const, Store
from repro.minic import load
from repro.minic import types as ty

from tests.conftest import stdout_of

GCC = implementation("gcc-O0")
CLANG = implementation("clang-O0")


def lower(source: str, config=GCC):
    return lower_program(load(source), config)


class TestFunctionShape:
    def test_params_stored_to_slots(self):
        module = lower("int f(int a, int b) { return a + b; }")
        func = module.functions["f"]
        stores = [i for i in func.blocks["entry"].instrs if isinstance(i, Store)]
        assert len(stores) == 2
        assert len(func.slots) == 2

    def test_param_registers_reserved(self):
        module = lower("int f(int a, int b) { return a; }")
        func = module.functions["f"]
        defined = [i.defines().id for i in func.instructions() if i.defines() is not None]
        # No temporary may reuse the incoming argument registers 0 and 1.
        assert all(reg_id >= 2 for reg_id in defined)

    def test_main_gets_implicit_return_zero(self):
        module = lower('int main(void) { printf("x"); }')
        terminators = [b.terminator for b in module.functions["main"].blocks.values()]
        assert any(t is not None and getattr(t, "value", None) == 0 for t in terminators)

    def test_locals_become_slots_with_buffer_flag(self):
        module = lower("int main(void) { int x; char buf[32]; return 0; }")
        slots = {s.name: s for s in module.functions["main"].slots}
        assert not slots["x"].is_buffer
        assert slots["buf"].is_buffer


class TestArgumentOrder:
    SRC = (
        "int g = 0;\n"
        "int tick(int v) { g = g * 10 + v; return v; }\n"
        'int main(void) { int r = tick(1) + tick(2); printf("%d\\n", g); return r; }'
    )

    def test_binary_operands_fixed_left_to_right(self):
        # Binary operand order is fixed in this simulator; only *call
        # argument* order varies per implementation.
        assert stdout_of(self.SRC, "gcc-O0") == stdout_of(self.SRC, "clang-O0") == b"12\n"

    CALL_SRC = (
        "int g = 0;\n"
        "int tick(int v) { g = g * 10 + v; return v; }\n"
        "int two(int a, int b) { return a + b; }\n"
        'int main(void) { two(tick(1), tick(2)); printf("%d\\n", g); return 0; }'
    )

    def test_call_args_gcc_right_to_left(self):
        assert stdout_of(self.CALL_SRC, "gcc-O0") == b"21\n"

    def test_call_args_clang_left_to_right(self):
        assert stdout_of(self.CALL_SRC, "clang-O0") == b"12\n"

    def test_positional_order_preserved_despite_eval_order(self):
        src = (
            "int sub(int a, int b) { return a - b; }\n"
            'int main(void) { printf("%d\\n", sub(10, 3)); return 0; }'
        )
        assert stdout_of(src, "gcc-O0") == stdout_of(src, "clang-O0") == b"7\n"


class TestNswMarking:
    def test_signed_arith_marked_nsw(self):
        module = lower("int f(int a, int b) { return a + b; }")
        adds = [i for i in module.functions["f"].instructions()
                if isinstance(i, BinOp) and i.op == "add" and isinstance(i.type, ty.IntType)
                and i.type.bits == 32]
        assert any(i.nsw for i in adds)

    def test_unsigned_arith_not_nsw(self):
        module = lower("unsigned int f(unsigned int a, unsigned int b) { return a + b; }")
        adds = [i for i in module.functions["f"].instructions()
                if isinstance(i, BinOp) and i.op == "add"]
        assert all(not i.nsw for i in adds if isinstance(i.type, ty.IntType) and not i.type.signed)


class TestWidenIntMul:
    SRC = "long f(int a, int b) { long r = a * b; return r; }"

    def test_gcc_wraps_then_extends(self):
        module = lower(self.SRC, implementation("gcc-O2"))
        muls = [i for i in module.functions["f"].instructions()
                if isinstance(i, BinOp) and i.op == "mul"]
        assert all(i.type.bits == 32 for i in muls)

    def test_clang_o1_computes_in_64(self):
        module = lower(self.SRC, implementation("clang-O1"))
        muls = [i for i in module.functions["f"].instructions()
                if isinstance(i, BinOp) and i.op == "mul"]
        assert any(i.type.bits == 64 for i in muls)

    def test_clang_o0_does_not_widen(self):
        module = lower(self.SRC, implementation("clang-O0"))
        muls = [i for i in module.functions["f"].instructions()
                if isinstance(i, BinOp) and i.op == "mul"]
        assert all(i.type.bits == 32 for i in muls)


class TestLineMacroPolicy:
    SRC = (
        "int main(void) {\n"
        "    int x =\n"
        "        __LINE__;\n"
        '    printf("%d", x);\n'
        "    return 0;\n"
        "}\n"
    )

    def test_gcc_uses_token_line(self):
        assert stdout_of(self.SRC, "gcc-O0") == b"3"

    def test_clang_uses_statement_line(self):
        assert stdout_of(self.SRC, "clang-O0") == b"2"

    def test_single_line_statement_agrees(self):
        src = 'int main(void) { printf("%d", __LINE__); return 0; }'
        assert stdout_of(src, "gcc-O0") == stdout_of(src, "clang-O0") == b"1"


class TestGlobalsAndStrings:
    def test_string_literals_interned(self):
        module = lower('int main(void){ printf("abc"); printf("abc"); return 0; }')
        labels = [name for name in module.globals if name.startswith(".str")]
        assert len(labels) == 1

    def test_static_local_mangled_global(self):
        module = lower("int f(void) { static int n = 3; return n; }")
        statics = [name for name in module.globals if name.startswith("f.n")]
        assert len(statics) == 1
        assert module.globals[statics[0]].init == (3).to_bytes(4, "little")

    def test_global_pointer_relocation_recorded(self):
        module = lower('char *m = "hi";\nint main(void){ return 0; }')
        assert module.globals["m"].relocations

    def test_global_array_literal_init(self):
        module = lower("int t[3] = {1, 2, 3};\nint main(void){ return 0; }")
        raw = module.globals["t"].init
        assert raw == b"\x01\x00\x00\x00\x02\x00\x00\x00\x03\x00\x00\x00"

    def test_non_constant_global_init_rejected(self):
        with pytest.raises(LoweringError):
            lower("int g = input_size();\nint main(void){ return 0; }")


class TestMetadata:
    def test_bugsite_collected(self):
        module = lower("int main(void) { __bugsite(42); return 0; }")
        assert module.bug_sites == [42]
        assert any(isinstance(i, BugSite) for i in module.functions["main"].instructions())

    def test_magic_constants_from_comparisons(self):
        module = lower("int main(void) { if (input_byte(0) == 77) return 1; return 0; }")
        assert 77 in module.magic_constants

    def test_magic_strings_from_strcmp(self):
        module = lower(
            'int main(void) { char b[8]; read_input(b, 7); b[7] = 0;'
            ' return strcmp(b, "MAGIC!") == 0; }'
        )
        assert b"MAGIC!" in module.magic_strings

    def test_zero_one_literals_not_magic(self):
        module = lower("int main(void) { if (input_byte(0) == 1) return 1; return 0; }")
        assert 1 not in module.magic_constants


class TestBuiltinsLowering:
    def test_printf_becomes_callbuiltin(self):
        module = lower('int main(void){ printf("%d", 5); return 0; }')
        calls = [i for i in module.functions["main"].instructions()
                 if isinstance(i, CallBuiltin) and i.name == "printf"]
        assert len(calls) == 1
        assert len(calls[0].arg_types) == 2

    def test_user_function_becomes_call(self):
        module = lower("int f(void) { return 1; }\nint main(void){ return f(); }")
        calls = [i for i in module.functions["main"].instructions() if isinstance(i, Call)]
        assert calls and calls[0].callee == "f"

    def test_vararg_float_promoted_to_double(self):
        module = lower('int main(void){ float f = 1.0f; printf("%f", f); return 0; }')
        call = next(i for i in module.functions["main"].instructions()
                    if isinstance(i, CallBuiltin) and i.name == "printf")
        assert call.arg_types[1] == ty.DOUBLE

    def test_char_vararg_promoted_to_int(self):
        module = lower('int main(void){ char c = 65; printf("%c", c); return 0; }')
        call = next(i for i in module.functions["main"].instructions()
                    if isinstance(i, CallBuiltin) and i.name == "printf")
        assert call.arg_types[1] == ty.INT
