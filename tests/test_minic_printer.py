"""Printer round-trip suite: ``to_source`` must invert ``parse``.

The generative pipeline rests on two properties of the pretty-printer:

* **idempotence** — printing is a fixpoint, so reduced repros bank as
  stable bytes;
* **behavior preservation** — a reprinted program produces the same
  per-implementation checksums as the original, so reduction and
  banking never smuggle in a semantic change.

Both are pinned here over the Juliet-style corpus (every construct the
templates emit) plus a handwritten kitchen-sink program covering the
syntax corners the corpus is thin on.
"""

from __future__ import annotations

import pytest

from repro.core.compdiff import CompDiff
from repro.juliet import build_suite
from repro.minic import count_nodes, load, to_source

#: Structs, arrays + brace init, pointer declarators, switch/default,
#: do-while, for-with-decl, casts, sizeof (both forms), char/string
#: escapes, conditional, comma, postfix ++, static storage, NULL.
KITCHEN_SINK = r"""
struct point {
    int x;
    int y;
    int tags[3];
};

static int counter = 7;
int table[4] = {1, 2, 3, 4};

static long scale(int value, int factor) {
    long wide = (long)value * factor;
    return wide;
}

int pick(int which) {
    switch (which) {
    case 0:
        return table[0];
    case 1: {
        int t = table[1];
        return t;
    }
    default:
        break;
    }
    return -1;
}

int main(void) {
    struct point p;
    struct point *pp = &p;
    char *msg = "edge\tcases: \"quoted\" \\ \n";
    int i;
    p.x = 0;
    p.y = 0;
    pp->x = counter > 0 ? pick(1) : pick(0);
    for (i = 0; i < 3; i++) {
        p.tags[i] = i * i;
    }
    do {
        counter--;
    } while (counter > 9);
    while (p.y < 2) {
        p.y = p.y + 1;
    }
    if (msg != NULL) {
        printf("%d %d %d\n", p.x, p.y, p.tags[2]);
    }
    printf("%d\n", (int)scale(counter, 3));
    printf("%d %d\n", (int)sizeof(struct point), (int)sizeof(table));
    printf("%c\n", 'A');
    i = (1, 2);
    printf("%d %u %ld\n", i, 5u, 6l);
    return 0;
}
"""


def _corpus_sources() -> list[tuple[str, str]]:
    suite = build_suite(scale=0.002)
    sources = [("kitchen_sink", KITCHEN_SINK)]
    for case in suite.cases:
        sources.append((f"{case.uid}_bad", case.bad_source))
        sources.append((f"{case.uid}_good", case.good_source))
    return sources


@pytest.fixture(scope="module")
def corpus_sources():
    return _corpus_sources()


def test_roundtrip_reparses_and_is_idempotent(corpus_sources):
    """to_source(load(s)) re-parses, and reprinting it is a fixpoint."""
    for name, source in corpus_sources:
        printed = to_source(load(source))
        reprinted = to_source(load(printed))
        assert printed == reprinted, f"printer not idempotent on {name}"


def test_roundtrip_preserves_node_count(corpus_sources):
    """The reducer's progress metric is invariant under reprinting."""
    for name, source in corpus_sources:
        program = load(source)
        reloaded = load(to_source(program))
        assert count_nodes(program) == count_nodes(reloaded), name


def test_roundtrip_preserves_behavior():
    """Reprinted programs produce identical per-implementation checksums.

    ``__LINE__`` programs are excluded: the printer legitimately changes
    line numbers, which that macro observes by design.
    """
    engine = CompDiff()
    cases = [
        ("kitchen_sink", KITCHEN_SINK, [b""]),
    ]
    suite = build_suite(scale=0.001)
    for case in suite.cases[:4]:
        if "__LINE__" not in case.bad_source:
            cases.append((case.uid, case.bad_source, list(case.inputs)))
    for name, source, inputs in cases:
        original = engine.check_source(source, inputs, name=name)
        reprinted = engine.check_source(
            to_source(load(source)), inputs, name=f"{name}_reprinted"
        )
        for diff_a, diff_b in zip(original.diffs, reprinted.diffs):
            assert diff_a.checksums == diff_b.checksums, name


def test_brace_initializers_roundtrip():
    """The parser's __array_init encoding prints back as braces."""
    printed = to_source(load("int xs[3] = {4, 5, 6};\nint main(void) { return xs[1]; }"))
    assert "{4, 5, 6}" in printed
    assert "__array_init" not in printed


def test_char_and_string_escapes_roundtrip():
    source = 'int main(void) {\n    printf("a\\x01b\\n");\n    return \'\\n\';\n}\n'
    printed = to_source(load(source))
    assert printed == to_source(load(printed))


def test_int_literal_suffixes_roundtrip():
    printed = to_source(load("int main(void) { printf(\"%lu\\n\", 3ul); return 0; }"))
    assert "3UL" in printed
    assert to_source(load(printed)) == printed
