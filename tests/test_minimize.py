"""Input-minimization tests."""

from __future__ import annotations

from repro.core.compdiff import CompDiff
from repro.core.minimize import minimize_input

GATED = """
int main(void) {
    char buf[64];
    long n = read_input(buf, 64);
    if (n < 3) { printf("short\\n"); return 1; }
    if ((buf[0] & 255) != 88) { printf("nomagic\\n"); return 1; }
    int x;
    if (buf[1] == 7) { x = 3; }
    printf("x=%d\\n", x);
    return 0;
}
"""


class TestMinimizer:
    def test_strips_irrelevant_tail(self):
        noisy = b"X\x01" + b"JUNKJUNKJUNKJUNKJUNK"
        result = minimize_input(GATED, noisy)
        assert len(result.minimized) <= 4
        assert result.minimized[:1] == b"X"
        # The minimized input must still trigger a divergence.
        outcome = CompDiff().check_source(GATED, [result.minimized])
        assert outcome.divergent

    def test_reduction_metric(self):
        noisy = b"X\x01" + b"A" * 30
        result = minimize_input(GATED, noisy)
        assert 0.0 <= result.reduction <= 1.0
        assert result.reduction > 0.5

    def test_non_divergent_input_returned_unchanged(self):
        result = minimize_input(GATED, b"zz-not-magic")
        assert result.minimized == b"zz-not-magic"

    def test_canonicalizes_free_bytes(self):
        noisy = b"X\x01\xff"
        result = minimize_input(GATED, noisy)
        # Byte 2 is free: canonicalized to 0x00 or 'A' (or removed).
        assert result.minimized[0:1] == b"X"
        if len(result.minimized) >= 3:
            assert result.minimized[2] in (0, 0x41)

    def test_signature_preserving_mode(self):
        from repro.core.minimize import Minimizer
        from repro.core.triage import signature_of
        from repro.minic import load

        engine = CompDiff()
        servers = engine.build(load(GATED))
        data = b"X\x01" + b"tail" * 4
        before = signature_of(engine.run_input(servers, data))
        minimizer = Minimizer(engine, servers, preserve_signature=True)
        result = minimizer.minimize(data)
        after = signature_of(engine.run_input(servers, result.minimized))
        assert after == before
