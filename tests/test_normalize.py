"""Output-normalizer coverage (RQ5 machinery)."""

from __future__ import annotations

from repro.core.normalize import EPOCH_SECONDS, POINTER, TIMESTAMP, OutputNormalizer


class TestPatterns:
    def test_timestamp_pattern_matches_epan_format(self):
        normalizer = OutputNormalizer(patterns=[TIMESTAMP])
        assert normalizer.normalize(b"10:44:23.405830 [Epan WARNING]") == b"<TIME> [Epan WARNING]"

    def test_timestamp_requires_fractional_part(self):
        normalizer = OutputNormalizer(patterns=[TIMESTAMP])
        assert normalizer.normalize(b"at 10:44:23 sharp") == b"at 10:44:23 sharp"

    def test_pointer_pattern(self):
        normalizer = OutputNormalizer(patterns=[POINTER])
        assert normalizer.normalize(b"sym at 0x7fffdead") == b"sym at <PTR>"

    def test_pointer_pattern_ignores_short_hex(self):
        normalizer = OutputNormalizer(patterns=[POINTER])
        assert normalizer.normalize(b"flags 0xff") == b"flags 0xff"

    def test_epoch_pattern(self):
        normalizer = OutputNormalizer(patterns=[EPOCH_SECONDS])
        assert normalizer.normalize(b"ts=1712345678 ok") == b"ts=<EPOCH> ok"

    def test_multiple_occurrences_all_scrubbed(self):
        normalizer = OutputNormalizer(patterns=[TIMESTAMP])
        out = normalizer.normalize(b"11:11:11.111111 x 22:22:22.222222")
        assert out == b"<TIME> x <TIME>"


class TestComposition:
    def test_patterns_apply_in_order(self):
        normalizer = OutputNormalizer()
        normalizer.add_pattern(rb"abc", b"x")
        normalizer.add_pattern(rb"x+", b"y")
        assert normalizer.normalize(b"abcabc") == b"y"

    def test_add_pattern_chains(self):
        normalizer = OutputNormalizer().add_pattern(rb"a", b"b").add_pattern(rb"b+", b"c")
        assert normalizer.normalize(b"aaa") == b"c"

    def test_standard_composition(self):
        normalizer = OutputNormalizer.standard()
        noisy = b"09:08:07.123456 epoch 1699999999 ptr 0xdeadbeef"
        out = normalizer.normalize(noisy)
        assert b"<TIME>" in out
        assert b"<EPOCH>" in out
        assert b"0xdeadbeef" in out  # pointers are a real signal, kept

    def test_empty_output_passthrough(self):
        assert OutputNormalizer.standard().normalize(b"") == b""

    def test_binary_garbage_passthrough(self):
        blob = bytes(range(256))
        assert OutputNormalizer().normalize(blob) == blob
