"""Serial-vs-parallel equivalence for the differential execution engine.

The parallel engine is a pure wall-clock optimization: at any ``workers``
setting the DiffResult checksums, divergent flags, and groups() must be
byte-identical to the serial CompDiff path.  These tests pin that over a
Juliet-derived corpus plus seeded random inputs, the ServerGroup
``run_input`` fan-out, ``check_batch``, and the RQ6 partial-timeout
retry schedule.
"""

from __future__ import annotations

import random

import pytest

from repro.core.compdiff import CompDiff
from repro.juliet import build_suite
from repro.minic import load
from repro.parallel import CompileCache, EngineStats, ParallelEngine, ServerGroup

pytestmark = pytest.mark.parallel

WORKER_COUNTS = (2, 4)

#: Uninitialized loop bound: implementations that fill uninitialized
#: stack slots differently disagree on the trip count, so at a starved
#: fuel budget some implementations time out while others finish —
#: exactly the RQ6 partial-timeout case.
TIMEOUT_SOURCE = """
int main(void) {
    int bound;
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < bound; i = i + 1) {
        acc = acc + i;
    }
    printf("acc=%d\\n", acc);
    return 0;
}
"""


def _corpus() -> list[tuple[str, list[bytes], str]]:
    """A small mixed corpus: Juliet bad/good pairs + seeded random inputs."""
    suite = build_suite(scale=0.002)
    rng = random.Random(20230325)
    jobs: list[tuple[str, list[bytes], str]] = []
    for case in suite.cases[:4]:
        extra = [bytes(rng.randrange(256) for _ in range(rng.randrange(1, 12)))
                 for _ in range(2)]
        jobs.append((case.bad_source, list(case.inputs) + extra, case.uid + "_bad"))
        jobs.append((case.good_source, list(case.inputs), case.uid + "_good"))
    return jobs


def _outcome_signature(outcome):
    """Everything a verdict consumer can observe, in comparable form."""
    return [
        (diff.input, diff.checksums, diff.observations, diff.divergent, diff.groups())
        for diff in outcome.diffs
    ]


@pytest.fixture(scope="module")
def corpus():
    return _corpus()


@pytest.fixture(scope="module")
def serial_outcomes(corpus):
    engine = CompDiff()
    return [engine.check_source(src, inputs, name=name) for src, inputs, name in corpus]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_check_source_equivalence(corpus, serial_outcomes, workers):
    with CompDiff(workers=workers) as engine:
        for (src, inputs, name), expected in zip(corpus, serial_outcomes):
            outcome = engine.check_source(src, inputs, name=name)
            assert _outcome_signature(outcome) == _outcome_signature(expected)
            assert outcome.divergent == expected.divergent
            assert outcome.matrix.rows == expected.matrix.rows


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_check_batch_equivalence(corpus, serial_outcomes, workers):
    """One scattered batch matches the serial per-program loop exactly."""
    with CompDiff(workers=workers) as engine:
        outcomes = engine.check_batch(corpus)
    assert len(outcomes) == len(serial_outcomes)
    for outcome, expected in zip(outcomes, serial_outcomes):
        assert _outcome_signature(outcome) == _outcome_signature(expected)


def test_batch_results_keep_implementation_order(corpus):
    with CompDiff(workers=2) as engine:
        outcome = engine.check_batch(corpus[:1])[0]
    expected = [config.name for config in engine.implementations]
    for diff in outcome.diffs:
        assert list(diff.checksums) == expected
        assert list(diff.results) == expected


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_run_input_fan_out_via_server_group(corpus, workers):
    """build() hands back a ServerGroup whose run_input fans out remotely,
    with results identical to local ForkServer execution."""
    src, inputs, name = corpus[0]
    serial = CompDiff()
    serial_servers = serial.build(load(src), name=name)
    with CompDiff(workers=workers) as engine:
        servers = engine.build(load(src), name=name)
        assert isinstance(servers, ServerGroup)
        for input_bytes in inputs:
            parallel_diff = engine.run_input(servers, input_bytes)
            serial_diff = serial.run_input(serial_servers, input_bytes)
            assert parallel_diff.checksums == serial_diff.checksums
            assert parallel_diff.observations == serial_diff.observations
            assert parallel_diff.groups() == serial_diff.groups()


def test_partial_timeout_retry_equivalence():
    """RQ6: the batched engine applies the same fuel-escalation schedule
    as the serial path, so a partial timeout resolves identically."""
    fuel = 260  # enough for some uninit fills to finish, not all
    serial = CompDiff(fuel=fuel)
    expected = serial.check_source(TIMEOUT_SOURCE, [b""], name="rq6")
    statuses = {
        name: result.timed_out
        for name, result in expected.diffs[0].results.items()
    }
    assert any(statuses.values()) and not all(statuses.values()), (
        f"fixture fuel must produce a PARTIAL timeout, got {statuses}"
    )
    for workers in WORKER_COUNTS:
        with CompDiff(fuel=fuel, workers=workers) as engine:
            outcome = engine.check_source(TIMEOUT_SOURCE, [b""], name="rq6")
        assert _outcome_signature(outcome) == _outcome_signature(expected)
        assert engine.stats.timeout_retries == serial.stats.timeout_retries


def test_parallel_stats_are_deterministic(corpus):
    """Execution accounting is scheduling-independent: every implementation
    ran every input exactly once (plus any deterministic retries)."""
    src, inputs, name = corpus[0]
    with CompDiff(workers=2) as engine:
        engine.check_source(src, inputs, name=name)
        stats = engine.stats
    impl_names = [config.name for config in engine.implementations]
    assert stats.inputs_checked == len(inputs)
    assert stats.exec_counts == {name: len(inputs) for name in impl_names}
    # One task per dispatched scatter unit, one latency sample per task.
    assert stats.batches >= 1
    assert len(stats.batch_latencies) == stats.batches


def test_engine_rejects_bad_worker_counts():
    with pytest.raises(ValueError):
        CompDiff(workers=0)
    with pytest.raises(ValueError):
        ParallelEngine(CompDiff().implementations, fuel=1000, workers=1)


def test_close_is_idempotent(corpus):
    src, inputs, name = corpus[0]
    engine = CompDiff(workers=2)
    try:
        engine.check_source(src, inputs[:1], name=name)
    finally:
        engine.close()
        engine.close()


def test_parallel_with_compile_cache(corpus):
    """A shared compile cache composes with the worker pool (workers keep
    their own warm caches) and the verdicts never change across repeats."""
    src, inputs, name = corpus[0]
    expected = CompDiff().check_source(src, inputs, name=name)
    cache = CompileCache()
    stats = EngineStats()
    with CompDiff(workers=2, compile_cache=cache, stats=stats) as engine:
        first = engine.check_source(src, inputs, name=name)
        second = engine.check_source(src, inputs, name=name)
    for outcome in (first, second):
        assert _outcome_signature(outcome) == _outcome_signature(expected)
