"""Parser unit tests."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.minic import ast, parse
from repro.minic import types as ty


def parse_expr(text: str) -> ast.Expr:
    program = parse(f"int main(void) {{ return {text}; }}")
    ret = program.function("main").body.body[0]
    assert isinstance(ret, ast.Return)
    return ret.value


def parse_body(text: str) -> list[ast.Stmt]:
    program = parse(f"int main(void) {{ {text} }}")
    return program.function("main").body.body


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.rhs, ast.Binary) and expr.rhs.op == "*"

    def test_precedence_shift_below_add(self):
        expr = parse_expr("1 << 2 + 3")
        assert expr.op == "<<"
        assert isinstance(expr.rhs, ast.Binary) and expr.rhs.op == "+"

    def test_comparison_below_shift(self):
        expr = parse_expr("a << 1 < b")
        assert expr.op == "<"

    def test_logical_and_below_or(self):
        expr = parse_expr("a || b && c")
        assert expr.op == "||"
        assert isinstance(expr.rhs, ast.Binary) and expr.rhs.op == "&&"

    def test_left_associativity_of_minus(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.op == "-"
        assert isinstance(expr.lhs, ast.Binary) and expr.lhs.op == "-"

    def test_assignment_right_associative(self):
        (stmt,) = parse_body("a = b = 1;")
        expr = stmt.expr
        assert isinstance(expr, ast.Assign)
        assert isinstance(expr.value, ast.Assign)

    def test_conditional_expression(self):
        expr = parse_expr("a ? 1 : 2")
        assert isinstance(expr, ast.Conditional)

    def test_unary_deref_and_addr(self):
        expr = parse_expr("*&x")
        assert isinstance(expr, ast.Unary) and expr.op == "*"
        assert isinstance(expr.operand, ast.Unary) and expr.operand.op == "&"

    def test_postfix_increment(self):
        expr = parse_expr("x++")
        assert isinstance(expr, ast.Unary) and expr.op == "p++"

    def test_prefix_increment(self):
        expr = parse_expr("++x")
        assert isinstance(expr, ast.Unary) and expr.op == "++"

    def test_call_with_args(self):
        expr = parse_expr("f(1, x, g())")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 3

    def test_index_chain(self):
        expr = parse_expr("m[1][2]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_member_and_arrow(self):
        dot = parse_expr("s.field")
        arrow = parse_expr("p->field")
        assert isinstance(dot, ast.Member) and not dot.arrow
        assert isinstance(arrow, ast.Member) and arrow.arrow

    def test_cast_expression(self):
        expr = parse_expr("(long)x")
        assert isinstance(expr, ast.Cast)
        assert expr.target_type == ty.LONG

    def test_cast_pointer_type(self):
        expr = parse_expr("(char*)p")
        assert isinstance(expr, ast.Cast)
        assert expr.target_type == ty.PointerType(ty.CHAR)

    def test_parenthesized_not_cast(self):
        expr = parse_expr("(x)")
        assert isinstance(expr, ast.Ident)

    def test_sizeof_type(self):
        expr = parse_expr("sizeof(int)")
        assert isinstance(expr, ast.SizeofType)

    def test_sizeof_expr(self):
        expr = parse_expr("sizeof x")
        assert isinstance(expr, ast.SizeofExpr)

    def test_string_concatenation(self):
        expr = parse_expr('"ab" "cd"')
        assert isinstance(expr, ast.StrLit)
        assert expr.value == "abcd"

    def test_null_literal(self):
        assert isinstance(parse_expr("NULL"), ast.NullLit)

    def test_comma_expression(self):
        (stmt,) = parse_body("a = (1, 2);")
        inner = stmt.expr.value
        assert isinstance(inner, ast.Binary) and inner.op == ","


class TestStatements:
    def test_if_else(self):
        (stmt,) = parse_body("if (x) { y = 1; } else { y = 2; }")
        assert isinstance(stmt, ast.If)
        assert stmt.otherwise is not None

    def test_dangling_else_binds_inner(self):
        (stmt,) = parse_body("if (a) if (b) x = 1; else x = 2;")
        assert isinstance(stmt, ast.If)
        assert stmt.otherwise is None
        inner = stmt.then
        assert isinstance(inner, ast.If) and inner.otherwise is not None

    def test_while(self):
        (stmt,) = parse_body("while (x) x = x - 1;")
        assert isinstance(stmt, ast.While)

    def test_do_while(self):
        (stmt,) = parse_body("do { x++; } while (x < 10);")
        assert isinstance(stmt, ast.DoWhile)

    def test_for_full(self):
        (stmt,) = parse_body("for (int i = 0; i < 3; i++) { }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)

    def test_for_empty_clauses(self):
        (stmt,) = parse_body("for (;;) { break; }")
        assert isinstance(stmt, ast.For)
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_multi_declarator(self):
        stmts = parse_body("int a = 1, b = 2;")
        flattened = stmts[0]
        assert isinstance(flattened, ast.Block)
        assert all(isinstance(s, ast.VarDecl) for s in flattened.body)

    def test_static_local(self):
        (stmt,) = parse_body("static int counter = 0;")
        assert isinstance(stmt, ast.VarDecl) and stmt.is_static

    def test_array_declarator(self):
        (stmt,) = parse_body("char buf[16];")
        assert isinstance(stmt.var_type, ty.ArrayType)
        assert stmt.var_type.length == 16

    def test_2d_array_declarator(self):
        (stmt,) = parse_body("int m[2][3];")
        assert stmt.var_type.size() == 24
        assert stmt.var_type.element.length == 3


class TestTopLevel:
    def test_struct_definition_and_use(self):
        program = parse(
            """
            struct Point { int x; int y; };
            int main(void) { struct Point p; p.x = 1; return p.x; }
            """
        )
        struct_def = program.decls[0]
        assert isinstance(struct_def, ast.StructDef)
        assert struct_def.struct_type.size() == 8

    def test_global_with_init(self):
        program = parse("int g = 42;\nint main(void) { return g; }")
        g = program.globals()[0]
        assert isinstance(g.init, ast.IntLit)

    def test_function_params(self):
        program = parse("int f(int a, char *b) { return a; }")
        f = program.function("f")
        assert len(f.params) == 2
        assert f.params[1].param_type == ty.PointerType(ty.CHAR)

    def test_void_param_list(self):
        program = parse("int f(void) { return 0; }")
        assert program.function("f").params == []

    def test_array_param_decays(self):
        program = parse("int f(char buf[16]) { return 0; }")
        assert program.function("f").params[0].param_type == ty.PointerType(ty.CHAR)

    def test_unknown_struct_rejected(self):
        with pytest.raises(ParseError):
            parse("int main(void) { struct Nope x; return 0; }")

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse("int main(void) { return 0 }")

    def test_unbalanced_brace_rejected(self):
        with pytest.raises(ParseError):
            parse("int main(void) { if (1) { return 0; }")

    def test_unsigned_types(self):
        program = parse("unsigned int g;\nunsigned long h;\nint main(void){return 0;}")
        assert program.globals()[0].var_type == ty.UINT
        assert program.globals()[1].var_type == ty.ULONG


class TestLineMacro:
    def test_statement_line_recorded(self):
        program = parse(
            "int main(void) {\n"
            "    int rc =\n"
            "        __LINE__;\n"
            "    return rc;\n"
            "}\n"
        )
        decl = program.function("main").body.body[0]
        macro = decl.init
        assert isinstance(macro, ast.LineMacro)
        assert macro.line == 3
        assert macro.statement_line == 2
