"""Parser robustness: arbitrary token soup must never crash the front end."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.errors import MiniCError
from repro.minic import load, parse

VOCABULARY = [
    "int", "char", "long", "unsigned", "void", "struct", "enum", "static",
    "if", "else", "while", "for", "return", "break", "continue", "switch",
    "case", "default", "sizeof", "NULL", "__LINE__",
    "main", "x", "y", "foo", "p",
    "0", "1", "42", "0xff", "1.5", "'a'", '"str"',
    "+", "-", "*", "/", "%", "=", "==", "!=", "<", ">", "<<", ">>",
    "&", "|", "^", "&&", "||", "!", "~", "++", "--", "->", ".",
    "(", ")", "[", "]", "{", "}", ";", ",", "?", ":",
]


@given(st.lists(st.sampled_from(VOCABULARY), max_size=40))
@settings(max_examples=200, deadline=None)
def test_token_soup_never_crashes_parser(tokens):
    source = " ".join(tokens)
    try:
        parse(source)
    except MiniCError:
        pass  # rejecting is fine; crashing or hanging is not


@given(st.lists(st.sampled_from(VOCABULARY), max_size=40))
@settings(max_examples=100, deadline=None)
def test_token_soup_never_crashes_checker(tokens):
    source = "int main(void) { " + " ".join(tokens) + " ; return 0; }"
    try:
        load(source)
    except MiniCError:
        pass


@given(st.text(max_size=80))
@settings(max_examples=100, deadline=None)
def test_arbitrary_text_never_crashes_front_end(text):
    try:
        load(text)
    except MiniCError:
        pass
