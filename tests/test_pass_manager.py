"""Pass-manager architecture tests: declarative pipelines, digests,
budgets, the change-driven fixpoint driver, and per-pass verification."""

from __future__ import annotations

import pytest

from repro.compiler import compile_source, implementation
from repro.compiler.binary import compile_module_instrumented
from repro.compiler.implementations import DEFAULT_IMPLEMENTATIONS
from repro.compiler.lowering import lower_program
from repro.compiler.passes.libcall_subst import pow_to_exp2
from repro.compiler.passes.manager import (
    ALL_PASSES,
    DEFAULT_MAX_ROUNDS,
    FixpointGroup,
    Pass,
    PassBudget,
    PassManager,
    Pipeline,
    pipeline_digest,
    pipeline_for,
    run_pipeline,
)
from repro.ir.instructions import CallBuiltin, Load
from repro.ir.printer import format_module
from repro.minic import load

pytestmark = pytest.mark.passes

O0 = implementation("gcc-O0")
O2 = implementation("gcc-O2")

#: Needs exactly 3 fixpoint rounds: round 1 folds `if (1)` and merges,
#: round 2 forwards `a` and folds `if (a)` and merges again, round 3
#: forwards the `b = 2` store into the printf argument.
THREE_ROUND_CHAIN = """
int main(void) {
    int a = 1;
    if (1) { }
    int b = 0;
    if (a) { b = 2; }
    printf("%d", b);
    return 0;
}
"""


def lower(source: str, config=O2):
    return lower_program(load(source), config)


class TestPipelineShape:
    def test_registry_covers_every_knob(self):
        names = {p.name for p in ALL_PASSES}
        assert {
            "store_forward", "copy_prop", "const_fold", "simplify",
            "merge_blocks", "exploit_ub", "inline_small", "strength_reduce",
            "pow_to_exp2", "dce",
        } <= names

    def test_o0_pipeline_is_empty(self):
        pipeline = pipeline_for(O0)
        assert pipeline.prelude == ()
        assert pipeline.steps == ()

    def test_o2_pipeline_orders_inline_fixpoint_tail(self):
        pipeline = pipeline_for(O2)
        assert [p.name for p in pipeline.prelude] == ["exploit_ub"]
        assert pipeline.steps[0].name == "inline_small"
        assert isinstance(pipeline.steps[1], FixpointGroup)
        assert [p.name for p in pipeline.steps[1].passes] == [
            "store_forward", "copy_prop", "const_fold",
            "simplify", "merge_blocks", "exploit_ub",
        ]
        assert [s.name for s in pipeline.steps[2:]] == ["strength_reduce", "dce"]

    def test_every_default_config_builds_a_pipeline(self):
        for config in DEFAULT_IMPLEMENTATIONS:
            pipeline = pipeline_for(config)
            assert pipeline.describe()
            assert len(pipeline.digest()) == 64


class TestDigest:
    def test_digest_is_stable(self):
        assert pipeline_digest(O2) == pipeline_digest(O2)

    def test_digest_differs_across_configs(self):
        digests = {pipeline_digest(c) for c in DEFAULT_IMPLEMENTATIONS}
        assert len(digests) == len(DEFAULT_IMPLEMENTATIONS)

    def test_fixpoint_bound_is_part_of_the_digest(self):
        assert pipeline_for(O2).digest() != pipeline_for(
            O2, max_fixpoint_rounds=2
        ).digest()

    def test_pass_version_bump_changes_digest(self):
        base = Pipeline(name="p", prelude=(), steps=(Pass(name="x", run=None),))
        bumped = Pipeline(
            name="p", prelude=(), steps=(Pass(name="x", run=None, version=2),)
        )
        assert base.digest() != bumped.digest()


class TestFixpointDriver:
    def test_stops_when_a_round_changes_nothing(self):
        # A trivial program converges in one round; the change-driven
        # driver must not schedule DEFAULT_MAX_ROUNDS worth of slots.
        binary = compile_source("int main(void){ return 0; }", O2)
        rounds = {a.round for a in binary.pass_report.schedule if a.round}
        assert rounds <= {1, 2}

    def test_three_round_chain_converges(self):
        binary = compile_source(THREE_ROUND_CHAIN, O2)
        report = binary.pass_report
        rounds = max(a.round for a in report.schedule if a.round)
        assert rounds >= 3
        assert report.fixpoint_bound_hits == 0
        # Full convergence: the forwarded printf argument leaves no Load.
        assert not any(
            isinstance(i, Load)
            for i in binary.module.functions["main"].instructions()
        )

    def test_two_round_schedule_leaves_the_chain_unconverged(self):
        # The historical hardcoded loop stopped after 2 rounds; pinning
        # the bound reproduces that (the golden-digest gate relies on it).
        program = load(THREE_ROUND_CHAIN)
        budget = PassBudget()
        module = lower_program(program, O2, budget=budget)
        run_pipeline(
            module, O2, budget=budget,
            pipeline=pipeline_for(O2, max_fixpoint_rounds=2),
        )
        assert any(
            isinstance(i, Load) for i in module.functions["main"].instructions()
        )

    def test_legacy_two_round_result_is_a_prefix_of_convergence(self):
        # Rounds 1-2 of the converging driver replay the legacy schedule
        # exactly; convergence only appends rounds.
        binary = compile_source(THREE_ROUND_CHAIN, O2)
        schedule = [a for a in binary.pass_report.schedule if a.round]
        legacy_rounds = [a for a in schedule if a.round <= 2]
        assert [a.pass_name for a in legacy_rounds[:6]] == [
            "store_forward", "copy_prop", "const_fold",
            "simplify", "merge_blocks", "exploit_ub",
        ]

    def test_bound_hit_is_reported(self):
        # An adversarial group whose pass always reports a change must
        # stop at the bound and count the hit instead of spinning.
        ticks = []

        def restless(func, config):
            ticks.append(func.name)
            return 1

        pipeline = Pipeline(
            name="restless",
            prelude=(),
            steps=(
                FixpointGroup(
                    passes=(Pass(name="restless", run=restless),), max_rounds=4
                ),
            ),
        )
        module = lower("int main(void){ return 0; }", O2)
        manager = PassManager(pipeline, O2, verify=False)
        manager.run(module)
        assert manager.report.fixpoint_bound_hits == 1
        assert len(ticks) == 4


class TestBudget:
    def test_prefix_property(self):
        # Building with max_pass_applications=N must equal the full
        # build's schedule truncated to its first N applications.
        program = load(THREE_ROUND_CHAIN)
        full, full_report = compile_module_instrumented(program, O2)
        total = sum(1 for a in full_report.schedule if a.applied)
        for limit in (0, 1, total // 2, total):
            module, report = compile_module_instrumented(
                program, O2, max_pass_applications=limit
            )
            applied = [a for a in report.schedule if a.applied]
            assert len(applied) == limit
            assert [a.label() for a in applied] == [
                a.label() for a in full_report.schedule[:limit]
            ]
        # And the final prefix is the full build.
        module, _ = compile_module_instrumented(
            program, O2, max_pass_applications=total
        )
        assert format_module(module) == format_module(full)

    def test_lowering_guard_fold_occupies_slot_zero(self):
        binary = compile_source(THREE_ROUND_CHAIN, O2)
        first = binary.pass_report.schedule[0]
        assert (first.pass_name, first.scope) == ("exploit_ub", "lowering")

    def test_truncation_is_flagged(self):
        binary = compile_source(THREE_ROUND_CHAIN, O2, max_pass_applications=1)
        assert binary.pass_report.truncated
        assert binary.pass_report.schedule[0].applied

    def test_zero_budget_disables_the_lowering_guard_fold(self):
        source = """
        int main(void) {
            int offset = 2147483547; int len = 101;
            if (offset + len < offset) { printf("guarded"); return 1; }
            printf("through");
            return 0;
        }
        """
        from repro.vm import run_binary

        guarded = run_binary(compile_source(source, O2, max_pass_applications=0), b"")
        folded = run_binary(compile_source(source, O2), b"")
        assert guarded.stdout == b"guarded"
        assert folded.stdout == b"through"


class TestInstrumentation:
    def test_report_records_time_and_changes(self):
        binary = compile_source(THREE_ROUND_CHAIN, O2)
        report = binary.pass_report
        assert report.total_changes > 0
        assert report.total_seconds >= 0.0
        per_pass = report.per_pass()
        assert per_pass["store_forward"]["applications"] >= 3
        assert "pipeline" in report.render()

    def test_per_pass_verification_names_the_culprit(self):
        def corrupt(func, config):
            # Drop the entry block's terminator: structurally invalid IR.
            entry = func.blocks[func.entry]
            entry.instrs = entry.instrs[:-1]
            return 1

        pipeline = Pipeline(
            name="corrupt", prelude=(), steps=(Pass(name="corrupt", run=corrupt),)
        )
        module = lower("int main(void){ return 0; }", O2)
        from repro.ir.verify import VerificationError

        manager = PassManager(pipeline, O2, verify=True)
        with pytest.raises(VerificationError, match="corrupt"):
            manager.run(module)


class TestLibcallSubst:
    def _func(self, source: str, config):
        binary = compile_source(source, config)
        return binary.module.functions["main"]

    def test_float_literal_base_two(self):
        module = lower('int main(void){ printf("%g", pow(2.0, 5.0)); return 0; }', O0)
        func = module.functions["main"]
        assert pow_to_exp2(func) == 1
        calls = [i for i in func.instructions() if isinstance(i, CallBuiltin)]
        assert any(c.name == "exp2" and len(c.args) == 1 for c in calls)
        assert not any(c.name == "pow" for c in calls)

    def test_integer_literal_base_two(self):
        # Satellite: integer-typed constant base 2 (cast to double by the
        # front end) must also match.
        module = lower('int main(void){ printf("%g", pow(2, 5.0)); return 0; }', O0)
        func = module.functions["main"]
        assert pow_to_exp2(func) == 1

    def test_non_two_base_is_left_alone(self):
        module = lower('int main(void){ printf("%g", pow(3.0, 5.0)); return 0; }', O0)
        func = module.functions["main"]
        assert pow_to_exp2(func) == 0
        assert any(
            isinstance(i, CallBuiltin) and i.name == "pow"
            for i in func.instructions()
        )

    def test_variable_base_is_left_alone(self):
        source = """
        double base(void) { return 2.0; }
        int main(void) {
            printf("%g", pow(base(), 5.0));
            return 0;
        }
        """
        module = lower(source, O0)
        assert pow_to_exp2(module.functions["main"]) == 0

    def test_observable_behavior_matches_pow(self):
        source = 'int main(void){ printf("%g", pow(2.0, 10.0)); return 0; }'
        from repro.vm import run_binary

        out_o0 = run_binary(compile_source(source, implementation("clang-O0")), b"")
        out_o3 = run_binary(compile_source(source, implementation("clang-O3")), b"")
        assert out_o0.stdout == out_o3.stdout == b"1024"


class TestCacheDigestCoupling:
    def test_cache_key_changes_with_pipeline_digest(self, monkeypatch):
        from repro.parallel import cache as cache_mod

        key_before = cache_mod.cache_key("int main(void){return 0;}", O2)
        monkeypatch.setattr(
            cache_mod, "pipeline_digest", lambda config: "different-pipeline"
        )
        key_after = cache_mod.cache_key("int main(void){return 0;}", O2)
        assert key_before != key_after

    def test_same_config_same_key(self):
        from repro.parallel.cache import cache_key

        assert cache_key("int main(void){return 0;}", O2) == cache_key(
            "int main(void){return 0;}", O2
        )


class TestStatsIntegration:
    def test_engine_records_pass_timings_on_fresh_compiles(self):
        from repro.core.compdiff import CompDiff
        from repro.parallel.cache import CompileCache

        engine = CompDiff(compile_cache=CompileCache())
        engine.check_source(THREE_ROUND_CHAIN, [b""], name="chain")
        timings = engine.stats.pass_timings
        assert timings, "fresh compiles must populate pass_timings"
        assert timings["store_forward"][0] > 0
        # A second identical check hits the cache: no new pass applications.
        before = {name: list(row) for name, row in timings.items()}
        engine.check_source(THREE_ROUND_CHAIN, [b""], name="chain")
        assert engine.stats.pass_timings == before
        snapshot = engine.stats.snapshot()
        assert "store_forward" in snapshot["passes"]
        assert "pass pipeline" in engine.stats.render()
