"""Optimization-pass unit tests."""

from __future__ import annotations

import pytest

from repro.compiler import compile_source, implementation
from repro.compiler.implementations import CompilerConfig, implementation as get_impl
from repro.compiler.lowering import lower_program
from repro.compiler.passes.constant_fold import const_fold
from repro.compiler.passes.copy_prop import copy_prop
from repro.compiler.passes.dce import dce
from repro.compiler.passes.inline import inline_small
from repro.compiler.passes.mem_forward import (
    dead_store_slots,
    non_escaping_scalar_slots,
    store_forward,
)
from repro.compiler.passes.merge_blocks import merge_blocks
from repro.compiler.passes.simplify import simplify
from repro.compiler.passes.strength_reduce import strength_reduce
from repro.ir.instructions import BinOp, Call, CallBuiltin, Const, Load, Move, Store
from repro.minic import load

from tests.conftest import run_source, stdout_of

pytestmark = pytest.mark.passes

O0 = get_impl("gcc-O0")
O2 = get_impl("gcc-O2")


def lower(source: str, config: CompilerConfig = O2):
    return lower_program(load(source), config)


def main_instrs(module):
    return list(module.functions["main"].instructions())


class TestConstantFold:
    def test_folds_arithmetic_chain(self):
        module = lower("int main(void){ int x = (3 + 4) * 5; printf(\"%d\", x); return 0; }")
        func = module.functions["main"]
        copy_prop(func)
        folded = const_fold(func, O2)
        assert folded > 0
        assert not any(
            isinstance(i, BinOp) and i.op in ("add", "mul") for i in func.instructions()
        )

    def test_folds_through_const_defined_registers(self):
        # A chain a -> a*2 -> a*2+1 must fold in one pass.
        module = lower('int main(void){ printf("%d", (2 * 21) + 0 * 9); return 0; }')
        func = module.functions["main"]
        const_fold(func, O2)
        consts = [i.value for i in func.instructions() if isinstance(i, Const)]
        assert 42 in consts

    def test_branch_on_constant_becomes_jump(self):
        source = 'int main(void){ if (1) { printf("a"); } else { printf("b"); } return 0; }'
        module = lower(source)
        func = module.functions["main"]
        const_fold(func, O2)
        merge_blocks(func)
        dce(func)
        labels = set(func.blocks)
        assert not any("else" in label for label in labels)

    def test_shift_folding_is_unmasked(self):
        # Folded 1 << 40 gives 0 (mathematical); runtime masks to 1 << 8.
        src = "int main(void){ int s = 40; return (1 << s) != 0; }"
        assert run_source(src, "gcc-O0").exit_code == 1
        assert run_source(src, "gcc-O2").exit_code == 0

    def test_udiv_fold_uses_unsigned_interpretation(self):
        src = 'int main(void){ unsigned int a = 0u - 4u; printf("%u", a / 2u); return 0; }'
        assert stdout_of(src, "gcc-O2") == stdout_of(src, "gcc-O0")

    def test_double_arithmetic_folds_exactly(self):
        src = 'int main(void){ printf("%.17g", 0.1 + 0.2); return 0; }'
        assert stdout_of(src, "gcc-O2") == stdout_of(src, "gcc-O0")


class TestMiscompilePatterns:
    def test_ushl_ushr_elide_only_in_buggy_impls(self):
        src = (
            "int main(void){ unsigned int x = (unsigned int)(input_size() + 200) << 24;"
            ' printf("%u", (x << 1) >> 1); return 0; }'
        )
        correct = stdout_of(src, "gcc-O1")
        buggy = stdout_of(src, "gcc-O2")
        assert correct != buggy

    def test_sext_shift_pair_only_in_gcc_o3(self):
        src = (
            "int main(void){ int x = (int)input_size() + 200;"
            ' printf("%d", (x << 24) >> 24); return 0; }'
        )
        assert stdout_of(src, "gcc-O2") == b"-56"
        assert stdout_of(src, "gcc-O3") == b"200"

    def test_srem_to_mask_only_in_clang_o1(self):
        src = (
            "int main(void){ int x = -3 - (int)input_size();"
            ' printf("%d", x % 8); return 0; }'
        )
        assert stdout_of(src, "clang-O0") == b"-3"
        assert stdout_of(src, "clang-O1") == b"5"  # (-3) & 7: the seeded bug

    def test_patterns_disabled_in_sanitizer_build(self):
        from repro.compiler import SANITIZER_CONFIG

        assert SANITIZER_CONFIG.miscompile_patterns == ()


class TestSimplify:
    def test_add_zero_eliminated(self):
        module = lower("int f(int x) { return x + 0; }", O2)
        func = module.functions["f"]
        simplify(func)
        assert not any(isinstance(i, BinOp) and i.op == "add" for i in func.instructions())

    def test_mul_one_eliminated(self):
        module = lower("int f(int x) { return x * 1; }", O2)
        func = module.functions["f"]
        simplify(func)
        assert not any(isinstance(i, BinOp) and i.op == "mul" for i in func.instructions())

    def test_semantics_preserved_end_to_end(self):
        src = (
            "int main(void){ int x = (int)input_size() + 9;"
            ' printf("%d %d %d %d", x + 0, x * 1, x - x, x * 0); return 0; }'
        )
        assert stdout_of(src, "gcc-O2") == b"9 9 0 0"


class TestCopyProp:
    def test_propagates_constants_locally(self):
        module = lower('int main(void){ int a = 5; printf("%d", a); return 0; }')
        func = module.functions["main"]
        store_forward(func)
        changed = copy_prop(func)
        assert changed > 0

    def test_invalidation_on_redefinition(self):
        # b must read the *old* a even after a is reassigned.
        src = 'int main(void){ int a = 1; int b = a; a = 2; printf("%d%d", a, b); return 0; }'
        assert stdout_of(src, "gcc-O2") == b"21"


class TestStoreForward:
    SRC = "int main(void){ int p = 7; int unused_store = 3; printf(\"%d\", p); return 0; }"

    def test_non_escaping_detection(self):
        module = lower("int main(void){ int a = 1; int *q = &a; return *q; }", O2)
        safe = non_escaping_scalar_slots(module.functions["main"])
        # a's address is taken (stored into q), so only q itself is safe.
        names = {module.functions["main"].slots[i].name for i in safe}
        assert "a" not in names

    def test_forwarding_replaces_load(self):
        module = lower(self.SRC)
        func = module.functions["main"]
        rewrites = store_forward(func)
        assert rewrites > 0

    def test_dead_store_slots_found(self):
        module = lower(self.SRC)
        func = module.functions["main"]
        dead = dead_store_slots(func)
        names = {func.slots[i].name for i in dead}
        assert "unused_store" in names
        assert "p" not in names or True  # p is loaded via printf arg

    def test_forwarded_value_semantics(self):
        src = 'int main(void){ int a = 3; a = a + 4; printf("%d", a); return 0; }'
        assert stdout_of(src, "gcc-O2") == b"7"


class TestDCE:
    def test_unused_pure_instructions_removed(self):
        module = lower("int main(void){ int waste = 3 * 14; printf(\"x\"); return 0; }")
        func = module.functions["main"]
        store_forward(func)
        copy_prop(func)
        before = len(list(func.instructions()))
        dce(func)
        assert len(list(func.instructions())) < before

    def test_unused_trapping_division_removed(self):
        # The UB-exploiting deletion behind Table 3's divide-by-zero row.
        src = (
            "int main(void){ int d = (int)input_size();"
            ' int q = 7 / d; printf("alive"); return 0; }'
        )
        assert run_source(src, "gcc-O0").status.value == "crash"
        assert stdout_of(src, "gcc-O2") == b"alive"

    def test_used_division_kept(self):
        src = (
            "int main(void){ int d = (int)input_size();"
            ' printf("%d", 7 / d); return 0; }'
        )
        assert run_source(src, "gcc-O2").status.value == "crash"

    def test_effectful_calls_never_removed(self):
        src = (
            "int g = 0;\nint bump(void) { g++; return g; }\n"
            'int main(void){ int unused = bump(); printf("%d", g); return 0; }'
        )
        assert stdout_of(src, "gcc-O2") == b"1"


class TestInline:
    SRC = (
        "int tiny(int a, int b) { return a * 10 + b; }\n"
        'int main(void){ printf("%d", tiny(4, 2)); return 0; }'
    )

    def test_small_leaf_inlined_at_o2(self):
        binary = compile_source(self.SRC, implementation("gcc-O2"))
        main = binary.module.functions["main"]
        assert not any(isinstance(i, Call) for i in main.instructions())

    def test_not_inlined_at_o1(self):
        binary = compile_source(self.SRC, implementation("gcc-O1"))
        main = binary.module.functions["main"]
        assert any(isinstance(i, Call) for i in main.instructions())

    def test_inline_preserves_semantics(self):
        assert stdout_of(self.SRC, "gcc-O2") == stdout_of(self.SRC, "gcc-O0") == b"42"

    def test_inline_merges_frame_slots(self):
        src = (
            "int helper(int a) { char scratch[32]; scratch[0] = a; return scratch[0]; }\n"
            'int main(void){ printf("%d", helper(5)); return 0; }'
        )
        module = lower(src, O2)
        before = len(module.functions["main"].slots)
        inline_small(module, O2)
        after = len(module.functions["main"].slots)
        assert after > before

    def test_recursive_function_not_inlined(self):
        src = (
            "int down(int n) { if (n <= 0) return 0; return down(n - 1) + 1; }\n"
            'int main(void){ printf("%d", down(5)); return 0; }'
        )
        assert stdout_of(src, "gcc-O2") == b"5"

    def test_missing_arg_inlined_uses_impl_junk(self):
        src = (
            "int two(int a, int b) { return b; }\n"
            'int main(void){ printf("%d", two(1)); return 0; }'
        )
        assert stdout_of(src, "gcc-O2") == stdout_of(src, "gcc-O0")


class TestStrengthReduce:
    def test_mul_pow2_becomes_shift(self):
        module = lower("int f(int x) { return x * 8; }", O2)
        func = module.functions["f"]
        changed = strength_reduce(func)
        assert changed == 1
        assert any(isinstance(i, BinOp) and i.op == "shl" for i in func.instructions())

    def test_semantics_equal_including_wrap(self):
        src = (
            "int main(void){ int x = 2147483647 - (int)input_size();"
            ' printf("%d", x * 8); return 0; }'
        )
        assert stdout_of(src, "gcc-O2") == stdout_of(src, "gcc-O0")

    def test_non_pow2_untouched(self):
        module = lower("int f(int x) { return x * 7; }", O2)
        assert strength_reduce(module.functions["f"]) == 0


class TestMergeBlocks:
    def test_merges_folded_branch_chain(self):
        src = 'int main(void){ int a = 0; if (1) { a = 5; } printf("%d", a); return 0; }'
        module = lower(src)
        func = module.functions["main"]
        const_fold(func, O2)
        merged = merge_blocks(func)
        assert merged >= 1

    def test_does_not_merge_shared_target(self):
        src = (
            "int main(void){ int x = (int)input_size();"
            ' if (x) { printf("a"); } else { printf("b"); } printf("c"); return 0; }'
        )
        module = lower(src)
        func = module.functions["main"]
        merge_blocks(func)
        # if.end has two predecessors: must survive as its own block.
        assert any("if.end" in label for label in func.blocks)


class TestUBExploit:
    def test_null_load_folded_at_o1(self):
        src = 'int main(void){ int *p = (int*)0; printf("%d", *p); return 0; }'
        assert run_source(src, "gcc-O0").status.value == "crash"
        assert stdout_of(src, "gcc-O1") == b"0"

    def test_null_store_deleted_at_o1(self):
        src = 'int main(void){ int *p = (int*)0; *p = 5; printf("ok"); return 0; }'
        assert run_source(src, "gcc-O0").status.value == "crash"
        assert stdout_of(src, "gcc-O1") == b"ok"

    def test_overflow_guard_folded(self):
        src = (
            "int check(int offset, int len) {"
            " if (offset + len < offset) { return -1; }"
            " return 0; }\n"
            'int main(void){ printf("%d", check(2147483647, 100)); return 0; }'
        )
        assert stdout_of(src, "gcc-O0") == b"-1"
        assert stdout_of(src, "gcc-O2") == b"0"

    def test_guard_fold_requires_signed(self):
        # Unsigned wraparound is defined: the guard must be preserved.
        src = (
            "int main(void){ unsigned int a = 4294967295u;"
            " unsigned int b = 100u + (unsigned int)input_size();"
            ' if (a + b < a) { printf("wrapped"); return 1; }'
            ' printf("fine"); return 0; }'
        )
        assert stdout_of(src, "gcc-O0") == b"wrapped"
        assert stdout_of(src, "gcc-O2") == b"wrapped"

    def test_guard_fold_keeps_side_effects_defensively(self):
        # `a + b < a` with b pure: fold; result must match the no-overflow
        # case exactly at runtime.
        src = (
            "int main(void){ int a = 10; int b = 20;"
            ' if (a + b < a) { printf("neg"); } else { printf("pos"); } return 0; }'
        )
        assert stdout_of(src, "gcc-O2") == b"pos"
        assert stdout_of(src, "gcc-O0") == b"pos"
