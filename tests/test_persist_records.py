"""Durable-record corruption tests for every campaign checkpoint format.

``tests/test_checkpoint.py`` pins these properties for the fuzzer's
``RPRCKPT1`` records; this module pins the same contract for the
formats added since — the generative campaign checkpoint
(``RPRGENC1``), the sancheck campaign checkpoint (``RPRSANC1``), and
the shard result record (``RPRSHRD1``): any truncated, short, empty,
wrong-magic, or bit-flipped record raises
:class:`~repro.errors.CheckpointError` instead of deserializing
garbage, and the atomic-write helpers leave no temp droppings.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.campaigns.runtime import SHARD_MAGIC, ShardRecord
from repro.errors import CheckpointError
from repro.generative.campaign import MAGIC as GEN_MAGIC
from repro.generative.campaign import GenerativeCheckpoint, GenerativeResult
from repro.persist import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    read_record,
    write_record,
)
from repro.sanval.campaign import MAGIC as SAN_MAGIC
from repro.sanval.campaign import SancheckCheckpoint

pytestmark = pytest.mark.faults


def _gen_checkpoint() -> GenerativeCheckpoint:
    return GenerativeCheckpoint(
        options_digest="d" * 16,
        offset=3,
        generated=3,
        divergent=1,
        banked_new=1,
        duplicates=0,
        drifted=0,
        keys=["abcd" * 4],
    )


def _san_checkpoint() -> SancheckCheckpoint:
    return SancheckCheckpoint(
        options_digest="e" * 16,
        offset=2,
        seeds=2,
        variants=4,
        dropped=0,
        screened=1,
        skipped=0,
        banked_new=1,
        duplicates=1,
        verdicts=[],
    )


def _shard_record() -> ShardRecord:
    return ShardRecord(
        options_digest="f" * 16,
        lo=0,
        hi=2,
        result=GenerativeResult(generated=2, divergent=1, banked_new=1),
    )


FORMATS = [
    pytest.param(GEN_MAGIC, _gen_checkpoint, GenerativeCheckpoint, id="generative"),
    pytest.param(SAN_MAGIC, _san_checkpoint, SancheckCheckpoint, id="sancheck"),
    pytest.param(SHARD_MAGIC, _shard_record, ShardRecord, id="shard"),
]


@pytest.mark.parametrize("magic,make,cls", FORMATS)
def test_round_trip(tmp_path, magic, make, cls):
    path = str(tmp_path / "state.rec")
    original = make()
    write_record(path, magic, original)
    assert read_record(path, magic, cls) == original


@pytest.mark.parametrize("magic,make,cls", FORMATS)
def test_empty_record_is_rejected(tmp_path, magic, make, cls):
    path = tmp_path / "state.rec"
    path.write_bytes(b"")
    with pytest.raises(CheckpointError):
        read_record(str(path), magic, cls)


@pytest.mark.parametrize("magic,make,cls", FORMATS)
def test_short_record_is_rejected(tmp_path, magic, make, cls):
    # Shorter than magic + CRC: no payload to even checksum.
    path = tmp_path / "state.rec"
    path.write_bytes(magic[:5])
    with pytest.raises(CheckpointError):
        read_record(str(path), magic, cls)


@pytest.mark.parametrize("magic,make,cls", FORMATS)
def test_truncated_record_is_rejected(tmp_path, magic, make, cls):
    path = str(tmp_path / "state.rec")
    write_record(path, magic, make())
    blob = open(path, "rb").read()
    for cut in (len(blob) // 2, len(blob) - 1):
        open(path, "wb").write(blob[:cut])
        with pytest.raises(CheckpointError):
            read_record(path, magic, cls)


@pytest.mark.parametrize("magic,make,cls", FORMATS)
def test_wrong_magic_is_rejected(tmp_path, magic, make, cls):
    path = str(tmp_path / "state.rec")
    write_record(path, magic, make())
    with pytest.raises(CheckpointError):
        read_record(path, b"RPRWRNG1", make().__class__)


def test_campaign_magics_are_mutually_incompatible(tmp_path):
    # A generative checkpoint must not read back as a sancheck one even
    # if the caller passes the matching type.
    path = str(tmp_path / "state.rec")
    write_record(path, GEN_MAGIC, _gen_checkpoint())
    with pytest.raises(CheckpointError):
        read_record(path, SAN_MAGIC, GenerativeCheckpoint)


@pytest.mark.parametrize("magic,make,cls", FORMATS)
def test_bit_flip_fails_integrity_check(tmp_path, magic, make, cls):
    path = str(tmp_path / "state.rec")
    write_record(path, magic, make())
    blob = bytearray(open(path, "rb").read())
    blob[len(magic) + 6] ^= 0x40
    open(path, "wb").write(bytes(blob))
    with pytest.raises(CheckpointError):
        read_record(path, magic, cls)


@pytest.mark.parametrize("magic,make,cls", FORMATS)
def test_foreign_payload_type_is_rejected(tmp_path, magic, make, cls):
    path = str(tmp_path / "state.rec")
    write_record(path, magic, {"not": "a checkpoint"})
    with pytest.raises(CheckpointError):
        read_record(path, magic, cls)


def test_atomic_writers_leave_no_temp_files(tmp_path):
    atomic_write_bytes(tmp_path / "a.bin", b"\x00\x01")
    atomic_write_text(tmp_path / "b.txt", "hello\n")
    atomic_write_json(tmp_path / "c.json", {"k": [1, 2]})
    assert sorted(p.name for p in tmp_path.iterdir()) == ["a.bin", "b.txt", "c.json"]
    assert (tmp_path / "a.bin").read_bytes() == b"\x00\x01"
    assert json.loads((tmp_path / "c.json").read_text()) == {"k": [1, 2]}


def test_atomic_write_replaces_existing_content(tmp_path):
    target = tmp_path / "state.json"
    atomic_write_json(target, {"generation": 1})
    atomic_write_json(target, {"generation": 2})
    assert json.loads(target.read_text()) == {"generation": 2}
    assert [p.name for p in tmp_path.iterdir()] == ["state.json"]
