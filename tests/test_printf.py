"""printf formatting coverage."""

from __future__ import annotations

from tests.conftest import stdout_of


def fmt(call: str) -> bytes:
    return stdout_of(f"int main(void) {{ {call} return 0; }}")


class TestIntegerConversions:
    def test_d_positive_negative(self):
        assert fmt('printf("%d %d", 42, -42);') == b"42 -42"

    def test_i_alias(self):
        assert fmt('printf("%i", 7);') == b"7"

    def test_u_wraps_negative(self):
        assert fmt('printf("%u", -1);') == b"4294967295"

    def test_x_lower_upper(self):
        assert fmt('printf("%x %X", 255, 255);') == b"ff FF"

    def test_octal(self):
        assert fmt('printf("%o", 8);') == b"10"

    def test_long_modifier(self):
        assert fmt('printf("%ld", 5000000000l);') == b"5000000000"

    def test_lu_modifier(self):
        assert fmt('printf("%lu", 0ul - 1ul);') == b"18446744073709551615"

    def test_lx_modifier(self):
        assert fmt('printf("%lx", 1099511627776l);') == b"10000000000"

    def test_char_conversion(self):
        assert fmt("printf(\"%c%c\", 104, 'i');") == b"hi"

    def test_percent_literal(self):
        assert fmt('printf("100%%");') == b"100%"


class TestWidthAndFlags:
    def test_width_right_justify(self):
        assert fmt('printf("[%5d]", 42);') == b"[   42]"

    def test_width_left_justify(self):
        assert fmt('printf("[%-5d]", 42);') == b"[42   ]"

    def test_zero_pad(self):
        assert fmt('printf("[%05d]", 42);') == b"[00042]"

    def test_zero_pad_negative_keeps_sign_first(self):
        assert fmt('printf("[%05d]", -42);') == b"[-0042]"

    def test_zero_pad_hex(self):
        assert fmt('printf("%08x", 48879);') == b"0000beef"

    def test_width_smaller_than_value(self):
        assert fmt('printf("[%2d]", 12345);') == b"[12345]"


class TestStringsAndPointers:
    def test_s_conversion(self):
        assert fmt('printf("%s!", "ok");') == b"ok!"

    def test_s_precision_truncates(self):
        assert fmt('printf("%.3s", "abcdef");') == b"abc"

    def test_s_reads_from_buffer(self):
        assert fmt('char b[8] = "xyz"; printf("%s", b);') == b"xyz"

    def test_p_prints_hex_address(self):
        out = fmt('char b[4]; printf("%p", b);')
        assert out.startswith(b"0x")

    def test_p_differs_across_implementations(self):
        src = 'int main(void) { char b[4]; printf("%p", b); return 0; }'
        assert stdout_of(src, "gcc-O0") != stdout_of(src, "clang-O0")


class TestFloats:
    def test_f_default_precision(self):
        assert fmt('printf("%f", 1.5);') == b"1.500000"

    def test_f_explicit_precision(self):
        assert fmt('printf("%.2f", 3.14159);') == b"3.14"

    def test_e_scientific(self):
        assert fmt('printf("%.2e", 12345.0);') == b"1.23e+04"

    def test_g_compact(self):
        assert fmt('printf("%g", 0.5);') == b"0.5"

    def test_float_arg_promoted_to_double(self):
        assert fmt('float f = 2.5f; printf("%.1f", f);') == b"2.5"


class TestEdgeCases:
    def test_missing_argument_uses_impl_junk(self):
        src = 'int main(void) { printf("%d"); return 0; }'
        gcc = stdout_of(src, "gcc-O0")
        clang = stdout_of(src, "clang-O0")
        assert gcc != clang  # 0x7F7F7F7F vs 0x01010101

    def test_extra_arguments_ignored(self):
        assert fmt('printf("%d", 1, 2, 3);') == b"1"

    def test_unknown_conversion_passes_through(self):
        assert fmt('printf("%q", 1);') == b"%q"

    def test_eprintf_goes_to_stderr(self):
        from tests.conftest import run_source

        result = run_source('int main(void) { eprintf("oops %d", 3); return 0; }')
        assert result.stderr == b"oops 3"
        assert result.stdout == b""

    def test_puts_appends_newline(self):
        assert fmt('puts("line");') == b"line\n"

    def test_putchar(self):
        assert fmt("putchar(65); putchar(10);") == b"A\n"

    def test_printf_returns_length(self):
        assert fmt('int n = printf("abcd"); printf(":%d", n);') == b"abcd:4"
