"""Property: UB-free programs are bit-identical across all implementations.

This is the load-bearing correctness property of the whole reproduction
(and the paper's Finding 5): divergence may come *only* from undefined
behavior.  A hypothesis-driven generator builds random MiniC programs that
are carefully UB-free — unsigned arithmetic (defined wraparound), masked
shift counts, guarded divisions, in-bounds array indices — and asserts
that all ten implementations produce identical observations.

This doubles as differential testing of our own optimizer pipeline: a
miscompilation pattern leaking outside its guard, an unsound fold, or a
layout bug would surface here as spurious divergence.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from tests.conftest import outputs_across_impls

_BIN_OPS = ["+", "-", "*", "&", "|", "^"]
_CMP_OPS = ["<", "<=", ">", ">=", "==", "!="]


class _ExprGen:
    """Generates UB-free unsigned expressions over variables v0..vN."""

    def __init__(self, rng: random.Random, num_vars: int) -> None:
        self.rng = rng
        self.num_vars = num_vars

    def expr(self, depth: int) -> str:
        if depth <= 0 or self.rng.random() < 0.3:
            return self.leaf()
        choice = self.rng.random()
        if choice < 0.55:
            op = self.rng.choice(_BIN_OPS)
            return f"({self.expr(depth - 1)} {op} {self.expr(depth - 1)})"
        if choice < 0.70:
            # Defined shift: count masked below the width.
            return f"({self.expr(depth - 1)} << ({self.leaf()} & 15u))"
        if choice < 0.80:
            # Guarded division: divisor forced nonzero.
            return f"({self.expr(depth - 1)} / (({self.leaf()} & 7u) + 1u))"
        if choice < 0.90:
            return f"(({self.expr(depth - 1)} {self.rng.choice(_CMP_OPS)} {self.expr(depth - 1)}) ? {self.leaf()} : {self.leaf()})"
        return f"(0u - {self.expr(depth - 1)})"  # unsigned negation wraps, defined

    def leaf(self) -> str:
        if self.rng.random() < 0.5 and self.num_vars:
            return f"v{self.rng.randrange(self.num_vars)}"
        return f"{self.rng.randrange(0, 1 << 31)}u"


def build_program(seed: int) -> str:
    """One random UB-free program: unsigned expressions, a bounded loop,
    a masked array walk, and full output of every intermediate."""
    rng = random.Random(seed)
    gen = _ExprGen(rng, num_vars=4)
    decls = "\n    ".join(
        f"unsigned int v{i} = {rng.randrange(0, 1 << 32)}u;" for i in range(4)
    )
    updates = "\n        ".join(
        f"v{i} = {gen.expr(3)};" for i in range(rng.randint(1, 4))
    )
    loop_count = rng.randint(1, 6)
    index_expr = gen.expr(2)
    return f"""
int main(void) {{
    {decls}
    unsigned int table[8];
    int i;
    for (i = 0; i < 8; i++) {{ table[i] = (unsigned int)i * 2654435761u; }}
    for (i = 0; i < {loop_count}; i++) {{
        {updates}
        table[({index_expr}) & 7u] += v0 ^ v{rng.randrange(4)};
    }}
    printf("%u %u %u %u\\n", v0, v1, v2, v3);
    for (i = 0; i < 8; i++) {{ printf("%u ", table[i]); }}
    printf("\\n");
    return (int)(v0 % 251u);
}}
"""


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_random_defined_programs_are_stable(seed):
    source = build_program(seed)
    out = outputs_across_impls(source)
    observations = set(out.values())
    assert len(observations) == 1, (
        f"spurious divergence for seed {seed}:\n"
        + "\n".join(f"  {name}: {obs}" for name, obs in out.items())
        + f"\nsource:\n{source}"
    )


@given(st.integers(min_value=0, max_value=10_000), st.binary(max_size=8))
@settings(max_examples=10, deadline=None)
def test_random_programs_stable_under_inputs(seed, data):
    """Input-dependent but still defined: mix input bytes in (masked)."""
    rng = random.Random(seed)
    source = f"""
int main(void) {{
    unsigned int acc = {rng.randrange(1 << 30)}u;
    long n = input_size();
    long i;
    for (i = 0; i < n; i++) {{
        acc = acc * 31u + (unsigned int)(input_byte(i) & 255);
        acc = (acc << ({rng.randrange(1, 15)} & 15u)) | (acc >> 17);
    }}
    printf("acc=%u n=%ld\\n", acc, n);
    return (int)(acc & 63u);
}}
"""
    out = outputs_across_impls(source, input_bytes=data)
    assert len(set(out.values())) == 1
