"""Runtime and VM edge cases."""

from __future__ import annotations

import pytest

from repro.compiler import compile_source, implementation
from repro.errors import VMError
from repro.vm import run_binary
from repro.vm.machine import OUTPUT_LIMIT

from tests.conftest import run_source, stdout_of


class TestFuelAccounting:
    def test_big_memset_charges_fuel(self):
        src = (
            "int main(void){ char *p = malloc(100000);"
            " memset(p, 1, 100000);"
            ' printf("ok\\n"); return 0; }'
        )
        generous = run_source(src, fuel=500_000)
        assert generous.status.value == "ok"
        starved = run_source(src, fuel=50_000)
        assert starved.status.value == "timeout"

    def test_timeout_reports_no_exit_code_success(self):
        result = run_source("int main(void){ while (1) { } return 0; }", fuel=5_000)
        assert result.timed_out
        assert result.exit_code == -1

    def test_executed_instruction_count_positive(self):
        result = run_source("int main(void){ return 0; }")
        assert 0 < result.executed_instructions < 100


class TestOutputLimits:
    def test_stdout_capped(self):
        src = (
            "int main(void){ long i; for (i = 0; i < 300000; i++) {"
            ' printf("xxxxxxxxxx"); } return 0; }'
        )
        result = run_source(src, fuel=10_000_000)
        assert len(result.stdout) <= OUTPUT_LIMIT + 16


class TestCStringBounds:
    def test_unterminated_string_walks_into_trap_or_limit(self):
        # A %s over memory with no NUL must not hang: either it hits the
        # segment end (trap) or the internal read limit.
        src = (
            "int main(void){ char b[4]; b[0] = 65; b[1] = 66; b[2] = 67; b[3] = 68;"
            ' printf("%s", b); return 0; }'
        )
        result = run_source(src, fuel=3_000_000)
        assert result.status.value in ("ok", "crash")


class TestTrapDetails:
    def test_segv_addr_recorded_in_trap(self):
        result = run_source("int main(void){ int *p = (int*)99999999999; return *p; }")
        assert result.trap == "segv"

    def test_abort_exit_code(self):
        result = run_source("int main(void){ char b[4]; free(b); return 0; }", impl="gcc-O2")
        assert result.exit_code == 134

    def test_missing_main_raises_vmerror(self):
        binary = compile_source("int helper(void) { return 1; }", implementation("gcc-O0"))
        with pytest.raises(VMError):
            run_binary(binary)

    def test_exit_codes_match_posix_signals(self):
        segv = run_source("int main(void){ int *p = (int*)0; return *p; }")
        fpe = run_source(
            'int main(void){ int d = (int)input_size(); printf("%d", 1/d); return 0; }'
        )
        assert (segv.exit_code, fpe.exit_code) == (139, 136)


class TestObservationEdges:
    def test_observation_tuple_shape(self):
        result = run_source('int main(void){ printf("a"); eprintf("b"); return 3; }')
        assert result.observation() == (b"a", b"b", 3, False)

    def test_timeout_observation_flagged(self):
        result = run_source("int main(void){ while (1) { } return 0; }", fuel=2_000)
        assert result.observation()[3] is True


class TestNumericEdges:
    def test_int_min_negation_wraps(self):
        src = 'int main(void){ int x = -2147483647 - 1; printf("%d", -x); return 0; }'
        assert stdout_of(src) == b"-2147483648"

    def test_char_arithmetic_promotes(self):
        src = 'int main(void){ char a = 100; char b = 100; printf("%d", a + b); return 0; }'
        assert stdout_of(src) == b"200"  # promoted to int: no char wrap

    def test_char_store_truncates(self):
        src = 'int main(void){ char a = 100; a = a + a; printf("%d", a); return 0; }'
        assert stdout_of(src) == b"-56"  # store wraps to char

    def test_unsigned_comparison_of_negative(self):
        src = (
            "int main(void){ unsigned int u = 1; int s = -1;"
            ' printf("%d", s > (int)u); return 0; }'
        )
        assert stdout_of(src) == b"0"

    def test_mixed_signed_unsigned_comparison_uses_unsigned(self):
        # The classic C gotcha: -1 converts to UINT_MAX.
        src = (
            "int main(void){ unsigned int u = 1; int s = -1;"
            ' printf("%d", u > s); return 0; }'
        )
        assert stdout_of(src) == b"0"

    def test_float_nan_comparisons(self):
        src = (
            "int main(void){ double z = (double)input_size(); double nan = z / z;"
            ' printf("%d %d", nan == nan, nan != nan); return 0; }'
        )
        assert stdout_of(src) == b"0 1"

    def test_long_arithmetic_no_premature_wrap(self):
        src = (
            "int main(void){ long a = 3000000000l; long b = 3000000000l;"
            ' printf("%ld", a + b); return 0; }'
        )
        assert stdout_of(src) == b"6000000000"


class TestSuiteExport:
    def test_export_writes_artifact_layout(self, tmp_path):
        from repro.juliet import build_suite

        suite = build_suite(scale=0.002)
        written = suite.export(tmp_path)
        manifest = (tmp_path / "MANIFEST.tsv").read_text().splitlines()
        assert written == 2 * len(suite.cases) + 1
        assert len(manifest) == len(suite.cases) + 1
        bad_files = list(tmp_path.glob("CWE*/*_bad.c"))
        assert len(bad_files) == len(suite.cases)
        # Exported sources are valid MiniC.
        from repro.minic import load

        load(bad_files[0].read_text())
