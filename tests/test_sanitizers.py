"""Sanitizer analog tests: every report kind plus scope boundaries."""

from __future__ import annotations

import pytest

from repro.sanitizers import (
    AddressSanitizer,
    MemorySanitizer,
    Sanitizer,
    UndefinedBehaviorSanitizer,
    all_sanitizers,
)


def finding(sanitizer: Sanitizer, source: str, inputs=(b"",)):
    return sanitizer.check_source(source, list(inputs))


def kind_of(sanitizer: Sanitizer, source: str, inputs=(b"",)) -> str | None:
    result = finding(sanitizer, source, inputs)
    return result.kind if result else None


ASAN = AddressSanitizer()
UBSAN = UndefinedBehaviorSanitizer()
MSAN = MemorySanitizer()


class TestASan:
    def test_stack_buffer_overflow_write(self):
        src = "int main(void){ char b[8]; int i = (int)input_size() + 8; b[i] = 1; return 0; }"
        assert kind_of(ASAN, src) == "stack-buffer-overflow"

    def test_stack_buffer_overflow_read(self):
        src = 'int main(void){ char b[8]; int i = (int)input_size() + 9; printf("%d", b[i]); return 0; }'
        assert kind_of(ASAN, src) == "stack-buffer-overflow"

    def test_stack_underflow(self):
        src = "int main(void){ char b[8]; char *p = b; int i = 2 + (int)input_size(); p[0 - i] = 1; return 0; }"
        assert kind_of(ASAN, src) == "stack-buffer-overflow"

    def test_heap_buffer_overflow(self):
        src = "int main(void){ char *p = malloc(8); p[8 + (int)input_size()] = 1; return 0; }"
        assert kind_of(ASAN, src) == "heap-buffer-overflow"

    def test_global_buffer_overflow(self):
        src = "char g[4];\nint main(void){ int i = 4 + (int)input_size(); g[i] = 1; return 0; }"
        assert kind_of(ASAN, src) == "global-buffer-overflow"

    def test_use_after_free(self):
        src = 'int main(void){ char *p = malloc(8); free(p); printf("%d", p[0]); return 0; }'
        assert kind_of(ASAN, src) == "heap-use-after-free"

    def test_double_free(self):
        src = "int main(void){ char *p = malloc(8); free(p); free(p); return 0; }"
        assert kind_of(ASAN, src) == "double-free"

    def test_bad_free_of_stack(self):
        src = "int main(void){ char b[8]; free(b); return 0; }"
        assert kind_of(ASAN, src) == "bad-free"

    def test_memcpy_overlap(self):
        src = "int main(void){ char b[16]; memset(b, 65, 16); memcpy(b + 2, b, 8); return 0; }"
        assert kind_of(ASAN, src) == "memcpy-param-overlap"

    def test_in_bounds_access_is_clean(self):
        src = "int main(void){ char b[8]; int i; for (i = 0; i < 8; i++) b[i] = i; return b[7]; }"
        assert finding(ASAN, src) is None

    def test_misses_far_overflow_into_other_object(self):
        # Jumping over the redzone into another live object: real ASan's
        # known blind spot, preserved here (the 94%-not-100% of Table 3).
        src = (
            "int main(void){ char a[8]; char z[64]; int i = 28 + (int)input_size();"
            " a[i] = 1; return z[0]; }"
        )
        assert finding(ASAN, src) is None

    def test_misses_intra_object_garbage(self):
        src = (
            "struct Q { int a; int b; int c; int d; };\n"
            "int main(void){ int arr[4]; arr[0] = 1;"
            " struct Q *q = (struct Q*)&arr[0];"
            ' printf("%d", q->d); return 0; }'
        )
        assert finding(ASAN, src) is None

    def test_does_not_detect_signed_overflow(self):
        src = 'int main(void){ int x = 2147483647; printf("%d", x + 1); return 0; }'
        assert finding(ASAN, src) is None


class TestUBSan:
    def test_signed_add_overflow(self):
        src = 'int main(void){ int x = 2147483647; printf("%d", x + 1); return 0; }'
        assert kind_of(UBSAN, src) == "signed-integer-overflow"

    def test_signed_mul_overflow(self):
        src = 'int main(void){ int x = 100000; printf("%d", x * x); return 0; }'
        assert kind_of(UBSAN, src) == "signed-integer-overflow"

    def test_unsigned_wrap_not_reported(self):
        src = 'int main(void){ unsigned int x = 4294967295u; printf("%u", x + 1u); return 0; }'
        assert finding(UBSAN, src) is None

    def test_division_by_zero(self):
        src = 'int main(void){ int d = (int)input_size(); printf("%d", 1 / d); return 0; }'
        assert kind_of(UBSAN, src) == "division-by-zero"

    def test_remainder_by_zero(self):
        src = 'int main(void){ int d = (int)input_size(); printf("%d", 1 % d); return 0; }'
        assert kind_of(UBSAN, src) == "division-by-zero"

    def test_division_overflow(self):
        src = (
            "int main(void){ int a = -2147483647 - 1; int d = -1 - (int)input_size();"
            ' printf("%d", a / d); return 0; }'
        )
        assert kind_of(UBSAN, src) == "signed-integer-overflow"

    def test_oversized_shift(self):
        src = 'int main(void){ int s = 33 + (int)input_size(); printf("%d", 1 << s); return 0; }'
        assert kind_of(UBSAN, src) == "invalid-shift"

    def test_negative_shift(self):
        src = 'int main(void){ int s = -1 - (int)input_size(); printf("%d", 4 >> s); return 0; }'
        assert kind_of(UBSAN, src) == "invalid-shift"

    def test_null_load(self):
        src = "int main(void){ int *p = (int*)0; return *p; }"
        assert kind_of(UBSAN, src) == "null-pointer-dereference"

    def test_null_store(self):
        src = "int main(void){ int *p = (int*)0; *p = 1; return 0; }"
        assert kind_of(UBSAN, src) == "null-pointer-dereference"

    def test_function_type_mismatch(self):
        src = "int f(int a, int b) { return a + b; }\nint main(void){ return f(1); }"
        assert kind_of(UBSAN, src) == "function-type-mismatch"

    def test_does_not_detect_buffer_overflow(self):
        src = "int main(void){ char b[8]; int i = 8 + (int)input_size(); b[i] = 1; return 0; }"
        assert finding(UBSAN, src) is None

    def test_does_not_detect_pointer_comparison(self):
        src = "int a;\nint b;\nint main(void){ return &a < &b; }"
        assert finding(UBSAN, src) is None

    def test_clean_arithmetic_no_report(self):
        src = 'int main(void){ int x = 1000; printf("%d", x * x); return 0; }'
        assert finding(UBSAN, src) is None


class TestMSan:
    def test_branch_on_uninitialized_local(self):
        src = (
            "int main(void){ int x;"
            ' if (x > 0) printf("p"); else printf("n"); return 0; }'
        )
        assert kind_of(MSAN, src) == "use-of-uninitialized-value"

    def test_branch_on_uninitialized_heap(self):
        src = (
            "int main(void){ int *p = (int*)malloc(8);"
            ' if (p[1]) printf("t"); return 0; }'
        )
        assert kind_of(MSAN, src) == "use-of-uninitialized-value"

    def test_printing_uninitialized_not_reported(self):
        # The paper's §2 Example 3 scope limit: value flows don't report.
        src = 'int main(void){ int x; printf("%d", x); return 0; }'
        assert finding(MSAN, src) is None

    def test_copy_propagates_shadow(self):
        src = (
            "int main(void){ int src[2]; int dst[2];"
            " memcpy((char*)dst, (char*)src, 8);"
            ' if (dst[1]) printf("t"); else printf("f"); return 0; }'
        )
        assert kind_of(MSAN, src) == "use-of-uninitialized-value"

    def test_initialized_branch_clean(self):
        src = 'int main(void){ int x = 1; if (x) printf("t"); return 0; }'
        assert finding(MSAN, src) is None

    def test_calloc_is_initialized(self):
        src = (
            "int main(void){ int *p = (int*)calloc(2, 4);"
            ' if (p[1]) printf("t"); else printf("f"); return 0; }'
        )
        assert finding(MSAN, src) is None

    def test_store_then_branch_clean(self):
        src = 'int main(void){ int x; x = 3; if (x) printf("t"); return 0; }'
        assert finding(MSAN, src) is None

    def test_frame_reuse_is_uninitialized_again(self):
        src = (
            "int leave(void) { int t = 7; return t; }\n"
            "int probe(void) { int t; if (t) return 1; return 0; }\n"
            "int main(void){ leave(); return probe(); }"
        )
        assert kind_of(MSAN, src) == "use-of-uninitialized-value"


#: One minimal firing program per documented report kind, per tool.
KIND_WITNESSES = {
    "asan": {
        "stack-buffer-overflow": "int main(void){ char b[8]; b[8 + (int)input_size()] = 1; return 0; }",
        "heap-buffer-overflow": "int main(void){ char *p = malloc(8); p[8 + (int)input_size()] = 1; return 0; }",
        "global-buffer-overflow": "char g[4];\nint main(void){ g[4 + (int)input_size()] = 1; return 0; }",
        "heap-use-after-free": 'int main(void){ char *p = malloc(8); free(p); printf("%d", p[0]); return 0; }',
        "double-free": "int main(void){ char *p = malloc(8); free(p); free(p); return 0; }",
        "bad-free": "int main(void){ char b[8]; free(b); return 0; }",
        "memcpy-param-overlap": "int main(void){ char b[16]; memset(b, 65, 16); memcpy(b + 2, b, 8); return 0; }",
    },
    "ubsan": {
        "signed-integer-overflow": 'int main(void){ int x = 2147483647; printf("%d", x + 1); return 0; }',
        "division-by-zero": 'int main(void){ int d = (int)input_size(); printf("%d", 1 / d); return 0; }',
        "invalid-shift": 'int main(void){ int s = 33 + (int)input_size(); printf("%d", 1 << s); return 0; }',
        "null-pointer-dereference": "int main(void){ int *p = (int*)0; return *p; }",
        "function-type-mismatch": "int f(int a, int b) { return a + b; }\nint main(void){ return f(1); }",
    },
    "msan": {
        "use-of-uninitialized-value": 'int main(void){ int x; if (x > 0) printf("p"); return 0; }',
    },
}


class TestCheckAll:
    # First byte 48 ('0') divides by zero; anything else is clean.
    BY_INPUT = (
        "int main(void){ int d = (int)input_byte(0) - 48;"
        ' printf("%d", 100 / d); return 0; }'
    )

    def test_one_finding_per_firing_input(self):
        from repro.minic import load

        findings = UBSAN.check_all(load(self.BY_INPUT), [b"0", b"5", b"0x"])
        assert [f.input for f in findings] == [b"0", b"0x"]
        assert {f.kind for f in findings} == {"division-by-zero"}

    def test_clean_program_yields_no_findings(self):
        from repro.minic import load

        src = "int main(void){ return 0; }"
        for sanitizer in all_sanitizers():
            assert sanitizer.check_all(load(src), [b"", b"abc"]) == []

    def test_check_is_first_of_check_all(self):
        from repro.minic import load

        program = load(self.BY_INPUT)
        inputs = [b"7", b"0", b"0z"]
        first = UBSAN.check(program, inputs)
        everything = UBSAN.check_all(program, inputs)
        assert first == everything[0]
        assert len(everything) == 2

    def test_witness_table_covers_every_documented_kind(self):
        for sanitizer in all_sanitizers():
            assert set(KIND_WITNESSES[sanitizer.name]) == sanitizer.detects

    @pytest.mark.parametrize(
        "tool,kind",
        [(tool, kind) for tool, table in KIND_WITNESSES.items() for kind in table],
    )
    def test_every_documented_kind_fires(self, tool, kind):
        sanitizer = {t.name: t for t in all_sanitizers()}[tool]
        assert kind_of(sanitizer, KIND_WITNESSES[tool][kind]) == kind


class TestScopes:
    def test_all_sanitizers_returns_three(self):
        tools = all_sanitizers()
        assert {t.name for t in tools} == {"asan", "ubsan", "msan"}

    def test_scopes_are_disjoint(self):
        tools = all_sanitizers()
        for i, a in enumerate(tools):
            for b in tools[i + 1 :]:
                assert not (a.detects & b.detects)

    def test_finding_carries_input_and_line(self):
        src = "int main(void){ char b[4]; b[4 + (int)input_size()] = 1; return 0; }"
        result = finding(ASAN, src, [b"xy"])
        assert result is not None
        assert result.input == b"xy"
        assert result.line > 0
