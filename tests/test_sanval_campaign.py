"""Sancheck campaign driver: determinism, banking, checkpoints, CLI."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cli import main as cli_main
from repro.errors import CheckpointError, ReproError
from repro.sanval import (
    FindingBank,
    SancheckCampaign,
    SancheckOptions,
    fixture_seeds,
)

pytestmark = pytest.mark.sanval

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "sanval"


def run_campaign(bank=None, **overrides):
    options = SancheckOptions(fixtures=str(FIXTURES), **overrides)
    with SancheckCampaign(options, bank=bank) as campaign:
        return campaign.run()


@pytest.fixture(scope="module")
def fixture_result():
    return run_campaign()


class TestFixtureCampaign:
    def test_planted_defects_are_found(self, fixture_result):
        counts = fixture_result.counts()
        assert counts["asan"]["FN"] >= 1
        assert counts["msan"]["FN"] >= 1
        assert counts["ubsan"]["FP"] >= 1
        assert counts["ubsan"]["TP"] >= 1

    def test_every_variant_is_accounted_for(self, fixture_result):
        counts = fixture_result.counts()
        judged = sum(sum(row.values()) for row in counts.values())
        assert fixture_result.seeds == 3
        assert judged == fixture_result.variants == len(fixture_result.verdicts)

    def test_findings_carry_complete_evidence(self, fixture_result):
        findings = fixture_result.findings()
        assert findings, "campaign must surface FN/FP findings"
        for verdict in findings:
            assert verdict.outcome in ("FN", "FP")
            assert verdict.source
            if verdict.outcome == "FN":
                assert verdict.expected
                assert verdict.truth.confirmed_checkers
                assert verdict.truth.oracle_fingerprints
                assert verdict.truth.impl_ref != verdict.truth.impl_target
            else:
                assert verdict.reported_kinds
                assert not verdict.truth.divergent

    def test_render_mentions_scoreboard_rows(self, fixture_result):
        text = fixture_result.render()
        for sanitizer in ("asan", "msan", "ubsan"):
            assert sanitizer in text


class TestDeterminism:
    def test_rerun_is_byte_identical(self, fixture_result):
        again = run_campaign()
        assert json.dumps(again.to_json(), sort_keys=True) == json.dumps(
            fixture_result.to_json(), sort_keys=True
        )

    def test_worker_count_does_not_change_verdicts(self, fixture_result):
        pooled = run_campaign(workers=2)
        assert json.dumps(pooled.to_json(), sort_keys=True) == json.dumps(
            fixture_result.to_json(), sort_keys=True
        )


class TestBanking:
    def test_findings_are_banked_reduced_and_deduped(self, tmp_path):
        bank = FindingBank(tmp_path / "bank")
        first = run_campaign(bank=bank)
        assert first.banked_new >= 2
        assert first.bank_size == len(bank)
        for finding in bank:
            assert finding.reduced_nodes <= finding.original_nodes
        # A rerun over the same bank discovers only duplicates.
        second = run_campaign(bank=FindingBank(tmp_path / "bank"))
        assert second.banked_new == 0
        assert second.duplicates >= first.banked_new

    def test_bank_survives_reopen(self, tmp_path):
        bank = FindingBank(tmp_path / "bank")
        run_campaign(bank=bank)
        reopened = FindingBank(tmp_path / "bank")
        assert reopened.keys() == bank.keys()


class TestCheckpointing:
    def test_resume_after_interrupt_completes_identically(self, tmp_path, fixture_result):
        ckpt = tmp_path / "ckpt"
        options = SancheckOptions(fixtures=str(FIXTURES), checkpoint_dir=str(ckpt))

        class Boom(RuntimeError):
            pass

        with SancheckCampaign(options) as campaign:
            original = campaign._process
            calls = 0

            def explode(seed, result):
                nonlocal calls
                calls += 1
                if calls > 1:
                    raise Boom()
                return original(seed, result)

            campaign._process = explode
            with pytest.raises(Boom):
                campaign.run()

        with SancheckCampaign(options) as campaign:
            resumed = campaign.run()
        assert resumed.resumed_at == 1
        assert json.dumps(resumed.to_json(), sort_keys=True) == json.dumps(
            fixture_result.to_json(), sort_keys=True
        )

    def test_checkpoint_refuses_mismatched_options(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        run_campaign(checkpoint_dir=str(ckpt))
        options = SancheckOptions(
            fixtures=str(FIXTURES),
            checkpoint_dir=str(ckpt),
            relocations=("outline",),
        )
        with SancheckCampaign(options) as campaign:
            with pytest.raises(CheckpointError):
                campaign.run()


class TestSeedLoading:
    def test_fixture_seeds_load_manifest(self):
        seeds = fixture_seeds(str(FIXTURES))
        assert [s.label for s in seeds] == [
            "asan_far_oob",
            "msan_value_flow",
            "ubsan_scope",
        ]
        for seed in seeds:
            assert seed.bad_source
            assert seed.good_source
            assert seed.inputs == (b"",)

    def test_fixture_seeds_reject_bad_manifest(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"version": 99, "cases": []}')
        with pytest.raises(ReproError):
            fixture_seeds(str(tmp_path))

    def test_fixture_seeds_require_manifest(self, tmp_path):
        with pytest.raises(ReproError):
            fixture_seeds(str(tmp_path / "missing"))


class TestCLI:
    def test_sancheck_gates_on_planted_defects(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = cli_main(
            [
                "sancheck",
                "--fixtures",
                str(FIXTURES),
                "--bank",
                str(tmp_path / "bank"),
                "--min-fn",
                "1",
                "--min-fp",
                "1",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        document = json.loads(out.read_text())
        assert document["findings"]
        text = capsys.readouterr().out
        assert "FN" in text

    def test_sancheck_fails_unreachable_minimum(self, capsys):
        code = cli_main(
            ["sancheck", "--fixtures", str(FIXTURES), "--min-fn", "99"]
        )
        assert code == 1
        capsys.readouterr()

    def test_sancheck_requires_a_seed_source(self, capsys):
        assert cli_main(["sancheck"]) == 2
        capsys.readouterr()

    def test_sancheck_rejects_unknown_relocation(self, capsys):
        code = cli_main(
            ["sancheck", "--fixtures", str(FIXTURES), "--relocations", "warp"]
        )
        assert code == 2
        capsys.readouterr()

    def test_sancheck_writes_valid_sarif(self, tmp_path, capsys):
        from repro.static_analysis import validate_sarif

        sarif = tmp_path / "report.sarif"
        code = cli_main(
            ["sancheck", "--fixtures", str(FIXTURES), "--sarif", str(sarif), "--json"]
        )
        assert code == 0
        assert validate_sarif(json.loads(sarif.read_text())) == []
        capsys.readouterr()
