"""Relocation transformer invariants (repro.sanval.relocate).

The two contracts the verdict engine leans on:

* relocation preserves *observable behavior* on UB-free programs —
  byte-identical stdout/exit/status across all ten implementations;
* relocation preserves the *oracle's UB classification* on UB programs —
  the confirmed checker survives the move across function/loop/call
  boundaries (where it does not, the campaign drops the variant instead
  of judging it, which tests/test_sanval_campaign.py covers).
"""

from __future__ import annotations

import pathlib

import pytest

from tests.conftest import outputs_across_impls
from repro.minic import load
from repro.sanval import RELOCATION_KINDS, relocate, relocation_variants
from repro.static_analysis.ub_oracle import CONFIRMED, UBOracle

pytestmark = pytest.mark.sanval

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "sanval"

CLEAN = """int helper(int v) {
    return v + 2;
}

int main(void) {
    int total;
    int i;
    total = 0;
    for (i = 0; i < 5; i = i + 1) {
        total = total + helper(i);
    }
    if (total > 10) {
        printf("big %d\\n", total);
    } else {
        printf("small %d\\n", total);
    }
    return 0;
}
"""

CLEAN_INPUT = """int main(void) {
    int c = (int)input_byte(0);
    if (c == 65) {
        printf("A\\n");
    } else {
        printf("other %d\\n", c);
    }
    return 0;
}
"""


def confirmed_checkers(source: str) -> set[str]:
    oracle = UBOracle(mode="interproc")
    report = oracle.report(load(source))
    return {f.checker for f in report.findings if f.confidence == CONFIRMED}


class TestBehaviorPreservation:
    @pytest.mark.parametrize("kind", RELOCATION_KINDS)
    def test_clean_program_output_identical_across_all_impls(self, kind):
        variant = relocate(CLEAN, kind)
        assert variant is not None, f"{kind} did not apply to the clean program"
        original = outputs_across_impls(CLEAN)
        relocated = outputs_across_impls(variant)
        assert relocated == original

    @pytest.mark.parametrize("kind", RELOCATION_KINDS)
    def test_input_dependent_program_preserved_on_both_branches(self, kind):
        variant = relocate(CLEAN_INPUT, kind)
        assert variant is not None
        for input_bytes in (b"A", b"z"):
            assert outputs_across_impls(variant, input_bytes) == outputs_across_impls(
                CLEAN_INPUT, input_bytes
            )

    def test_good_twin_fixtures_preserved(self):
        for path in sorted(FIXTURES.glob("*.good.c")):
            source = path.read_text()
            original = outputs_across_impls(source)
            for variant in relocation_variants(source):
                assert outputs_across_impls(variant.source) == original, (
                    path.name,
                    variant.kind,
                )


class TestOracleClassificationPreservation:
    @pytest.mark.parametrize(
        "fixture", ["asan_far_oob.c", "msan_value_flow.c", "ubsan_scope.c"]
    )
    @pytest.mark.parametrize("kind", ("outline", "loop_shift"))
    def test_confirmed_checker_survives_relocation(self, fixture, kind):
        source = (FIXTURES / fixture).read_text()
        original = confirmed_checkers(source)
        assert original, "fixture must carry a confirmed finding"
        variant = relocate(source, kind)
        assert variant is not None
        assert confirmed_checkers(variant) & original

    def test_carry_preserves_uninit_and_overflow(self):
        for fixture, line in (("msan_value_flow.c", 3), ("ubsan_scope.c", 3)):
            source = (FIXTURES / fixture).read_text()
            variant = relocate(source, "carry", line=line)
            assert variant is not None, fixture
            assert confirmed_checkers(variant) & confirmed_checkers(source)


class TestTransformerHygiene:
    def test_variants_reload_cleanly(self):
        for variant in relocation_variants(CLEAN):
            load(variant.source)

    def test_outline_moves_body_into_callee(self):
        variant = relocate(CLEAN, "outline")
        program = load(variant)
        assert program.function("__sv_outlined") is not None
        main = program.function("main")
        assert len(main.body.body) == 1

    def test_carry_introduces_identity_helpers(self):
        variant = relocate(CLEAN, "carry")
        assert "__sv_carry_i32" in variant

    def test_sv_prefix_collision_refused(self):
        source = "int __sv_mine(void) { return 1; }\nint main(void) { return __sv_mine(); }\n"
        for kind in RELOCATION_KINDS:
            assert relocate(source, kind) is None

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            relocate(CLEAN, "teleport")

    def test_outline_skips_main_with_params(self):
        source = "int main(int argc) { return argc; }\n"
        assert relocate(source, "outline") is None

    def test_invalid_source_returns_none(self):
        assert relocate("int main(void { return 0; }", "outline") is None
