"""Verdict engine + evidence chains + SanitizerFinding diagnostics bridge."""

from __future__ import annotations

import pathlib

import pytest

from repro.core.compdiff import CompDiff
from repro.sanitizers import AddressSanitizer, UndefinedBehaviorSanitizer
from repro.sanitizers.base import SanitizerFinding
from repro.sanval import (
    FN,
    FP,
    ORACLE_KIND_SCOPE,
    TN,
    TP,
    SanitizerStillFires,
    SanitizerStillSilent,
    VerdictEngine,
    expected_kinds,
)
from repro.static_analysis import (
    SANITIZER_KIND_CATEGORY,
    Baseline,
    from_sanitizer_finding,
    to_diagnostics,
    to_sarif,
    validate_sarif,
)
from repro.static_analysis.ub_oracle import UBOracle

pytestmark = pytest.mark.sanval

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "sanval"


@pytest.fixture(scope="module")
def engine():
    compdiff = CompDiff()
    yield VerdictEngine(compdiff)
    compdiff.close()


def fixture(name: str) -> str:
    return (FIXTURES / name).read_text()


def by_sanitizer(verdicts):
    return {v.sanitizer: v for v in verdicts}


class TestClassification:
    def test_planted_asan_fn(self, engine):
        verdicts = by_sanitizer(
            engine.judge_bad(fixture("asan_far_oob.c"), [b""], seed="asan_far_oob")
        )
        assert verdicts["asan"].outcome == FN
        assert "stack-buffer-overflow" in verdicts["asan"].expected
        # Out-of-scope sanitizers are not blamed for the miss.
        assert verdicts["ubsan"].outcome == TN
        assert verdicts["msan"].outcome == TN

    def test_planted_msan_fn(self, engine):
        verdicts = by_sanitizer(
            engine.judge_bad(fixture("msan_value_flow.c"), [b""], seed="msan_value_flow")
        )
        assert verdicts["msan"].outcome == FN
        assert verdicts["msan"].expected == ("use-of-uninitialized-value",)

    def test_ubsan_tp_on_overflow(self, engine):
        verdicts = by_sanitizer(
            engine.judge_bad(fixture("ubsan_scope.c"), [b""], seed="ubsan_scope")
        )
        assert verdicts["ubsan"].outcome == TP
        assert verdicts["ubsan"].reported_kinds == ("signed-integer-overflow",)

    def test_planted_ubsan_fp_on_clean_twin(self, engine):
        verdicts = engine.judge_good(
            fixture("ubsan_scope.good.c"), [b""], seed="ubsan_scope"
        )
        assert verdicts is not None
        table = by_sanitizer(verdicts)
        assert table["ubsan"].outcome == FP
        assert table["ubsan"].reported_kinds == ("function-type-mismatch",)
        assert table["asan"].outcome == TN

    def test_good_screen_rejects_ub_program(self, engine):
        # The bad side carries a confirmed finding + divergence: the
        # cleanliness screen must refuse to treat it as a twin.
        assert engine.judge_good(fixture("asan_far_oob.c"), [b""], seed="x") is None


class TestEvidenceChain:
    def test_fn_verdict_carries_both_ground_truths(self, engine):
        verdict = by_sanitizer(
            engine.judge_bad(fixture("asan_far_oob.c"), [b""], seed="asan_far_oob")
        )["asan"]
        truth = verdict.truth
        assert truth.divergent
        assert truth.confirmed_checkers == ("oob_access",)
        assert len(truth.oracle_fingerprints) == 1
        assert truth.impl_ref and truth.impl_target
        assert truth.impl_ref != truth.impl_target
        assert len(truth.partition) >= 2
        assert truth.line == 8

    def test_stable_truth_has_single_group_no_culprits(self, engine):
        truth = engine.ground_truth(fixture("ubsan_scope.good.c"), [b""])
        assert not truth.divergent
        assert len(truth.partition) == 1
        assert truth.impl_ref == "" and truth.impl_target == ""

    def test_verdict_json_roundtrips(self, engine):
        verdict = by_sanitizer(
            engine.judge_bad(fixture("msan_value_flow.c"), [b""], seed="s")
        )["msan"]
        payload = verdict.to_json()
        assert payload["outcome"] == FN
        assert payload["truth"]["confirmed_checkers"] == ["uninit_read"]
        assert payload["inputs_hex"] == [""]


class TestScopeMap:
    def test_every_scoped_kind_is_a_documented_detect(self):
        from repro.sanitizers import all_sanitizers

        documented = set()
        for sanitizer in all_sanitizers():
            documented |= sanitizer.detects
        for kinds in ORACLE_KIND_SCOPE.values():
            for kind in kinds:
                assert kind in documented

    def test_expected_kinds_filters_by_sanitizer_scope(self):
        asan = AddressSanitizer()
        ubsan = UndefinedBehaviorSanitizer()
        assert expected_kinds(("signed_overflow",), asan) == ()
        assert expected_kinds(("signed_overflow",), ubsan) == (
            "signed-integer-overflow",
        )
        assert expected_kinds(("eval_order",), ubsan) == ()


class TestDiagnosticsBridge:
    def test_sanitizer_finding_bridges_to_diagnostic(self):
        finding = SanitizerFinding(
            tool="asan",
            kind="heap-buffer-overflow",
            line=7,
            detail="write of 1 byte at 0x7f001234",
            input=b"",
        )
        diag = from_sanitizer_finding(finding)
        assert diag.tool == "asan"
        assert diag.checker == "heap-buffer-overflow"
        assert diag.category == "MemError"
        assert diag.severity == "error"
        assert "0x?" in diag.message and "0x7f001234" not in diag.message

    def test_fingerprint_is_address_and_line_independent(self):
        a = SanitizerFinding("asan", "heap-use-after-free", 7, "read at 0xdead", b"")
        b = SanitizerFinding("asan", "heap-use-after-free", 42, "read at 0xbeef", b"")
        assert from_sanitizer_finding(a).fingerprint == from_sanitizer_finding(b).fingerprint

    def test_to_diagnostics_accepts_sanitizer_findings(self):
        finding = SanitizerFinding("msan", "use-of-uninitialized-value", 3, "", b"")
        diags = to_diagnostics([finding])
        assert len(diags) == 1
        assert diags[0].category == "UninitMem"

    def test_every_detect_kind_has_a_category(self):
        from repro.sanitizers import all_sanitizers

        for sanitizer in all_sanitizers():
            for kind in sanitizer.detects:
                assert kind in SANITIZER_KIND_CATEGORY

    def test_bridged_reports_ride_sarif_and_baseline(self):
        finding = SanitizerFinding("ubsan", "division-by-zero", 4, "div at 0x10", b"")
        diags = to_diagnostics([finding])
        document = to_sarif(diags, artifact_uri="sanval")
        assert validate_sarif(document) == []
        baseline = Baseline.from_diagnostics(diags)
        assert baseline.filter(diags) == []


class TestReductionPredicates:
    def test_still_silent_holds_on_planted_fn(self, engine):
        predicate = SanitizerStillSilent(
            sanitizer=AddressSanitizer(),
            engine=engine.engine,
            oracle=UBOracle(mode="interproc"),
            inputs=[b""],
            checkers=frozenset({"oob_access"}),
        )
        assert predicate(fixture("asan_far_oob.c"))
        # The good twin has no confirmed oob and no divergence.
        assert not predicate(fixture("asan_far_oob.good.c"))
        assert not predicate("int main(void { broken")

    def test_still_fires_holds_on_planted_fp(self, engine):
        predicate = SanitizerStillFires(
            sanitizer=UndefinedBehaviorSanitizer(),
            engine=engine.engine,
            oracle=UBOracle(mode="interproc"),
            inputs=[b""],
            kind="function-type-mismatch",
        )
        assert predicate(fixture("ubsan_scope.good.c"))
        # The overflow program fires a different kind and is confirmed-UB.
        assert not predicate(fixture("ubsan_scope.c"))
