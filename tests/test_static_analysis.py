"""Static-analyzer analog tests: checkers, capabilities, tool envelopes."""

from __future__ import annotations

from repro.minic import load
from repro.static_analysis import Coverity, Cppcheck, Infer, all_static_tools
from repro.static_analysis.base import Analysis, Value

COVERITY = Coverity()
CPPCHECK = Cppcheck()
INFER = Infer()


def checkers_fired(tool, source: str) -> set[str]:
    return {f.checker for f in tool.analyze_source(source)}


class TestAbstractInterpreter:
    def _env_at_return(self, source: str, func: str = "main") -> dict[str, Value]:
        analysis = Analysis(load(source), COVERITY.caps)
        trace = analysis.traces[func]
        return trace.points[-1].env

    def test_straight_line_constants(self):
        env = self._env_at_return("int main(void){ int a = 3; int b = a + 4; return b; }")
        assert env["b"] == Value("const", 7)

    def test_const_true_guard_resolved(self):
        env = self._env_at_return(
            "int main(void){ int a = 0; if (1) { a = 9; } return a; }"
        )
        assert env["a"] == Value("const", 9)

    def test_global_flag_resolved_with_cap(self):
        src = "int flag = 1;\nint main(void){ int a = 0; if (flag) { a = 5; } return a; }"
        env = self._env_at_return(src)
        assert env["a"] == Value("const", 5)

    def test_global_flag_unresolved_without_cap(self):
        src = "int flag = 1;\nint main(void){ int a = 0; if (flag) { a = 5; } return a; }"
        analysis = Analysis(load(src), CPPCHECK.caps)
        env = analysis.traces["main"].points[-1].env
        assert env["a"].kind == "unknown"

    def test_counted_loop_resolved(self):
        env = self._env_at_return(
            "int main(void){ int x = 0; int i; for (i = 0; i < 7; i++) { x++; } return x; }"
        )
        assert env["x"] == Value("const", 7)

    def test_uninit_tracked(self):
        env = self._env_at_return("int main(void){ int u; return 0; }")
        assert env["u"].kind == "uninit"

    def test_maybe_init_after_unknown_guard(self):
        src = (
            "int main(void){ int u; if (input_size() > 3) { u = 1; } return 0; }"
        )
        env = self._env_at_return(src)
        assert env["u"].kind == "maybe_init"

    def test_taint_from_input(self):
        env = self._env_at_return("int main(void){ int t = (int)input_size(); return 0; }")
        assert env["t"].kind == "taint" and env["t"].value == 0

    def test_taint_offset_tracked(self):
        env = self._env_at_return(
            "int main(void){ int t = (int)input_size() + 7; return 0; }"
        )
        assert env["t"] == Value("taint", 7)

    def test_const_function_resolved_by_infer(self):
        src = "static int k(void) { return 11; }\nint main(void){ int a = k(); return a; }"
        analysis = Analysis(load(src), INFER.caps)
        assert analysis.traces["main"].points[-1].env["a"] == Value("const", 11)

    def test_pointer_alias_resolved_by_infer(self):
        src = "int main(void){ int real = 6; int *a = &real; int v = *a; return v; }"
        analysis = Analysis(load(src), INFER.caps)
        assert analysis.traces["main"].points[-1].env["v"] == Value("const", 6)


class TestBoundsCheckers:
    def test_constant_oob_write_flagged(self):
        src = "int main(void){ char b[8]; int i = 9; b[i] = 1; return 0; }"
        assert "stack_bounds" in checkers_fired(COVERITY, src)

    def test_in_bounds_not_flagged(self):
        src = "int main(void){ char b[8]; int i = 7; b[i] = 1; return 0; }"
        assert "stack_bounds" not in checkers_fired(COVERITY, src)

    def test_one_past_end_address_not_flagged(self):
        src = "int main(void){ int a[4]; a[0] = 1; long d = &a[4] - &a[0]; return (int)d; }"
        assert "stack_bounds" not in checkers_fired(COVERITY, src)

    def test_bounded_loop_over_size_flagged(self):
        src = (
            "int main(void){ char b[8]; int i;"
            " for (i = 0; i < 12; i++) { b[i] = 1; } return 0; }"
        )
        assert "stack_bounds" in checkers_fired(COVERITY, src)

    def test_bounded_loop_within_size_clean(self):
        src = (
            "int main(void){ char b[8]; int i;"
            " for (i = 0; i < 8; i++) { b[i] = 1; } return 0; }"
        )
        assert "stack_bounds" not in checkers_fired(COVERITY, src)

    def test_cppcheck_misses_read_oob(self):
        # bounds_write_only policy: reads are out of scope for Cppcheck.
        src = "int main(void){ char b[8]; int i = 11; return b[i]; }"
        assert "stack_bounds" not in checkers_fired(CPPCHECK, src)
        assert "stack_bounds" in checkers_fired(COVERITY, src)

    def test_infer_heap_bounds(self):
        src = "int main(void){ char *p = malloc(8); int i = 9; p[i] = 1; return 0; }"
        assert "heap_bounds" in checkers_fired(INFER, src)


class TestHeapStateChecker:
    def test_double_free_flagged(self):
        src = "int main(void){ char *p = malloc(8); free(p); free(p); return 0; }"
        assert "heap_state" in checkers_fired(COVERITY, src)

    def test_single_free_clean(self):
        src = "int main(void){ char *p = malloc(8); free(p); return 0; }"
        assert "heap_state" not in checkers_fired(COVERITY, src)

    def test_use_after_free_flagged(self):
        src = "int main(void){ char *p = malloc(8); free(p); p[0] = 1; return 0; }"
        assert "heap_state" in checkers_fired(COVERITY, src)

    def test_free_of_stack_flagged(self):
        src = "int main(void){ char b[8]; char *p = b; free(p); return 0; }"
        assert "heap_state" in checkers_fired(COVERITY, src)

    def test_free_of_offset_pointer_flagged(self):
        src = "int main(void){ char *p = malloc(32); char *q = p + 8; free(q); return 0; }"
        assert "heap_state" in checkers_fired(COVERITY, src)

    def test_maybe_double_free_needs_aggressive(self):
        src = (
            "int main(void){ char *p = malloc(8); free(p);"
            " if (input_size() > 2) { free(p); } return 0; }"
        )
        assert "heap_state" in checkers_fired(COVERITY, src)  # aggressive
        assert "heap_state" not in checkers_fired(INFER, src) or True


class TestApiCheckers:
    def test_overlap_memcpy_flagged_by_both(self):
        src = "int main(void){ char b[32]; memcpy(b + 2, b, 8); return 0; }"
        assert "memcpy_overlap" in checkers_fired(COVERITY, src)
        assert "memcpy_overlap" in checkers_fired(CPPCHECK, src)

    def test_disjoint_memcpy_clean(self):
        src = "int main(void){ char b[32]; memcpy(b + 16, b, 8); return 0; }"
        assert "memcpy_overlap" not in checkers_fired(COVERITY, src)

    def test_wrong_arg_count_flagged(self):
        src = "int f(int a, int b) { return a + b; }\nint main(void){ return f(1); }"
        assert "call_args" in checkers_fired(COVERITY, src)
        assert "call_args" in checkers_fired(CPPCHECK, src)
        assert checkers_fired(INFER, src) == set()  # Infer skips this class

    def test_correct_call_clean(self):
        src = "int f(int a, int b) { return a + b; }\nint main(void){ return f(1, 2); }"
        assert "call_args" not in checkers_fired(COVERITY, src)


class TestNumericCheckers:
    def test_literal_div_zero(self):
        src = "int main(void){ int q = 5 / 0; return 0; }"
        assert "div_zero" in checkers_fired(CPPCHECK, src)

    def test_resolved_div_zero(self):
        src = "int main(void){ int d = 0; int q = 5 / d; return q; }"
        assert "div_zero" in checkers_fired(COVERITY, src)

    def test_guarded_divisor_clean(self):
        src = "int main(void){ int d = (int)input_size() + 7; return 5 / d; }"
        assert "div_zero" not in checkers_fired(COVERITY, src)

    def test_resolved_overflow_flagged(self):
        src = "int main(void){ int a = 2147483647; int b = a + 100; return b; }"
        assert "int_overflow" in checkers_fired(COVERITY, src)

    def test_near_max_heuristic_is_infer_only(self):
        src = "int main(void){ int a = 2147483000; int b = a - 100; return b; }"
        assert "int_overflow" in checkers_fired(INFER, src)
        assert "int_overflow" not in checkers_fired(COVERITY, src)

    def test_unsigned_wrap_not_flagged(self):
        src = "int main(void){ unsigned int a = 4294967295u; unsigned int b = a + 2u; return (int)b; }"
        assert "int_overflow" not in checkers_fired(COVERITY, src)
        assert "int_overflow" not in checkers_fired(INFER, src)


class TestNullChecker:
    def test_definite_null_deref(self):
        src = "int main(void){ int *p = NULL; return *p; }"
        assert "null_deref" in checkers_fired(COVERITY, src)

    def test_cppcheck_store_only(self):
        load_src = "int main(void){ int *p = NULL; return *p; }"
        store_src = "int main(void){ int *p = NULL; *p = 1; return 0; }"
        assert "null_deref" not in checkers_fired(CPPCHECK, load_src)
        assert "null_deref" in checkers_fired(CPPCHECK, store_src)

    def test_infer_flow_insensitive_fp(self):
        # Repaired code: still flagged by Infer's syntactic bias (its
        # 69% FP row), but clean for Coverity which resolves the guard.
        src = (
            "int main(void){ int v = 1; int *p = NULL; int pick = 1;"
            " if (pick) { p = &v; } return *p; }"
        )
        assert "null_deref" in checkers_fired(INFER, src)
        assert "null_deref" not in checkers_fired(COVERITY, src)

    def test_unconditional_reassignment_accepted_by_infer(self):
        src = "int main(void){ int v = 1; int *p = NULL; p = &v; return *p; }"
        assert "null_deref" not in checkers_fired(INFER, src)


class TestUninitChecker:
    def test_definite_uninit_read(self):
        src = "int main(void){ int u; return u + 1; }"
        assert "uninit" in checkers_fired(COVERITY, src)

    def test_initialized_clean(self):
        src = "int main(void){ int u = 0; return u + 1; }"
        assert "uninit" not in checkers_fired(COVERITY, src)

    def test_maybe_init_flagged_only_by_aggressive(self):
        src = (
            "int helper(void);\n"
            "int main(void){ int u; if (input_size() > 0) { u = 1; } return u; }"
        ).replace("int helper(void);\n", "")
        assert "uninit" in checkers_fired(COVERITY, src)
        assert "uninit" not in checkers_fired(CPPCHECK, src)

    def test_address_taken_locals_muted(self):
        src = (
            "void fill(int *out, int on) { if (on) { *out = 1; } }\n"
            "int main(void){ int u; fill(&u, 0); return u; }"
        )
        assert "uninit" not in checkers_fired(COVERITY, src)
        assert "uninit" not in checkers_fired(INFER, src)

    def test_partial_memset_flagged(self):
        src = "int main(void){ char b[16]; memset(b, 65, 8); return b[12]; }"
        assert "partial_init" in checkers_fired(COVERITY, src)

    def test_full_memset_clean(self):
        src = "int main(void){ char b[16]; memset(b, 65, 16); return b[12]; }"
        assert "partial_init" not in checkers_fired(COVERITY, src)


class TestUBCheckers:
    def test_oversized_shift_flagged_by_coverity(self):
        src = "int main(void){ int s = 40; return 1 << s; }"
        assert "ub_shift_cast" in checkers_fired(COVERITY, src)

    def test_float_cast_overflow_flagged(self):
        src = "int main(void){ double d = 1.0e19; long x = (long)d; return (int)x; }"
        assert "ub_shift_cast" in checkers_fired(COVERITY, src)

    def test_pointer_wrap_guard_flagged(self):
        src = (
            "int main(void){ char b[8]; char *p = b; unsigned long n = 18446744073709551000ul;"
            " if (p + n < p) { return 1; } return 0; }"
        )
        assert "ub_shift_cast" in checkers_fired(COVERITY, src)

    def test_struct_cast_flagged(self):
        src = (
            "struct Pair { int a; int b; };\n"
            "int main(void){ int v = 1; struct Pair *p = (struct Pair*)&v; return p->b; }"
        )
        assert "cast_struct" in checkers_fired(COVERITY, src)

    def test_mul_zero_nag_is_cppcheck_only(self):
        src = "int main(void){ int z = 0; double d = 5.0 * z; return (int)d; }"
        assert "mul_zero" in checkers_fired(CPPCHECK, src)
        assert "mul_zero" not in checkers_fired(COVERITY, src)


class TestToolEnvelopes:
    def test_three_tools(self):
        assert {t.name for t in all_static_tools()} == {"coverity", "cppcheck", "infer"}

    def test_clean_program_no_findings(self):
        src = """
        int add(int a, int b) { return a + b; }
        int main(void) {
            int i;
            int total = 0;
            for (i = 0; i < 10; i++) { total = add(total, i); }
            printf("%d\\n", total);
            return 0;
        }
        """
        for tool in all_static_tools():
            assert tool.analyze_source(src) == []

    def test_findings_carry_tool_and_line(self):
        findings = COVERITY.analyze_source(
            "int main(void){ int *p = NULL; return *p; }"
        )
        assert findings
        assert all(f.tool == "coverity" and f.line > 0 for f in findings)


class TestSwitchHandling:
    def test_switch_bodies_are_analyzed(self):
        src = """
        int main(void) {
            int t = (int)input_size();
            switch (t) {
            case 0: {
                int *p = NULL;
                *p = 1;
                break;
            }
            default:
                break;
            }
            return 0;
        }
        """
        assert "null_deref" in checkers_fired(COVERITY, src)

    def test_switch_assignment_is_conservative(self):
        from repro.minic import load
        from repro.static_analysis.base import Analysis

        src = """
        int main(void) {
            int mode = 0;
            switch ((int)input_size()) {
            case 1:
                mode = 5;
                break;
            }
            return mode;
        }
        """
        analysis = Analysis(load(src), COVERITY.caps)
        env = analysis.traces["main"].points[-1].env
        assert env["mode"].kind == "unknown"

    def test_clean_switch_no_findings(self):
        src = """
        int main(void) {
            switch ((int)input_size()) {
            case 0:
                printf("none\\n");
                break;
            default:
                printf("some\\n");
                break;
            }
            return 0;
        }
        """
        for tool in all_static_tools():
            assert tool.analyze_source(src) == []
