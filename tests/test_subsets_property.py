"""Property tests for the subset-ablation machinery (Figures 1/2 math)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.subsets import evaluate_subsets

IMPLS = ("i0", "i1", "i2", "i3", "i4")


@st.composite
def bug_vectors(draw):
    num_bugs = draw(st.integers(min_value=1, max_value=8))
    vectors = {}
    for bug in range(num_bugs):
        rows = []
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            rows.append({impl: draw(st.integers(min_value=0, max_value=3)) for impl in IMPLS})
        vectors[f"bug{bug}"] = rows
    return vectors


@given(bug_vectors())
@settings(max_examples=60, deadline=None)
def test_full_set_dominates_every_subset(vectors):
    evaluation = evaluate_subsets(vectors, IMPLS)
    full = evaluation.summaries[len(IMPLS)].best_count
    for summary in evaluation.summaries.values():
        assert summary.best_count <= full
        assert summary.worst_count <= summary.best_count


@given(bug_vectors())
@settings(max_examples=60, deadline=None)
def test_best_count_monotone_in_size(vectors):
    evaluation = evaluate_subsets(vectors, IMPLS)
    sizes = sorted(evaluation.summaries)
    bests = [evaluation.summaries[s].best_count for s in sizes]
    minimums = [evaluation.summaries[s].minimum for s in sizes]
    assert bests == sorted(bests)
    assert minimums == sorted(minimums)


@given(bug_vectors())
@settings(max_examples=60, deadline=None)
def test_full_set_counts_exactly_the_divergent_bugs(vectors):
    evaluation = evaluate_subsets(vectors, IMPLS)
    divergent = sum(
        1
        for rows in vectors.values()
        if any(len(set(row.values())) > 1 for row in rows)
    )
    assert evaluation.summaries[len(IMPLS)].best_count == divergent


@given(bug_vectors())
@settings(max_examples=40, deadline=None)
def test_subset_counts_are_combinatorially_complete(vectors):
    from math import comb

    evaluation = evaluate_subsets(vectors, IMPLS)
    for size, summary in evaluation.summaries.items():
        assert len(summary.counts) == comb(len(IMPLS), size)


@given(bug_vectors())
@settings(max_examples=40, deadline=None)
def test_quartiles_are_ordered(vectors):
    evaluation = evaluate_subsets(vectors, IMPLS)
    for summary in evaluation.summaries.values():
        q1, median, q3 = summary.quartiles()
        assert summary.minimum <= q1 <= median <= q3 <= summary.maximum
