"""Digest-addressed summary cache: invalidation, persistence, verdicts."""

from __future__ import annotations

import json

import pytest

from repro.compiler.binary import compile_module
from repro.compiler.implementations import implementation
from repro.minic import load
from repro.parallel.stats import EngineStats
from repro.static_analysis import SummaryCache, UBOracle
from repro.static_analysis.interproc import (
    SUMMARY_VERSION,
    build_call_graph,
    function_digests,
    summarize_module,
)
from repro.static_analysis.summary_cache import CACHE_FILENAME

pytestmark = pytest.mark.interproc

SOURCE = """
static int readit(int *p) { return *p; }
static int chain(int *p) { return readit(p); }
int main(void) {
    int value;
    printf("v=%d\\n", chain(&value));
    return 0;
}
"""

#: Same call structure, different callee body — every digest on the
#: chain from readit() up must change.
EDITED = SOURCE.replace("return *p;", "*p = 7; return *p;")


def _module(source: str, name: str = "m"):
    return compile_module(load(source), implementation("gcc-O0"), name=name)


class TestDigests:
    def test_digest_changes_when_body_changes(self):
        before = function_digests(_module(SOURCE))
        after = function_digests(_module(EDITED))
        assert before["readit"] != after["readit"]
        # Transitivity: callers of the edited function change too.
        assert before["chain"] != after["chain"]
        assert before["main"] != after["main"]

    def test_digest_stable_across_recompiles(self):
        assert function_digests(_module(SOURCE)) == function_digests(_module(SOURCE))

    def test_unrelated_function_digest_unchanged(self):
        appended = SOURCE + "\nstatic int island(void) { return 3; }\n"
        before = function_digests(_module(SOURCE))
        after = function_digests(_module(appended))
        # readit/chain do not call island, so their input set is intact.
        assert before["readit"] == after["readit"]
        assert before["chain"] == after["chain"]


class TestCacheSemantics:
    def test_cold_then_warm(self):
        module = _module(SOURCE)
        cache = SummaryCache()
        summarize_module(module, cache=cache)
        assert cache.stats.misses > 0 and cache.stats.hits == 0
        summarize_module(module, cache=cache)
        assert cache.stats.hits > 0
        assert cache.stats.invalidations == 0

    def test_body_change_invalidates(self):
        cache = SummaryCache()
        summarize_module(_module(SOURCE), cache=cache)
        misses_cold = cache.stats.misses
        # Same module name, same function names, different readit body:
        # the stale entries must be discarded, not served.
        summarize_module(_module(EDITED), cache=cache)
        assert cache.stats.invalidations > 0
        assert cache.stats.misses > misses_cold

    def test_lookup_accounting(self):
        module = _module(SOURCE)
        digests = function_digests(module, build_call_graph(module))
        ctx = summarize_module(module)
        summary = ctx.summaries["readit"]
        cache = SummaryCache()
        assert cache.lookup("m", "readit", digests["readit"]) is None
        cache.store("m", "readit", digests["readit"], summary)
        assert cache.lookup("m", "readit", digests["readit"]) is summary
        assert cache.lookup("m", "readit", "0" * 16) is None  # stale digest
        snap = cache.stats.snapshot()
        assert snap["hits"] == 1
        assert snap["misses"] == 2
        assert snap["invalidations"] == 1
        # The stale entry was evicted, so the old digest can't come back.
        assert len(cache) == 0


class TestPersistence:
    def test_round_trip_via_directory(self, tmp_path):
        module = _module(SOURCE)
        cold = SummaryCache(tmp_path)
        summarize_module(module, cache=cold)
        cold.save()
        assert (tmp_path / CACHE_FILENAME).exists()

        warm = SummaryCache(tmp_path)
        assert len(warm) == len(cold)
        summarize_module(module, cache=warm)
        assert warm.stats.hits > 0 and warm.stats.misses == 0

    def test_corrupt_file_ignored(self, tmp_path):
        path = tmp_path / CACHE_FILENAME
        path.write_text("{not json")
        cache = SummaryCache(tmp_path)
        assert len(cache) == 0

    def test_version_mismatch_ignored(self, tmp_path):
        module = _module(SOURCE)
        cache = SummaryCache(tmp_path)
        summarize_module(module, cache=cache)
        cache.save()
        document = json.loads((tmp_path / CACHE_FILENAME).read_text())
        document["version"] = SUMMARY_VERSION + 1
        (tmp_path / CACHE_FILENAME).write_text(json.dumps(document))
        assert len(SummaryCache(tmp_path)) == 0


class TestVerdictEquality:
    def test_hot_and_cold_reports_byte_identical(self, tmp_path):
        def report_lines(oracle):
            findings = oracle.report(load(SOURCE), name="case").findings
            return [
                (f.checker, f.confidence, f.function, f.line, f.message, f.trace)
                for f in findings
            ]

        cold_cache = SummaryCache(tmp_path)
        cold = report_lines(UBOracle(mode="interproc", summary_cache=cold_cache))
        assert cold_cache.stats.misses > 0
        cold_cache.save()

        warm_cache = SummaryCache(tmp_path)
        warm = report_lines(UBOracle(mode="interproc", summary_cache=warm_cache))
        assert warm_cache.stats.hits > 0 and warm_cache.stats.misses == 0
        assert cold == warm
        # The chain case really does produce findings in both runs.
        assert any(checker == "uninit_read" for checker, *_ in cold)


class TestEngineStatsFold:
    def test_record_summary_cache_folds_and_zeroes(self):
        cache = SummaryCache()
        summarize_module(_module(SOURCE), cache=cache)
        summarize_module(_module(SOURCE), cache=cache)
        hits, misses = cache.stats.hits, cache.stats.misses
        assert hits > 0 and misses > 0

        stats = EngineStats()
        stats.record_summary_cache(cache)
        assert stats.summary_hits == hits
        assert stats.summary_misses == misses
        # Counters are consumed so a second fold can't double-count.
        assert cache.stats.hits == cache.stats.misses == 0
        stats.record_summary_cache(cache)
        assert stats.summary_hits == hits
