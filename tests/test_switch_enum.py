"""switch/case and enum support."""

from __future__ import annotations

import pytest

from repro.errors import CheckError, ParseError
from repro.minic import load, parse

from tests.conftest import outputs_across_impls, run_source, stdout_of


class TestSwitchSemantics:
    SRC = """
    int classify(int t) {
        switch (t) {
        case 0:
            return 100;
        case 1:
        case 2:
            return 200;
        case 3: {
            int bonus = 5;
            return 300 + bonus;
        }
        default:
            return -1;
        }
    }
    int main(void) {
        printf("%d %d %d %d %d\\n",
               classify(0), classify(1), classify(2), classify(3), classify(9));
        return 0;
    }
    """

    def test_dispatch_and_default(self):
        assert stdout_of(self.SRC) == b"100 200 200 305 -1\n"

    def test_same_result_optimized(self):
        assert stdout_of(self.SRC, "clang-O3") == b"100 200 200 305 -1\n"

    def test_fallthrough(self):
        src = """
        int main(void) {
            int t = (int)input_size();
            switch (t) {
            case 0:
                printf("zero ");
            case 1:
                printf("one ");
                break;
            case 2:
                printf("two ");
            }
            printf("done\\n");
            return 0;
        }
        """
        assert stdout_of(src, input_bytes=b"") == b"zero one done\n"
        assert stdout_of(src, input_bytes=b"x") == b"one done\n"
        assert stdout_of(src, input_bytes=b"xx") == b"two done\n"
        assert stdout_of(src, input_bytes=b"xxx") == b"done\n"

    def test_break_targets_switch_not_loop(self):
        src = """
        int main(void) {
            int i;
            int total = 0;
            for (i = 0; i < 4; i++) {
                switch (i) {
                case 2:
                    break;
                default:
                    total += i;
                }
            }
            printf("%d\\n", total);
            return 0;
        }
        """
        assert stdout_of(src) == b"4\n"  # 0+1+3; i==2 skipped by break

    def test_continue_inside_switch_targets_loop(self):
        src = """
        int main(void) {
            int i;
            int total = 0;
            for (i = 0; i < 5; i++) {
                switch (i % 2) {
                case 0:
                    continue;
                default:
                    total += i;
                }
            }
            printf("%d\\n", total);
            return 0;
        }
        """
        assert stdout_of(src) == b"4\n"  # 1 + 3

    def test_no_matching_case_no_default(self):
        src = """
        int main(void) {
            switch ((int)input_size()) {
            case 5:
                printf("five\\n");
            }
            printf("after\\n");
            return 0;
        }
        """
        assert stdout_of(src) == b"after\n"

    def test_negative_case_label(self):
        src = """
        int main(void) {
            int v = -3 - (int)input_size();
            switch (v) {
            case -3:
                printf("neg\\n");
                break;
            }
            return 0;
        }
        """
        assert stdout_of(src) == b"neg\n"

    def test_stable_across_all_impls(self):
        out = outputs_across_impls(self.SRC)
        assert len(set(out.values())) == 1

    def test_case_values_feed_fuzzer_dictionary(self):
        from repro.compiler import compile_source, implementation

        src = """
        int main(void) {
            switch (input_byte(0)) {
            case 77:
                printf("m\\n");
                break;
            }
            return 0;
        }
        """
        binary = compile_source(src, implementation("gcc-O0"))
        assert 77 in binary.module.magic_constants


class TestSwitchErrors:
    def test_duplicate_case_rejected(self):
        with pytest.raises(CheckError):
            load(
                "int main(void){ switch (1) { case 1: break; case 1: break; } return 0; }"
            )

    def test_duplicate_default_rejected(self):
        with pytest.raises(ParseError):
            parse(
                "int main(void){ switch (1) { default: break; default: break; } return 0; }"
            )

    def test_non_constant_case_rejected(self):
        with pytest.raises(ParseError):
            parse("int main(void){ int x = 1; switch (1) { case x: break; } return 0; }")

    def test_float_condition_rejected(self):
        with pytest.raises(CheckError):
            load("int main(void){ double d = 1.0; switch (d) { case 1: break; } return 0; }")


class TestEnums:
    SRC = """
    enum Color { RED, GREEN = 5, BLUE };

    int main(void) {
        enum Color c = BLUE;
        printf("%d %d %d\\n", RED, GREEN, c);
        return 0;
    }
    """

    def test_enumerator_values(self):
        assert stdout_of(self.SRC) == b"0 5 6\n"

    def test_enum_in_switch(self):
        src = """
        enum Kind { HEADER = 10, BODY = 20 };
        int main(void) {
            int k = 10 + (int)input_size();
            switch (k) {
            case HEADER:
                printf("header\\n");
                break;
            case BODY:
                printf("body\\n");
                break;
            }
            return 0;
        }
        """
        assert stdout_of(src, input_bytes=b"") == b"header\n"

    def test_enum_type_is_int(self):
        src = "enum E { A };\nint main(void){ enum E e = A; return sizeof(e) == 4; }"
        assert run_source(src).exit_code == 1

    def test_negative_enumerator(self):
        src = 'enum S { ERR = -2, OK = 0 };\nint main(void){ printf("%d", ERR); return 0; }'
        assert stdout_of(src) == b"-2"

    def test_unknown_enum_type_rejected(self):
        with pytest.raises(ParseError):
            parse("int main(void){ enum Missing m; return 0; }")

    def test_enum_stable_across_impls(self):
        out = outputs_across_impls(self.SRC)
        assert len(set(out.values())) == 1
