"""Per-category behavior of the seeded-bug snippet library.

Each category must (a) compile inside a minimal harness, (b) diverge
across the ten implementations when triggered, and (c) be visible exactly
to the sanitizer class Table 6 assigns it.
"""

from __future__ import annotations

import random

import pytest

from repro.core.compdiff import CompDiff
from repro.minic import load
from repro.sanitizers import all_sanitizers
from repro.targets import bugs as bug_lib


def harness(snippet: bug_lib.BugSnippet, payload: bytes) -> tuple[str, bytes]:
    """Wrap a handler in a minimal main that feeds it the fuzz input."""
    source_parts = []
    if snippet.globals:
        source_parts.append(snippet.globals)
    if snippet.helpers:
        source_parts.append(snippet.helpers)
    source_parts.append(snippet.handler)
    source_parts.append(
        f"""int main(void) {{
    char buf[128];
    long n = read_input(buf, 128);
    int rc = h{snippet.site}(buf, n);
    printf("rc=%d\\n", rc);
    return 0;
}}"""
    )
    return "\n\n".join(source_parts), payload


ENGINE = CompDiff(fuel=300_000)
SANITIZERS = {s.name: s for s in all_sanitizers()}


def divergent(source: str, payload: bytes) -> bool:
    return ENGINE.check(load(source), [payload]).divergent


def sanitizer_hit(source: str, payload: bytes, tool: str) -> bool:
    return SANITIZERS[tool].check(load(source), [payload]) is not None


class TestEvalOrder:
    def test_diverges_and_no_sanitizer_sees_it(self):
        snippet = bug_lib.evalorder_bug(1, random.Random(0))
        source, payload = harness(snippet, b"\x05\x09rest")
        assert divergent(source, payload)
        for tool in ("asan", "ubsan", "msan"):
            assert not sanitizer_hit(source, payload, tool), tool


class TestUninitMem:
    @pytest.mark.parametrize("seed", range(6))
    def test_diverges_when_not_initialized(self, seed):
        snippet = bug_lib.uninit_bug(10 + seed, random.Random(seed))
        source, payload = harness(snippet, b"\x00\x00xxxx")
        assert divergent(source, payload), snippet.subcategory

    def test_branch_kind_is_msan_visible(self):
        rng = random.Random(0)
        snippets = [bug_lib.uninit_bug(50 + i, rng) for i in range(20)]
        branch = next(s for s in snippets if s.subcategory == "branch")
        source, payload = harness(branch, b"\x00\x00xx")
        assert sanitizer_hit(source, payload, "msan")

    def test_scalar_kind_is_msan_invisible(self):
        rng = random.Random(0)
        snippets = [bug_lib.uninit_bug(80 + i, rng) for i in range(20)]
        scalar = next(s for s in snippets if s.subcategory == "scalar")
        source, payload = harness(scalar, b"\x00\x00xx")
        assert not sanitizer_hit(source, payload, "msan")


class TestIntError:
    @pytest.mark.parametrize("seed", range(4))
    def test_diverges_on_overflowing_payload(self, seed):
        snippet = bug_lib.interror_bug(20 + seed, random.Random(seed))
        source, payload = harness(snippet, b"\x7f\x7fxx")
        assert divergent(source, payload), snippet.subcategory

    def test_ubsan_catches(self):
        snippet = bug_lib.interror_bug(24, random.Random(1))
        source, payload = harness(snippet, b"\x7f\x7fxx")
        assert sanitizer_hit(source, payload, "ubsan")


class TestMemError:
    def _snippets(self):
        rng = random.Random(3)
        by_kind = {}
        for i in range(40):
            snippet = bug_lib.memerror_bug(200 + i, rng)
            by_kind.setdefault(snippet.subcategory, snippet)
        return by_kind

    def test_all_four_kinds_generated(self):
        assert set(self._snippets()) == {
            "stack_overflow",
            "heap_overflow",
            "uaf",
            "double_free",
        }

    def test_stack_overflow_diverges_and_asan_catches(self):
        snippet = self._snippets()["stack_overflow"]
        source, payload = harness(snippet, b"\x3f\x41xx")  # len 63: far overflow
        assert divergent(source, payload)
        assert sanitizer_hit(source, payload, "asan")

    def test_double_free_diverges_and_asan_catches(self):
        snippet = self._snippets()["double_free"]
        source, payload = harness(snippet, b"F\x00xx")
        assert divergent(source, payload)
        assert sanitizer_hit(source, payload, "asan")

    def test_uaf_diverges_when_freed(self):
        snippet = self._snippets()["uaf"]
        source, payload = harness(snippet, b"\x01\x00xx")
        assert divergent(source, payload)
        assert sanitizer_hit(source, payload, "asan")

    def test_benign_payload_is_stable(self):
        snippet = self._snippets()["double_free"]
        source, payload = harness(snippet, b"\x00\x00xx")  # gate closed
        assert not divergent(source, payload)


class TestPointerCmpAndLine:
    def test_ptrcmp_always_diverges(self):
        snippet = bug_lib.ptrcmp_bug(300, random.Random(0))
        source, payload = harness(snippet, b"xx")
        assert divergent(source, payload)

    def test_line_bug_diverges_between_families(self):
        snippet = bug_lib.line_bug(310, random.Random(0))
        source, payload = harness(snippet, b"\x04xx")
        outcome = ENGINE.check(load(source), [payload])
        diff = outcome.diffs[0]
        assert diff.divergent
        gcc_out = diff.observations["gcc-O0"][0]
        clang_out = diff.observations["clang-O0"][0]
        assert gcc_out != clang_out


class TestMisc:
    def test_float_bug_diverges(self):
        rng = random.Random(2)
        for i in range(4):
            snippet = bug_lib.misc_float_bug(400 + i, rng)
            source, payload = harness(snippet, b"\x07xx")
            assert divergent(source, payload), snippet.subcategory

    @pytest.mark.parametrize(
        "pattern", ["ushl_ushr_elide", "sext_shift_pair", "srem_to_mask"]
    )
    def test_miscompile_bugs_diverge(self, pattern):
        snippet = bug_lib.misc_miscompile_bug(410, random.Random(0), pattern)
        source, payload = harness(snippet, b"\xf3xx")
        assert divergent(source, payload), pattern

    def test_ptrprint_diverges(self):
        snippet = bug_lib.misc_ptrprint_bug(420, random.Random(0))
        source, payload = harness(snippet, b"Axx")
        assert divergent(source, payload)

    def test_address_random_diverges(self):
        snippet = bug_lib.misc_random_bug(430, random.Random(0))
        source, payload = harness(snippet, b"Bxx")
        assert divergent(source, payload)

    def test_benign_handlers_are_stable(self):
        rng = random.Random(5)
        for i in range(6):
            handler = bug_lib.benign_handler(500 + i, rng)
            source = (
                handler
                + f"""

int main(void) {{
    char buf[64];
    long n = read_input(buf, 64);
    return h{500 + i}(buf, n);
}}"""
            )
            assert not divergent(source, b"payload-bytes-here"), i
