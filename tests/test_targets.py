"""Simulated real-world target tests."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.compiler import DEFAULT_IMPLEMENTATIONS, compile_program
from repro.core.compdiff import CompDiff
from repro.core.normalize import OutputNormalizer
from repro.minic import load
from repro.targets import TARGET_TABLE, build_all_targets, build_target, target_names
from repro.vm import run_binary


@pytest.fixture(scope="module")
def targets():
    return build_all_targets()


class TestInventory:
    def test_twenty_three_targets(self, targets):
        assert len(targets) == 23
        assert len(TARGET_TABLE) == 23

    def test_names_match_table4(self, targets):
        assert [t.name for t in targets] == target_names()
        assert "tcpdump" in target_names() and "gpac" in target_names()

    def test_total_bug_count_is_78(self, targets):
        assert sum(len(t.bugs) for t in targets) == 78

    def test_category_mix_matches_table5(self, targets):
        cats = Counter(b.category for t in targets for b in t.bugs)
        assert cats == {
            "EvalOrder": 2,
            "UninitMem": 27,
            "IntError": 8,
            "MemError": 13,
            "PointerCmp": 1,
            "LINE": 6,
            "Misc": 21,
        }

    def test_confirmed_fixed_metadata(self, targets):
        bugs = [b for t in targets for b in t.bugs]
        assert sum(b.confirmed for b in bugs) == 65
        assert sum(b.fixed for b in bugs) == 52
        assert all(b.confirmed for b in bugs if b.fixed)  # fixed => confirmed

    def test_signature_bugs_placed_per_paper(self, targets):
        by_name = {t.name: t for t in targets}
        assert [b.category for b in by_name["tcpdump"].bugs].count("EvalOrder") == 2
        assert any(b.category == "PointerCmp" for b in by_name["readelf"].bugs)
        miscompiles = [b for b in by_name["MuJS"].bugs if "miscompile" in b.subcategory]
        assert len(miscompiles) == 3
        line_targets = {t.name for t in targets for b in t.bugs if b.category == "LINE"}
        assert {"readelf", "ImageMagick", "wireshark", "libtiff", "php"} == line_targets

    def test_sites_are_globally_unique(self, targets):
        sites = [b.site for t in targets for b in t.bugs]
        assert len(sites) == len(set(sites))

    def test_sanitizer_classes(self, targets):
        for t in targets:
            for b in t.bugs:
                if b.category == "MemError":
                    assert b.sanitizer_class == "asan"
                elif b.category == "IntError":
                    assert b.sanitizer_class == "ubsan"
                elif b.category == "UninitMem":
                    assert b.sanitizer_class == "msan"
                else:
                    assert b.sanitizer_class is None

    def test_unknown_target_rejected(self):
        with pytest.raises(KeyError):
            build_target("nonexistent")

    def test_deterministic(self):
        assert build_target("jq").source == build_target("jq").source


class TestTargetBehavior:
    def test_all_sources_compile_for_all_impls(self, targets):
        for target in targets:
            program = load(target.source)
            for config in DEFAULT_IMPLEMENTATIONS[:2]:
                compile_program(program, config)

    def test_bad_magic_is_stable(self, targets):
        engine = CompDiff(fuel=300_000)
        for target in targets[:6]:
            prog = load(target.source)
            e = engine
            if target.needs_normalizer:
                e = CompDiff(fuel=300_000, normalizer=OutputNormalizer.standard())
            outcome = e.check(prog, [b"\x00\x00\x00\x00\x00"], name=target.name)
            assert not outcome.divergent, target.name

    def test_seeds_have_valid_magic(self, targets):
        for target in targets:
            for seed in target.seeds:
                assert seed[:2] == target.magic

    def test_seeds_reach_handlers(self, targets):
        target = targets[0]  # tcpdump
        program = load(target.source)
        binary = compile_program(program, DEFAULT_IMPLEMENTATIONS[0])
        outputs = set()
        for seed in target.seeds:
            result = run_binary(binary, seed)
            assert b"bad magic" not in result.stdout
            outputs.add(result.stdout)
        assert len(outputs) > 1  # different handlers produce different output

    def test_wireshark_noise_scrubbed_by_normalizer(self, targets):
        wireshark = next(t for t in targets if t.name == "wireshark")
        assert wireshark.needs_normalizer
        program = load(wireshark.source)
        raw = CompDiff(fuel=300_000)
        clean = CompDiff(fuel=300_000, normalizer=OutputNormalizer.standard())
        benign_input = b"\x00\x00\x00\x00\x00"  # bad magic: benign path
        assert raw.check(program, [benign_input]).divergent  # timestamp noise
        assert not clean.check(program, [benign_input]).divergent  # RQ5 fix

    def test_seeded_bugs_diverge_when_reached(self, targets):
        # Directly drive handler 0 of tcpdump (EvalOrder) with a payload.
        target = targets[0]
        program = load(target.source)
        engine = CompDiff(fuel=300_000)
        trigger = target.magic + bytes([0]) + b"\x05\x09payload"
        outcome = engine.check(program, [trigger], name=target.name)
        assert outcome.divergent


class TestFullMatrixCompilation:
    def test_every_target_compiles_and_verifies_under_all_ten_impls(self, targets):
        from repro.ir.verify import verify_module

        for target in targets:
            program = load(target.source)
            for config in DEFAULT_IMPLEMENTATIONS:
                module = compile_program(program, config).module
                verify_module(module)

    def test_every_target_runs_every_seed_without_internal_errors(self, targets):
        from repro.compiler import FUZZ_CONFIG

        for target in targets:
            program = load(target.source)
            binary = compile_program(program, FUZZ_CONFIG, instrument_coverage=True)
            for seed in target.seeds:
                result = run_binary(binary, seed, fuel=300_000)
                assert result.status.value in ("ok", "crash", "timeout"), target.name
