"""Triage precision and analysis-directed-fuzzing tests.

Floors here are set well below measured values (Juliet agreement ≈96%,
real-world explained ≈98%, ground-truth accuracy ≈92% at full scale) so
they catch regressions, not sampling noise.
"""

from __future__ import annotations

import random

import pytest

from repro.core import CompDiff
from repro.evaluation import evaluate_juliet, evaluate_realworld
from repro.evaluation.juliet_eval import GROUP_EXPECTED_CATEGORY
from repro.fuzzing import CompDiffFuzzer, FuzzerOptions
from repro.fuzzing.seedpool import SeedPool
from repro.juliet import build_suite
from repro.minic import load
from repro.static_analysis import UBOracle
from repro.static_analysis.triage import TABLE5_CATEGORIES, triage_diff
from repro.targets import build_target

pytestmark = pytest.mark.analysis


@pytest.fixture(scope="module")
def juliet_triaged():
    suite = build_suite(scale=0.003)
    return suite, evaluate_juliet(suite, fuel=150_000, include_triage=True)


@pytest.fixture(scope="module")
def tcpdump_campaign():
    target = build_target("tcpdump")
    fuzzer = CompDiffFuzzer(
        target.source,
        target.seeds,
        FuzzerOptions(rng_seed=1, max_executions=1200, compdiff_stride=3),
    )
    return target, fuzzer.run()


class TestJulietTriage:
    def test_every_compdiff_hit_is_labeled(self, juliet_triaged):
        _, evaluation = juliet_triaged
        assert evaluation.triage_labels
        for label in evaluation.triage_labels.values():
            assert label.category in TABLE5_CATEGORIES

    def test_agreement_with_cwe_ground_truth(self, juliet_triaged):
        suite, evaluation = juliet_triaged
        group_of = {case.uid: case.group for case in suite.cases}
        agreed = sum(
            1
            for uid, label in evaluation.triage_labels.items()
            if label.category in GROUP_EXPECTED_CATEGORY.get(group_of[uid], set())
        )
        assert agreed / len(evaluation.triage_labels) >= 0.85

    def test_uninit_group_is_uninitmem(self, juliet_triaged):
        suite, evaluation = juliet_triaged
        group_of = {case.uid: case.group for case in suite.cases}
        uninit = [
            label
            for uid, label in evaluation.triage_labels.items()
            if group_of[uid] == "uninit"
        ]
        assert uninit
        assert all(label.category == "UninitMem" for label in uninit)


class TestRealWorldTriage:
    def test_campaign_diffs_labeled_and_explained(self, tcpdump_campaign):
        target, result = tcpdump_campaign
        assert result.diffs
        program = load(target.source)
        findings = UBOracle().analyze(program)
        labels = [triage_diff(program, d, findings) for d in result.diffs]
        explained = sum(1 for label in labels if label.explained)
        assert explained / len(labels) >= 0.9

    def test_ground_truth_accuracy_on_single_site_diffs(self, tcpdump_campaign):
        target, result = tcpdump_campaign
        truth = {bug.site: bug.category for bug in target.bugs}
        program = load(target.source)
        findings = UBOracle().analyze(program)
        right = total = 0
        for diff in result.diffs:
            sites = result.sites_by_input.get(diff.input, frozenset())
            if len(sites) != 1:
                continue
            (site,) = sites
            total += 1
            label = triage_diff(program, diff, findings)
            right += label.category == truth[site]
        assert total > 0
        assert right / total >= 0.8

    def test_evaluate_realworld_triage_wiring(self):
        evaluation = evaluate_realworld(
            targets=[build_target("readelf")],
            max_executions=800,
            compdiff_stride=3,
            include_sanitizers=False,
            include_triage=True,
        )
        (outcome,) = evaluation.outcomes
        assert len(outcome.triage_labels) == len(outcome.campaign.diffs)
        assert all(l.category in TABLE5_CATEGORIES for l in outcome.triage_labels)


class TestAnalysisBoost:
    def test_energy_multiplier_applies_only_to_flagged(self):
        pool = SeedPool(random.Random(0), analysis_boost=8.0)
        plain = pool.add(b"aaaa")
        hot = pool.add(b"bbbb", flagged=True)
        assert pool._energy(hot) == pytest.approx(8.0 * pool._energy(plain))
        neutral = SeedPool(random.Random(0), analysis_boost=1.0)
        assert neutral._energy(neutral.add(b"aaaa", flagged=True)) == pytest.approx(
            neutral._energy(neutral.add(b"bbbb"))
        )

    def test_boost_identical_when_nothing_flagged(self):
        # A program with no oracle findings has no flagged edges, so a
        # boosted campaign must be byte-identical to the baseline.
        source = """
        int main(void) {
            long n = input_size();
            if (n > 2) { printf("big\\n"); } else { printf("small\\n"); }
            return 0;
        }
        """
        results = []
        for boost in (1.0, 8.0):
            fuzzer = CompDiffFuzzer(
                source,
                [b"hi", b"longer seed"],
                FuzzerOptions(rng_seed=7, max_executions=300, analysis_boost=boost),
            )
            results.append(fuzzer.run())
        base, boosted = results
        assert base.executions == boosted.executions
        assert base.edges_covered == boosted.edges_covered
        assert base.diffs_found == boosted.diffs_found
        assert [d.input for d in base.diffs] == [d.input for d in boosted.diffs]

    def test_boosted_campaign_flags_seeds_and_keeps_verdicts(self):
        target = build_target("tcpdump")
        fuzzer = CompDiffFuzzer(
            target.source,
            target.seeds,
            FuzzerOptions(
                rng_seed=3,
                max_executions=800,
                compdiff_stride=3,
                analysis_boost=8.0,
            ),
        )
        result = fuzzer.run()
        assert any(seed.flagged for seed in fuzzer.pool.seeds)
        assert result.diffs
        # The oracle verdict for any input is boost-independent: every
        # diff the boosted campaign recorded must reproduce under a
        # plain differential check.
        engine = CompDiff()
        outcome = engine.check_source(
            target.source, [d.input for d in result.diffs[:5]]
        )
        assert all(d.divergent for d in outcome.diffs)
