"""Type-system unit and property tests."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.minic import types as ty


class TestSizes:
    def test_scalar_sizes_lp64(self):
        assert ty.CHAR.size() == 1
        assert ty.SHORT.size() == 2
        assert ty.INT.size() == 4
        assert ty.LONG.size() == 8
        assert ty.FLOAT.size() == 4
        assert ty.DOUBLE.size() == 8
        assert ty.PointerType(ty.INT).size() == 8

    def test_array_size(self):
        assert ty.ArrayType(ty.INT, 10).size() == 40
        assert ty.ArrayType(ty.ArrayType(ty.CHAR, 3), 2).size() == 6

    def test_void_is_zero_sized(self):
        assert ty.VOID.size() == 0
        assert ty.VOID.align() == 1


class TestIntRanges:
    def test_signed_bounds(self):
        assert ty.INT.min_value == -(2**31)
        assert ty.INT.max_value == 2**31 - 1

    def test_unsigned_bounds(self):
        assert ty.UINT.min_value == 0
        assert ty.UINT.max_value == 2**32 - 1

    def test_wrap_signed_overflow(self):
        assert ty.INT.wrap(2**31) == -(2**31)
        assert ty.INT.wrap(2**31 - 1) == 2**31 - 1

    def test_wrap_unsigned(self):
        assert ty.UINT.wrap(2**32 + 5) == 5
        assert ty.UINT.wrap(-1) == 2**32 - 1

    @given(st.integers())
    def test_wrap_is_idempotent_int32(self, value):
        once = ty.INT.wrap(value)
        assert ty.INT.wrap(once) == once
        assert ty.INT.contains(once)

    @given(st.integers(), st.sampled_from([8, 16, 32, 64]), st.booleans())
    def test_wrap_congruent_mod_2n(self, value, bits, signed):
        t = ty.IntType(bits, signed)
        assert (t.wrap(value) - value) % (1 << bits) == 0

    @given(st.integers())
    def test_wrap_matches_two_complement_bytes(self, value):
        wrapped = ty.INT.wrap(value)
        raw = (value & 0xFFFFFFFF).to_bytes(4, "little")
        assert int.from_bytes(raw, "little", signed=True) == wrapped


class TestStructLayout:
    def test_aligned_offsets(self):
        s = ty.layout_struct("S", [("c", ty.CHAR), ("i", ty.INT), ("d", ty.DOUBLE)])
        offsets = {f.name: f.offset for f in s.fields}
        assert offsets == {"c": 0, "i": 4, "d": 8}
        assert s.size() == 16

    def test_tail_padding(self):
        s = ty.layout_struct("S", [("i", ty.INT), ("c", ty.CHAR)])
        assert s.size() == 8  # padded to int alignment

    def test_field_lookup(self):
        s = ty.layout_struct("S", [("a", ty.INT)])
        assert s.field_named("a") is not None
        assert s.field_named("zz") is None

    def test_align_is_max_field_align(self):
        s = ty.layout_struct("S", [("c", ty.CHAR), ("l", ty.LONG)])
        assert s.align() == 8


class TestConversions:
    def test_integer_promotion(self):
        assert ty.integer_promote(ty.CHAR) == ty.INT
        assert ty.integer_promote(ty.SHORT) == ty.INT
        assert ty.integer_promote(ty.UINT) == ty.UINT
        assert ty.integer_promote(ty.LONG) == ty.LONG

    def test_usual_conversion_same_type(self):
        assert ty.usual_arithmetic_conversion(ty.INT, ty.INT) == ty.INT

    def test_usual_conversion_widths(self):
        assert ty.usual_arithmetic_conversion(ty.INT, ty.LONG) == ty.LONG

    def test_usual_conversion_signed_unsigned_same_width(self):
        assert ty.usual_arithmetic_conversion(ty.INT, ty.UINT) == ty.UINT

    def test_usual_conversion_long_vs_uint(self):
        # long can represent all uint values, so the signed type wins.
        assert ty.usual_arithmetic_conversion(ty.LONG, ty.UINT) == ty.LONG

    def test_usual_conversion_float_dominates(self):
        assert ty.usual_arithmetic_conversion(ty.INT, ty.DOUBLE) == ty.DOUBLE

    def test_narrow_types_promote_first(self):
        assert ty.usual_arithmetic_conversion(ty.CHAR, ty.UCHAR) == ty.INT

    def test_decay_array(self):
        decayed = ty.decay(ty.ArrayType(ty.INT, 4))
        assert decayed == ty.PointerType(ty.INT)

    def test_decay_scalar_is_identity(self):
        assert ty.decay(ty.INT) == ty.INT


@given(
    st.sampled_from([ty.CHAR, ty.UCHAR, ty.SHORT, ty.USHORT, ty.INT, ty.UINT, ty.LONG, ty.ULONG]),
    st.sampled_from([ty.CHAR, ty.UCHAR, ty.SHORT, ty.USHORT, ty.INT, ty.UINT, ty.LONG, ty.ULONG]),
)
def test_usual_conversion_commutative_and_wide_enough(a, b):
    common = ty.usual_arithmetic_conversion(a, b)
    assert common == ty.usual_arithmetic_conversion(b, a)
    assert isinstance(common, ty.IntType)
    assert common.bits >= min(32, max(a.bits, b.bits))
