"""Per-checker tests for the IR-level UB oracle."""

from __future__ import annotations

import pytest

from repro.static_analysis import UBOracle
from repro.static_analysis.ub_oracle import CHECKER_CATEGORY, flagged_blocks

pytestmark = pytest.mark.analysis


@pytest.fixture(scope="module")
def oracle():
    return UBOracle()


def _checkers(findings):
    return {f.checker for f in findings}


class TestCheckers:
    def test_uninit_read_confirmed(self, oracle):
        findings = oracle.analyze_source(
            """
            int main(void) {
                int x;
                printf("%d\\n", x);
                return 0;
            }
            """
        )
        (f,) = [f for f in findings if f.checker == "uninit_read"]
        assert f.confidence == "confirmed"
        assert f.category == "UninitMem"
        assert f.line == 4

    def test_uninit_read_possible_on_some_paths(self, oracle):
        findings = oracle.analyze_source(
            """
            int main(void) {
                int x;
                int c = input_byte(0);
                if (c > 64) { x = 1; }
                printf("%d\\n", x);
                return 0;
            }
            """
        )
        (f,) = [f for f in findings if f.checker == "uninit_read"]
        assert f.confidence == "possible"

    def test_signed_overflow(self, oracle):
        findings = oracle.analyze_source(
            """
            int main(void) {
                int big = 2147483647;
                int sum = big + 100;
                printf("%d\\n", sum);
                return 0;
            }
            """
        )
        assert "signed_overflow" in _checkers(findings)
        f = next(f for f in findings if f.checker == "signed_overflow")
        assert f.category == "IntError"

    def test_shift_ub(self, oracle):
        findings = oracle.analyze_source(
            """
            int main(void) {
                int v = 1;
                printf("%d\\n", v << 35);
                return 0;
            }
            """
        )
        assert "shift_ub" in _checkers(findings)

    def test_div_zero(self, oracle):
        findings = oracle.analyze_source(
            """
            int main(void) {
                int d = 0;
                printf("%d\\n", 7 / d);
                return 0;
            }
            """
        )
        assert "div_zero" in _checkers(findings)

    def test_oob_access(self, oracle):
        findings = oracle.analyze_source(
            """
            int main(void) {
                int buf[4];
                buf[0] = 1;
                buf[7] = 2;
                printf("%d\\n", buf[0]);
                return 0;
            }
            """
        )
        assert "oob_access" in _checkers(findings)
        f = next(f for f in findings if f.checker == "oob_access")
        assert f.category == "MemError"

    def test_clean_program_has_no_findings(self, oracle):
        findings = oracle.analyze_source(
            """
            int main(void) {
                int buf[4];
                buf[0] = 1;
                buf[3] = 4;
                int sum = buf[0] + buf[3];
                printf("%d\\n", sum);
                return 0;
            }
            """
        )
        assert findings == []


class TestReportShape:
    SOURCE = """
    int main(void) {
        int x;
        int big = 2147483646;
        printf("%d %d\\n", x, big + 100);
        return 0;
    }
    """

    def test_findings_sorted_and_deterministic(self, oracle):
        first = oracle.analyze_source(self.SOURCE)
        second = oracle.analyze_source(self.SOURCE)
        assert first == second
        keys = [(f.line, f.checker, f.message) for f in first]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)  # deduped

    def test_categories_match_checker_table(self, oracle):
        for f in oracle.analyze_source(self.SOURCE):
            assert f.category == CHECKER_CATEGORY[f.checker]

    def test_flags_and_flagged_blocks(self, oracle):
        from repro.minic import load

        program = load(self.SOURCE)
        assert oracle.flags(program)
        findings = oracle.analyze(program)
        blocks = flagged_blocks(findings)
        assert blocks
        assert all(func == "main" for func, _ in blocks)

    def test_report_converges(self, oracle):
        from repro.minic import load

        report = oracle.report(load(self.SOURCE), name="shape")
        assert report.converged
        assert report.findings == oracle.analyze_source(self.SOURCE)
