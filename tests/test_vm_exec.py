"""VM execution semantics: arithmetic, control flow, functions, traps."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import run_source, stdout_of

I32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
U32 = st.integers(min_value=0, max_value=2**32 - 1)


class TestArithmetic:
    def test_basic_expression(self):
        assert stdout_of("int main(void){ printf(\"%d\\n\", 2 + 3 * 4); return 0; }") == b"14\n"

    def test_signed_wraparound_add(self):
        src = 'int main(void){ int x = 2147483647; int y = input_size(); printf("%d\\n", x + 1 + y); return 0; }'
        assert stdout_of(src) == b"-2147483648\n"

    def test_unsigned_wraparound(self):
        src = 'int main(void){ unsigned int x = 4294967295u; printf("%u\\n", x + 2u); return 0; }'
        assert stdout_of(src) == b"1\n"

    def test_truncating_division(self):
        assert stdout_of('int main(void){ printf("%d %d\\n", -7 / 2, -7 % 2); return 0; }') == b"-3 -1\n"

    def test_unsigned_division(self):
        src = 'int main(void){ unsigned int x = 0u - 4u; printf("%u\\n", x / 2u); return 0; }'
        assert stdout_of(src) == b"2147483646\n"

    def test_shift_count_masked_at_runtime(self):
        # x86 semantics: (1 << 40) with a runtime count behaves as 1 << 8.
        src = 'int main(void){ int c = 40 + (int)input_size(); printf("%d\\n", 1 << c); return 0; }'
        assert stdout_of(src) == b"256\n"

    def test_arithmetic_right_shift_sign_fills(self):
        assert stdout_of('int main(void){ int s = (int)input_size() + 4; printf("%d\\n", -16 >> s); return 0; }') == b"-1\n"

    def test_logical_right_shift_unsigned(self):
        src = 'int main(void){ unsigned int x = 0u - 16u; int s = (int)input_size() + 4; printf("%u\\n", x >> s); return 0; }'
        assert stdout_of(src) == b"268435455\n"

    def test_division_by_zero_traps_sigfpe(self):
        result = run_source('int main(void){ int d = (int)input_size(); printf("%d", 1 / d); return 0; }')
        assert result.status.value == "crash"
        assert result.exit_code == 136

    def test_int_min_divided_by_minus_one_traps(self):
        src = (
            "int main(void){ int a = -2147483647 - 1; int d = -1 - (int)input_size();"
            ' printf("%d", a / d); return 0; }'
        )
        result = run_source(src)
        assert result.status.value == "crash"

    def test_float_division_by_zero_is_inf(self):
        src = 'int main(void){ double z = (double)input_size(); printf("%f\\n", 1.0 / z); return 0; }'
        assert stdout_of(src) == b"inf\n"

    @given(I32, I32)
    @settings(max_examples=25, deadline=None)
    def test_add_matches_c_semantics(self, a, b):
        src = f'int main(void){{ int a = {a}; int b = {b}; printf("%d\\n", a + b); return 0; }}'
        expected = (a + b + 2**31) % 2**32 - 2**31
        assert stdout_of(src) == f"{expected}\n".encode()

    @given(I32, I32)
    @settings(max_examples=25, deadline=None)
    def test_mul_matches_c_semantics(self, a, b):
        src = f'int main(void){{ int a = {a}; int b = {b}; printf("%d\\n", a * b); return 0; }}'
        expected = (a * b + 2**31) % 2**32 - 2**31
        assert stdout_of(src) == f"{expected}\n".encode()

    @given(I32, st.integers(min_value=1, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_div_matches_c_truncation(self, a, b):
        src = f'int main(void){{ int a = {a}; int b = {b}; printf("%d %d\\n", a / b, a % b); return 0; }}'
        quotient = abs(a) // b * (1 if a >= 0 else -1)
        remainder = a - quotient * b
        assert stdout_of(src) == f"{quotient} {remainder}\n".encode()


class TestCasts:
    def test_truncation_to_char(self):
        assert stdout_of('int main(void){ char c = (char)300; printf("%d\\n", c); return 0; }') == b"44\n"

    def test_sign_extension_from_char(self):
        assert stdout_of('int main(void){ char c = (char)128; int x = c; printf("%d\\n", x); return 0; }') == b"-128\n"

    def test_zero_extension_from_uchar(self):
        src = 'int main(void){ unsigned char c = (unsigned char)200; int x = c; printf("%d\\n", x); return 0; }'
        assert stdout_of(src) == b"200\n"

    def test_float_to_int_truncates(self):
        assert stdout_of('int main(void){ double d = 3.9; printf("%d\\n", (int)d); return 0; }') == b"3\n"

    def test_float_to_int_negative(self):
        assert stdout_of('int main(void){ double d = -3.9; printf("%d\\n", (int)d); return 0; }') == b"-3\n"

    def test_int_to_double_exact(self):
        assert stdout_of('int main(void){ printf("%.1f\\n", (double)41); return 0; }') == b"41.0\n"

    def test_double_to_float_rounds(self):
        src = 'int main(void){ float f = (float)0.1; printf("%.9g\\n", f); return 0; }'
        assert stdout_of(src) == b"0.100000001\n"


class TestControlFlow:
    def test_if_else(self):
        src = 'int main(void){ int x = 5; if (x > 3) printf("big\\n"); else printf("small\\n"); return 0; }'
        assert stdout_of(src) == b"big\n"

    def test_while_loop(self):
        src = 'int main(void){ int i = 0; int s = 0; while (i < 5) { s += i; i++; } printf("%d\\n", s); return 0; }'
        assert stdout_of(src) == b"10\n"

    def test_do_while_runs_once(self):
        src = 'int main(void){ int i = 100; do { printf("x"); i++; } while (i < 100); printf("\\n"); return 0; }'
        assert stdout_of(src) == b"x\n"

    def test_for_with_break_continue(self):
        src = (
            "int main(void){ int i; int s = 0;"
            " for (i = 0; i < 10; i++) { if (i == 2) continue; if (i == 5) break; s += i; }"
            ' printf("%d\\n", s); return 0; }'
        )
        assert stdout_of(src) == b"8\n"

    def test_short_circuit_and(self):
        src = (
            "int hits = 0;\n"
            "int bump(void) { hits++; return 1; }\n"
            'int main(void){ int r = 0 && bump(); printf("%d %d\\n", r, hits); return 0; }'
        )
        assert stdout_of(src) == b"0 0\n"

    def test_short_circuit_or(self):
        src = (
            "int hits = 0;\n"
            "int bump(void) { hits++; return 1; }\n"
            'int main(void){ int r = 1 || bump(); printf("%d %d\\n", r, hits); return 0; }'
        )
        assert stdout_of(src) == b"1 0\n"

    def test_conditional_expression(self):
        src = 'int main(void){ int x = 7; printf("%d\\n", x > 5 ? 10 : 20); return 0; }'
        assert stdout_of(src) == b"10\n"

    def test_nested_loops(self):
        src = (
            "int main(void){ int i; int j; int c = 0;"
            " for (i = 0; i < 3; i++) for (j = 0; j < 4; j++) c++;"
            ' printf("%d\\n", c); return 0; }'
        )
        assert stdout_of(src) == b"12\n"


class TestFunctions:
    def test_call_and_return(self):
        src = "int sq(int x) { return x * x; }\nint main(void){ printf(\"%d\\n\", sq(7)); return 0; }"
        assert stdout_of(src) == b"49\n"

    def test_recursion(self):
        src = (
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n"
            'int main(void){ printf("%d\\n", fib(12)); return 0; }'
        )
        assert stdout_of(src) == b"144\n"

    def test_mutual_recursion(self):
        src = (
            "int is_odd(int n);\n"
            "int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }\n"
            "int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }\n"
            'int main(void){ printf("%d %d\\n", is_even(10), is_odd(7)); return 0; }'
        ) if False else (
            "int is_even(int n) { if (n == 0) return 1; if (n == 1) return 0; return is_even(n - 2); }\n"
            'int main(void){ printf("%d %d\\n", is_even(10), is_even(7)); return 0; }'
        )
        assert stdout_of(src) == b"1 0\n"

    def test_void_function(self):
        src = 'void greet(void) { printf("hi\\n"); }\nint main(void){ greet(); return 0; }'
        assert stdout_of(src) == b"hi\n"

    def test_exit_code_from_main(self):
        assert run_source("int main(void){ return 42; }").exit_code == 42

    def test_exit_code_truncated_to_byte(self):
        assert run_source("int main(void){ return 300; }").exit_code == 300 & 0xFF

    def test_unbounded_recursion_exhausts_stack(self):
        src = "int down(int n) { return down(n + 1); }\nint main(void){ return down(0); }"
        result = run_source(src)
        assert result.status.value == "crash"

    def test_infinite_loop_times_out(self):
        result = run_source("int main(void){ while (1) { } return 0; }", fuel=10_000)
        assert result.status.value == "timeout"


class TestGlobalsAndStatics:
    def test_global_initialized(self):
        assert stdout_of('int g = 7;\nint main(void){ printf("%d\\n", g); return 0; }') == b"7\n"

    def test_global_zero_initialized(self):
        assert stdout_of('int g;\nint main(void){ printf("%d\\n", g); return 0; }') == b"0\n"

    def test_global_mutation_persists_across_calls(self):
        src = (
            "int counter = 0;\n"
            "void bump(void) { counter++; }\n"
            'int main(void){ bump(); bump(); bump(); printf("%d\\n", counter); return 0; }'
        )
        assert stdout_of(src) == b"3\n"

    def test_static_local_persists(self):
        src = (
            "int next(void) { static int n = 10; n++; return n; }\n"
            'int main(void){ next(); next(); printf("%d\\n", next()); return 0; }'
        )
        assert stdout_of(src) == b"13\n"

    def test_global_string_pointer(self):
        src = 'char *msg = "boot";\nint main(void){ printf("%s\\n", msg); return 0; }'
        assert stdout_of(src) == b"boot\n"

    def test_global_array_init(self):
        src = 'int table[4] = {10, 20, 30, 40};\nint main(void){ printf("%d\\n", table[2]); return 0; }'
        assert stdout_of(src) == b"30\n"


class TestPointersAndArrays:
    def test_pointer_roundtrip(self):
        src = 'int main(void){ int v = 5; int *p = &v; *p = 9; printf("%d\\n", v); return 0; }'
        assert stdout_of(src) == b"9\n"

    def test_pointer_arithmetic_scaling(self):
        src = (
            "int main(void){ int arr[4] = {1, 2, 3, 4}; int *p = arr;"
            ' printf("%d\\n", *(p + 2)); return 0; }'
        )
        assert stdout_of(src) == b"3\n"

    def test_array_init_from_string(self):
        src = 'int main(void){ char b[8] = "hey"; printf("%s %ld\\n", b, strlen(b)); return 0; }'
        assert stdout_of(src) == b"hey 3\n"

    def test_struct_field_access(self):
        src = (
            "struct P { int x; int y; };\n"
            "int main(void){ struct P p; p.x = 3; p.y = 4;"
            ' printf("%d\\n", p.x * p.x + p.y * p.y); return 0; }'
        )
        assert stdout_of(src) == b"25\n"

    def test_struct_pointer_arrow(self):
        src = (
            "struct P { int x; };\n"
            "void set(struct P *p) { p->x = 77; }\n"
            'int main(void){ struct P p; set(&p); printf("%d\\n", p.x); return 0; }'
        )
        assert stdout_of(src) == b"77\n"

    def test_null_deref_segfaults_at_O0(self):
        result = run_source("int main(void){ int *p = (int*)0; return *p; }")
        assert result.status.value == "crash"
        assert result.exit_code == 139

    def test_wild_pointer_segfaults(self):
        result = run_source("int main(void){ long a = 12345678901; int *p = (int*)a; return *p; }")
        assert result.status.value == "crash"

    def test_2d_array_addressing(self):
        src = (
            "int main(void){ int m[2][3]; int i; int j;"
            " for (i = 0; i < 2; i++) for (j = 0; j < 3; j++) m[i][j] = i * 10 + j;"
            ' printf("%d %d\\n", m[1][2], m[0][1]); return 0; }'
        )
        assert stdout_of(src) == b"12 1\n"


class TestDeterminism:
    def test_same_input_same_output(self):
        src = (
            "int main(void){ char b[32]; long n = read_input(b, 32); long i;"
            ' unsigned int h = 17; for (i = 0; i < n; i++) h = h * 31 + b[i];'
            ' printf("%u\\n", h); return 0; }'
        )
        first = run_source(src, "clang-O2", b"hello world")
        second = run_source(src, "clang-O2", b"hello world")
        assert first.stdout == second.stdout
        assert first.exit_code == second.exit_code


class TestForkServerReuse:
    def test_many_runs_share_layout(self):
        from repro.compiler import compile_source, implementation
        from repro.vm import ForkServer

        src = (
            "int g = 0;\n"
            "int main(void){ g++; printf(\"g=%d n=%ld\\n\", g, input_size()); return 0; }"
        )
        server = ForkServer(compile_source(src, implementation("gcc-O2")))
        for i in range(5):
            result = server.run(b"x" * i)
            # Globals are re-initialized per execution: no cross-run leakage.
            assert result.stdout == f"g=1 n={i}\n".encode()
        assert server.executions == 5

    def test_heap_state_isolated_between_runs(self):
        from repro.compiler import compile_source, implementation
        from repro.vm import ForkServer

        src = (
            "int main(void){ char *p = malloc(16); p[0] = 'A';"
            ' printf("%c\\n", p[0]); return 0; }'
        )
        server = ForkServer(compile_source(src, implementation("gcc-O1")))
        first = server.run(b"")
        second = server.run(b"")
        assert first.stdout == second.stdout == b"A\n"

    def test_input_cursor_resets_per_run(self):
        from repro.compiler import compile_source, implementation
        from repro.vm import ForkServer

        src = (
            "int main(void){ char b[4]; read_input(b, 2); b[2] = 0;"
            ' printf("%s\\n", b); return 0; }'
        )
        server = ForkServer(compile_source(src, implementation("clang-O0")))
        assert server.run(b"ab").stdout == b"ab\n"
        assert server.run(b"cd").stdout == b"cd\n"
