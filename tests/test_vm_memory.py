"""Memory model: layout policies, allocator, segments, shadows."""

from __future__ import annotations

import pytest

from repro.compiler import compile_source, implementation
from repro.compiler.implementations import DEFAULT_IMPLEMENTATIONS
from repro.ir.module import FrameSlot
from repro.vm.memory import (
    HEAP_SIZE,
    ImageLayout,
    Memory,
    MemTrap,
    order_globals,
    order_slots,
)
from repro.minic import types as ty

from tests.conftest import run_source, stdout_of


def make_memory(impl: str = "gcc-O0", source: str = "int main(void){return 0;}", sanitizer=None) -> Memory:
    binary = compile_source(source, implementation(impl), sanitizer=sanitizer)
    return Memory(ImageLayout(binary))


class TestOrderPolicies:
    def slots(self):
        return [
            FrameSlot("a", 4, 4, 0),
            FrameSlot("buf", 32, 1, 1, is_buffer=True),
            FrameSlot("b", 8, 8, 2),
        ]

    def test_decl_order(self):
        assert [s.name for s in order_slots(self.slots(), "decl")] == ["a", "buf", "b"]

    def test_size_desc_order(self):
        assert [s.name for s in order_slots(self.slots(), "size_desc")] == ["buf", "b", "a"]

    def test_buffers_last_order(self):
        assert [s.name for s in order_slots(self.slots(), "buffers_last")] == ["a", "b", "buf"]

    def test_order_is_stable_for_ties(self):
        slots = [FrameSlot("x", 4, 4, 0), FrameSlot("y", 4, 4, 1)]
        assert [s.name for s in order_slots(slots, "size_desc")] == ["x", "y"]

    def test_global_orders(self):
        names = ["zeta", "alpha", "mid"]
        sizes = {"zeta": 4, "alpha": 16, "mid": 8}
        assert order_globals(names, sizes, "decl") == names
        assert order_globals(names, sizes, "alpha") == ["alpha", "mid", "zeta"]
        assert order_globals(names, sizes, "size_desc") == ["alpha", "mid", "zeta"]
        assert order_globals(names, sizes, "decl_rev") == ["mid", "alpha", "zeta"]


class TestSegments:
    def test_read_write_roundtrip(self):
        memory = make_memory()
        addr = memory.malloc(16)
        memory.write(addr, b"hello")
        assert memory.read(addr, 5) == b"hello"

    def test_null_page_traps(self):
        memory = make_memory()
        with pytest.raises(MemTrap) as excinfo:
            memory.read(0, 1)
        assert excinfo.value.kind == "segv"

    def test_unmapped_address_traps(self):
        memory = make_memory()
        with pytest.raises(MemTrap):
            memory.read(0x123456789, 4)

    def test_scalar_roundtrip_signed(self):
        memory = make_memory()
        addr = memory.malloc(8)
        memory.write_scalar(addr, -12345, ty.INT)
        assert memory.read_scalar(addr, ty.INT) == -12345

    def test_scalar_roundtrip_double(self):
        memory = make_memory()
        addr = memory.malloc(8)
        memory.write_scalar(addr, 3.5, ty.DOUBLE)
        assert memory.read_scalar(addr, ty.DOUBLE) == 3.5

    def test_float32_rounds_on_store(self):
        memory = make_memory()
        addr = memory.malloc(4)
        memory.write_scalar(addr, 0.1, ty.FLOAT)
        assert memory.read_scalar(addr, ty.FLOAT) != 0.1  # rounded to f32

    def test_cstring_reading(self):
        memory = make_memory()
        addr = memory.malloc(16)
        memory.write(addr, b"net\0tail")
        assert memory.read_cstring(addr) == b"net"

    def test_uninit_fill_pattern_per_impl(self):
        gcc_o2 = make_memory("gcc-O2")
        clang_o1 = make_memory("clang-O1")
        sp = gcc_o2.stack_base - 64
        assert gcc_o2.read(sp, 4) == b"\xa5" * 4
        sp = clang_o1.stack_base - 64
        assert clang_o1.read(sp, 4) == b"\xcd" * 4


class TestAllocator:
    def test_malloc_alignment(self):
        memory = make_memory()
        a = memory.malloc(3)
        b = memory.malloc(3)
        assert a % 16 == 0 or (a - memory.heap_base) % 16 == 0
        assert b > a

    def test_malloc_zero_returns_valid_block(self):
        memory = make_memory()
        assert memory.malloc(0) != 0

    def test_malloc_too_big_returns_null(self):
        memory = make_memory()
        assert memory.malloc(HEAP_SIZE + 1) == 0

    def test_free_null_is_noop(self):
        memory = make_memory()
        memory.free(0)

    def test_reuse_policy(self):
        reusing = make_memory("gcc-O1")
        addr = reusing.malloc(32)
        reusing.free(addr)
        assert reusing.malloc(32) == addr
        bump_only = make_memory("gcc-O0")
        addr = bump_only.malloc(32)
        bump_only.free(addr)
        assert bump_only.malloc(32) != addr

    def test_free_poison(self):
        memory = make_memory("gcc-O2")
        addr = memory.malloc(16)
        memory.write(addr, b"AAAA")
        memory.free(addr)
        assert memory.read(addr, 4) == b"\xdd" * 4

    def test_strict_double_free_aborts(self):
        memory = make_memory("gcc-O2")
        addr = memory.malloc(16)
        memory.free(addr)
        with pytest.raises(MemTrap) as excinfo:
            memory.free(addr)
        assert excinfo.value.kind == "abort"

    def test_lenient_double_free_aliases(self):
        memory = make_memory("gcc-O1")
        addr = memory.malloc(16)
        memory.free(addr)
        memory.free(addr)  # silently tolerated
        first = memory.malloc(16)
        second = memory.malloc(16)
        assert first == second == addr

    def test_strict_invalid_free_aborts(self):
        memory = make_memory("clang-O2")
        with pytest.raises(MemTrap):
            memory.free(memory.config.global_base)

    def test_heap_gap_changes_spacing(self):
        roomy = make_memory("gcc-O0")
        tight = make_memory("gcc-O2")
        r1, r2 = roomy.malloc(16), roomy.malloc(16)
        t1, t2 = tight.malloc(16), tight.malloc(16)
        assert (r2 - r1) > (t2 - t1)


class TestFrames:
    SRC = "int f(void) { char buf[16]; int x; buf[0] = 1; x = 2; return x; }\nint main(void){ return f(); }"

    def test_push_pop_restores_sp(self):
        memory = make_memory(source=self.SRC)
        sp = memory.sp
        base, frame = memory.push_frame("f")
        assert memory.sp < sp
        memory.pop_frame(base, frame)
        assert memory.sp == sp

    def test_frame_layout_has_all_slots(self):
        memory = make_memory(source=self.SRC)
        _, frame = memory.push_frame("f")
        assert len(frame.offsets) == 2

    def test_stack_gap_grows_frame(self):
        roomy = ImageLayout(compile_source(self.SRC, implementation("gcc-O0")))
        tight = ImageLayout(compile_source(self.SRC, implementation("gcc-O2")))
        assert roomy.frames["f"].size > tight.frames["f"].size

    def test_stack_exhaustion_traps(self):
        memory = make_memory(source=self.SRC)
        with pytest.raises(MemTrap):
            for _ in range(1_000_000):
                memory.push_frame("f")


class TestImageLayout:
    def test_global_addresses_respect_base(self):
        src = "int a;\nint b;\nint main(void){ return 0; }"
        layout = ImageLayout(compile_source(src, implementation("gcc-O0")))
        for addr in layout.global_addrs.values():
            assert addr >= implementation("gcc-O0").global_base

    def test_relocations_applied(self):
        src = 'char *msg = "x";\nint main(void){ return 0; }'
        layout = ImageLayout(compile_source(src, implementation("gcc-O0")))
        memory = Memory(layout)
        ptr = memory.read_scalar(layout.global_addrs["msg"], ty.ULONG)
        assert memory.read_cstring(ptr) == b"x"

    def test_global_order_differs_across_impls(self):
        src = "char small[8];\nchar big[64];\nint main(void){ return 0; }"
        decl = ImageLayout(compile_source(src, implementation("gcc-O0")))
        size_sorted = ImageLayout(compile_source(src, implementation("gcc-O2")))
        assert (decl.global_addrs["small"] < decl.global_addrs["big"]) != (
            size_sorted.global_addrs["small"] < size_sorted.global_addrs["big"]
        )

    def test_coverage_label_ids_stable(self):
        src = "int main(void){ if (input_size()) return 1; return 0; }"
        layout_a = ImageLayout(compile_source(src, implementation("gcc-O0")))
        layout_b = ImageLayout(compile_source(src, implementation("gcc-O0")))
        assert layout_a.label_ids == layout_b.label_ids


class TestLayoutDivergenceEndToEnd:
    def test_stack_overflow_victim_depends_on_gap(self):
        src = (
            "int main(void){ char data[16]; char mark[8] = \"OK\";"
            " int i; for (i = 0; i < 18; i++) { data[i] = 'X'; }"
            ' printf("%s\\n", mark); return 0; }'
        )
        roomy = stdout_of(src, "gcc-O0")
        tight = stdout_of(src, "gcc-O2")
        assert roomy == b"OK\n"
        assert tight != b"OK\n"

    def test_uninit_read_sees_impl_fill(self):
        src = 'int main(void){ char c; printf("%d\\n", c); return 0; }'
        assert stdout_of(src, "gcc-O0") == b"0\n"
        assert stdout_of(src, "gcc-O2") == b"-91\n"  # 0xA5 sign-extended

    def test_all_impls_have_distinct_segment_bases_per_family(self):
        gcc = [c for c in DEFAULT_IMPLEMENTATIONS if c.family == "gcc"]
        clang = [c for c in DEFAULT_IMPLEMENTATIONS if c.family == "clang"]
        assert len({c.stack_base for c in gcc}) == 1
        assert gcc[0].stack_base != clang[0].stack_base
